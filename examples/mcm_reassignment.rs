//! §2.2.1 — MCM/TCM partitioning as minimal-deviation reassignment.
//!
//! "The partitioning process starts with an experienced designer manually
//! assigning functional blocks into TCM chip slots. ... It is desirable to
//! reassign some components and remove the constraint violations in a way
//! that causes minimum deviation from the initial assignment."
//!
//! The deviation of a component is `size × Manhattan distance` between its
//! initial and final slots; `PP(1, 0)` with the deviation matrix `P` is
//! exactly this problem.
//!
//! Run with: `cargo run --example mcm_reassignment`

use qbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3×3 TCM with nine chip slots of 100 area units each.
    let topology = PartitionTopology::grid(3, 3, 100)?;

    // Twelve functional blocks; the designer crammed the hot cluster into
    // the top-left corner, overflowing slot 0.
    let mut circuit = Circuit::new();
    let blocks: Vec<ComponentId> = [
        ("alu", 55u64),
        ("mul", 45),
        ("shift", 30),
        ("sched", 25),
        ("rob", 40),
        ("lsq", 35),
        ("icache", 60),
        ("dcache", 60),
        ("tlb", 20),
        ("decode", 30),
        ("fetch", 25),
        ("retire", 20),
    ]
    .iter()
    .map(|&(name, size)| circuit.add_component(name, size))
    .collect();
    // Pipeline wiring.
    for pair in blocks.windows(2) {
        circuit.add_wires(pair[0], pair[1], 3)?;
    }
    circuit.add_wires(blocks[0], blocks[4], 5)?; // alu ↔ rob
    circuit.add_wires(blocks[6], blocks[9], 4)?; // icache ↔ decode

    // Timing: the ALU–ROB loop and icache–decode path are cycle-limited.
    let mut timing = TimingConstraints::new(circuit.len());
    timing.add_symmetric(blocks[0], blocks[4], 1)?;
    timing.add_symmetric(blocks[6], blocks[9], 2)?;

    // The designer's manual assignment: intuition-driven, with violations.
    let initial = Assignment::from_parts(vec![0, 0, 0, 1, 4, 4, 2, 2, 5, 8, 7, 8])?;
    let report = {
        let plain = ProblemBuilder::new(circuit.clone(), topology.clone())
            .timing(timing.clone())
            .build()?;
        check_feasibility(&plain, &initial)
    };
    println!(
        "designer's assignment: {} capacity violation(s), {} timing violation(s)",
        report.capacity.len(),
        report.timing.len()
    );
    assert!(!report.is_feasible(), "the manual assignment should violate");

    // Build PP(1, 0): minimize total deviation subject to C1 and C2.
    let p = deviation_cost_matrix(&circuit, &topology, &initial)?;
    let problem = ProblemBuilder::new(circuit, topology)
        .timing(timing)
        .linear_cost(p)
        .scales(1, 0)
        .build()?;

    let outcome = QbpSolver::new(QbpConfig::default()).solve(&problem, Some(&initial))?;
    assert!(outcome.feasible, "reassignment must remove all violations");
    println!(
        "repaired: total deviation = {} (size-weighted Manhattan slots moved)",
        outcome.objective
    );
    let mut moved = 0;
    for (j, slot) in outcome.assignment.iter() {
        let was = initial.partition_of(j);
        if was != slot {
            moved += 1;
            let name = problem
                .circuit()
                .component(j)
                .expect("valid id")
                .name()
                .to_string();
            println!("  {name:<8} slot {:>2} -> {:>2}", was.index(), slot.index());
        }
    }
    println!("{moved} of {} blocks moved; the rest stay where the designer put them", problem.n());
    Ok(())
}
