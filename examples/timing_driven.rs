//! End-to-end timing-driven flow: derive the pairwise delay limits `D_C`
//! from a cycle-time target with the static-timing substrate (§2: the
//! constraints are "driven by system cycle time and can be derived from the
//! delay equations and intrinsic delay in combinational circuit
//! components"), then partition under them.
//!
//! Run with: `cargo run --example timing_driven`

use qbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pipelined datapath: sixteen combinational blocks between register
    // boundaries, wired front to back with some bypasses.
    let mut circuit = Circuit::new();
    let ids: Vec<ComponentId> = (0..16)
        .map(|k| circuit.add_component(format!("stage{k}"), 20 + 5 * (k as u64 % 4)))
        .collect();
    for w in ids.windows(2) {
        circuit.add_connection(w[0], w[1], 4)?; // forward dataflow
    }
    circuit.add_connection(ids[0], ids[5], 2)?; // bypass
    circuit.add_connection(ids[4], ids[11], 2)?; // bypass
    circuit.add_connection(ids[8], ids[15], 2)?; // bypass

    // Intrinsic block delays; the forward chain is the critical path.
    let delays: Vec<Delay> = (0..16).map(|k| 2 + (k % 3) as Delay).collect();
    let dag = CombinationalDag::from_circuit(&circuit, &delays)?;

    // STA at the target cycle time (in the same delay units the partition
    // topology's D matrix uses — one unit per grid hop here).
    let cycle_time = 75;
    let sta = StaReport::zero_routing(&dag, cycle_time)?;
    println!(
        "critical path = {} logic units; cycle target = {cycle_time}; worst slack = {}",
        sta.critical_path,
        sta.worst_slack()
    );

    // Budget the slack over the wires (safe zero-slack distribution) and get
    // the partitioning constraints.
    let timing = SlackBudgeter::new(BudgetPolicy::ZeroSlack).derive(&dag, cycle_time)?;
    println!("{} routing-delay constraints derived:", timing.len());
    for (u, v, dc) in timing.iter().take(6) {
        println!("  {u} -> {v}: at most {dc} hop(s)");
    }
    println!("  ...");

    // Partition onto a 2×4 MCM.
    let topology = PartitionTopology::grid(2, 4, 130)?;
    let problem = ProblemBuilder::new(circuit, topology).timing(timing).build()?;

    let outcome = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
    assert!(outcome.feasible, "the budgeted constraints admit a solution");
    println!(
        "\npartitioned: wire length = {}, all {} timing budgets met",
        outcome.objective,
        problem.timing().len()
    );

    // Double-check with the STA: route every wire at its *realized*
    // inter-partition delay; the design must still meet cycle time. (The
    // zero-slack budgets guarantee this whenever every realized delay is
    // within its budget.)
    let asg = &outcome.assignment;
    let d = problem.topology().delay();
    let routed = StaReport::with_edge_delays(&dag, cycle_time, |u, v| {
        d[(asg.part_index(u), asg.part_index(v))]
    })?;
    println!(
        "post-partition STA: critical path {} <= cycle {} ✓",
        routed.critical_path, cycle_time
    );
    Ok(())
}
