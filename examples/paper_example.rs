//! FIG-1 / §3.3: the paper's worked example, reproduced exactly.
//!
//! Three components a, b, c assigned into four partitions arranged as a 2×2
//! array; five wires between a and b, two between b and c; timing limits
//! `D_C(a,b) = D_C(b,c) = 1`; violating entries embedded at penalty 50.
//! This example prints the 12×12 `Q̂` matrix and asserts it equals the table
//! printed in the paper.
//!
//! Run with: `cargo run --example paper_example`

use qbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = Circuit::new();
    let a = circuit.add_component("a", 1);
    let b = circuit.add_component("b", 1);
    let c = circuit.add_component("c", 1);
    circuit.add_wires(a, b, 5)?;
    circuit.add_wires(b, c, 2)?;

    // "B and D are just Manhattan distance matrices derived from the
    // locations of the partitions assuming adjacent partitions are distance
    // 1 apart."
    let topology = PartitionTopology::grid(2, 2, 10)?;
    assert_eq!(
        *topology.wire_cost(),
        DenseMatrix::from_rows(vec![
            vec![0, 1, 1, 2],
            vec![1, 0, 2, 1],
            vec![1, 2, 0, 1],
            vec![2, 1, 1, 0],
        ])
        .expect("rectangular"),
    );

    let mut timing = TimingConstraints::new(circuit.len());
    timing.add_symmetric(a, b, 1)?;
    timing.add_symmetric(b, c, 1)?;

    let problem = ProblemBuilder::new(circuit, topology).timing(timing).build()?;
    let q = QMatrix::new(&problem, 50)?;
    let dense = q.dense();

    println!("the paper's Q-hat (rows/cols ordered a1..a4, b1..b4, c1..c4):\n");
    println!("{dense}");

    // The exact table from §3.3 ("-" entries are zeros; p entries are zero
    // because this example has no linear term).
    let expected = DenseMatrix::from_rows(vec![
        vec![0, 0, 0, 0, 0, 5, 5, 50, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 5, 0, 50, 5, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 5, 50, 0, 5, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 50, 5, 5, 0, 0, 0, 0, 0],
        vec![0, 5, 5, 50, 0, 0, 0, 0, 0, 2, 2, 50],
        vec![5, 0, 50, 5, 0, 0, 0, 0, 2, 0, 50, 2],
        vec![5, 50, 0, 5, 0, 0, 0, 0, 2, 50, 0, 2],
        vec![50, 5, 5, 0, 0, 0, 0, 0, 50, 2, 2, 0],
        vec![0, 0, 0, 0, 0, 2, 2, 50, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 2, 0, 50, 2, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 2, 50, 0, 2, 0, 0, 0, 0],
        vec![0, 0, 0, 0, 50, 2, 2, 0, 0, 0, 0, 0],
    ])
    .expect("rectangular");
    assert_eq!(dense, expected, "Q-hat must match the paper's printed table");
    println!("matches the matrix printed in the paper. ✓\n");

    // The paper explains entry (a2, b3) = 50: assigning a to partition 2 and
    // b to partition 3 gives delay D(2,3) = 2 > D_C(a,b) = 1.
    let r1 = PairIndex::from_parts(PartitionId::new(1), a, 4);
    let r2 = PairIndex::from_parts(PartitionId::new(2), b, 4);
    assert_eq!(q.entry(r1, r2), 50);
    println!("entry (a@2, b@3) = 50: D(2,3) = 2 exceeds D_C(a,b) = 1. ✓");

    // Solve the example; the optimum keeps both constrained pairs adjacent.
    let outcome = QbpSolver::new(QbpConfig { iterations: 30, ..Default::default() })
        .solve(&problem, None)?;
    println!(
        "\nsolved: cost = {} (a→{}, b→{}, c→{}), feasible = {}",
        outcome.objective,
        outcome.assignment.partition_of(a).index() + 1,
        outcome.assignment.partition_of(b).index() + 1,
        outcome.assignment.partition_of(c).index() + 1,
        outcome.feasible,
    );
    // Optimal cost: both bundles at distance ≤ 1; a–b can even share a
    // partition: 2·(5·0 + 2·...) — exhaustively the best is 0 only if all
    // three co-locate, which capacity allows here; verify against brute
    // force.
    assert!(outcome.feasible);
    Ok(())
}
