//! Quickstart: partition a small system onto a 2×2 MCM under capacity and
//! timing constraints, and compare QBP against the interchange baselines.
//!
//! Run with: `cargo run --example quickstart`

use qbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the circuit: eight functional blocks with silicon-area
    //    demands, wired as two communicating clusters plus a bridge.
    let mut circuit = Circuit::new();
    let cpu = circuit.add_component("cpu", 40);
    let fpu = circuit.add_component("fpu", 30);
    let regs = circuit.add_component("regfile", 15);
    let dec = circuit.add_component("decode", 20);
    let l1 = circuit.add_component("l1cache", 45);
    let l2 = circuit.add_component("l2cache", 60);
    let mmu = circuit.add_component("mmu", 25);
    let bus = circuit.add_component("busif", 10);

    circuit.add_wires(cpu, fpu, 8)?;
    circuit.add_wires(cpu, regs, 12)?;
    circuit.add_wires(cpu, dec, 6)?;
    circuit.add_wires(cpu, l1, 10)?;
    circuit.add_wires(l1, l2, 9)?;
    circuit.add_wires(l1, mmu, 4)?;
    circuit.add_wires(l2, bus, 3)?;
    circuit.add_wires(mmu, bus, 2)?;

    // 2. Describe the partitions: a 2×2 grid of chip slots (B = D =
    //    Manhattan distance), each offering 90 units of area.
    let topology = PartitionTopology::grid(2, 2, 90)?;

    // 3. Timing constraints: the CPU–L1 and L1–L2 paths are cycle-limited to
    //    one hop of routing; CPU–regfile must be co-located or adjacent.
    let mut timing = TimingConstraints::new(circuit.len());
    timing.add_symmetric(cpu, l1, 1)?;
    timing.add_symmetric(l1, l2, 1)?;
    timing.add_symmetric(cpu, regs, 1)?;

    let problem = ProblemBuilder::new(circuit, topology)
        .timing(timing)
        .build()?;

    // 4. Solve with the paper's Quadratic Boolean Programming heuristic.
    let outcome = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
    println!("QBP:  cost = {:4}  feasible = {}", outcome.objective, outcome.feasible);
    for (j, i) in outcome.assignment.iter() {
        let name = problem.circuit().component(j).expect("valid id").name().to_string();
        println!("      {name:<8} -> slot {}", i.index());
    }

    // 5. Compare against the interchange baselines from the same feasible
    //    start.
    let start = outcome.assignment.clone();
    let gfm = GfmSolver::new(GfmConfig::default()).solve(&problem, &start)?;
    let gkl = GklSolver::new(GklConfig::default()).solve(&problem, &start)?;
    println!("GFM:  cost = {:4} (from QBP's solution)", gfm.cost);
    println!("GKL:  cost = {:4} (from QBP's solution)", gkl.cost);

    // 6. Everything returned is violation-free.
    assert!(check_feasibility(&problem, &outcome.assignment).is_feasible());
    assert!(check_feasibility(&problem, &gfm.assignment).is_feasible());
    assert!(check_feasibility(&problem, &gkl.assignment).is_feasible());
    println!("all solutions satisfy C1 (capacity) and C2 (timing)");
    Ok(())
}
