//! Multi-FPGA partitioning with the min-cut metric.
//!
//! §2.1: "when B is a matrix of all 1's except all 0's on the main diagonal,
//! this term equals the total number of wire crossings" — the classic
//! multi-FPGA objective (every inter-device wire costs an I/O pin pair,
//! regardless of which devices it connects). This example builds a clustered
//! netlist, partitions it onto four FPGAs with
//! [`PartitionTopology::uniform`], and compares the cut against the
//! baselines.
//!
//! Run with: `cargo run --example fpga_mincut`

use qbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic netlist with strong clustering: four natural communities
    // of ten blocks, sparse cross-community wiring.
    let mut circuit = Circuit::new();
    let mut ids = Vec::new();
    for c in 0..4 {
        for k in 0..10 {
            ids.push(circuit.add_component(format!("c{c}_b{k}"), 8 + (k as u64 % 5)));
        }
    }
    // Dense intra-community wiring.
    for c in 0..4 {
        for a in 0..10 {
            for b in (a + 1)..10 {
                if (a + b) % 3 == 0 {
                    circuit.add_wires(ids[c * 10 + a], ids[c * 10 + b], 2)?;
                }
            }
        }
    }
    // Sparse bridges between communities.
    for c in 0..4 {
        circuit.add_wires(ids[c * 10], ids[((c + 1) % 4) * 10 + 5], 1)?;
    }

    // Four identical FPGAs; every crossing costs 1 (B = all-ones off
    // diagonal). Logic capacity fits one community plus slack.
    let topology = PartitionTopology::uniform(4, 130)?;
    let problem = ProblemBuilder::new(circuit, topology).build()?;

    let qbp = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
    assert!(qbp.feasible);
    // Each direction of a symmetric wire counts once, so the printed cut is
    // half the quadratic term.
    println!("QBP cut  = {:>3} wire crossings", qbp.objective / 2);

    let start = qbp.assignment.clone();
    let gfm = GfmSolver::new(GfmConfig::default()).solve(&problem, &start)?;
    let gkl = GklSolver::new(GklConfig::default()).solve(&problem, &start)?;
    println!("GFM cut  = {:>3} (polishing QBP's answer)", gfm.cost / 2);
    println!("GKL cut  = {:>3} (polishing QBP's answer)", gkl.cost / 2);

    // With this much structure the communities should be (nearly) recovered:
    // the four bridges are the only unavoidable crossings.
    assert!(
        qbp.objective / 2 <= 8,
        "expected a near-community cut, got {}",
        qbp.objective / 2
    );
    let mut per_device = vec![0u64; 4];
    for (j, i) in qbp.assignment.iter() {
        per_device[i.index()] += problem.circuit().size(j);
    }
    println!("per-FPGA logic usage: {per_device:?} (capacity 130)");
    Ok(())
}
