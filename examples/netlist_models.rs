//! Net models: lower one multi-pin netlist under the clique, star and
//! bounded-clique models, partition each lowering, and compare the *net*
//! cut (the metric FPGA flows bill for) across models.
//!
//! The paper's formulation consumes the pairwise `A` matrix; this example
//! shows the modeling step in front of it and why the choice matters for
//! high-fanout nets.
//!
//! Run with: `cargo run --example netlist_models`

use qbp::prelude::*;
use qbp_core::netlist::{NetModel, Netlist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A design with two tight 8-cell clusters, a few local nets each, and
    // one high-fanout control net spanning everything (clock-enable style).
    let mut netlist = Netlist::new();
    let cells: Vec<ComponentId> = (0..16)
        .map(|k| netlist.add_cell(format!("cell{k}"), 5))
        .collect();
    for cluster in 0..2 {
        let base = cluster * 8;
        for k in 0..7 {
            netlist.add_net(
                format!("local{cluster}_{k}"),
                cells[base + k],
                &[cells[base + k + 1]],
                3,
            )?;
        }
        netlist.add_net(
            format!("bus{cluster}"),
            cells[base],
            &[cells[base + 3], cells[base + 5], cells[base + 7]],
            2,
        )?;
    }
    let (driver, fanout) = (cells[0], &cells[1..]);
    netlist.add_net("ctl_enable", driver, fanout, 1)?;

    println!(
        "{} cells, {} nets (largest has {} pins)\n",
        netlist.cell_count(),
        netlist.net_count(),
        netlist.nets().map(|n| n.pin_count()).max().expect("nets"),
    );
    println!("{:<16}{:>14}{:>12}{:>10}", "model", "pairwise |E|", "wirelen", "net cut");
    for (name, model) in [
        ("clique", NetModel::Clique),
        ("star", NetModel::Star),
        ("bounded(5)", NetModel::BoundedClique(5)),
    ] {
        let circuit = netlist.lower(model)?;
        let pairs = circuit.directed_edge_count();
        let problem =
            ProblemBuilder::new(circuit, PartitionTopology::uniform(2, 48)?).build()?;
        let out = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
        assert!(out.feasible);
        println!(
            "{:<16}{:>14}{:>12}{:>10}",
            name,
            pairs,
            out.objective,
            netlist.net_cut(&out.assignment)
        );
    }
    println!(
        "\nclique and bounded-clique recover the two clusters (net cut = 1:\n\
         only the control net spans devices), but the clique pays with a\n\
         quadratic pairwise blow-up on the 16-pin net. The pure star model\n\
         over-weights that net (one full-weight wire per sink), drags cells\n\
         toward its driver and shreds the clusters — exactly why production\n\
         flows bound the clique size instead of switching to stars wholesale."
    );
    Ok(())
}
