//! Sequential (register-bounded) timing flow on a small SoC-like block
//! diagram with feedback loops: split registers into launch/capture sides,
//! budget every register-to-register stage, and partition onto a 2×2 MCM.
//!
//! Run with: `cargo run --example sequential_soc`

use qbp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Block diagram: a control loop and a datapath loop sharing a bus.
    //
    //   pc(reg) → fetch → decode → exec → wb(reg) → pc   (control loop)
    //   acc(reg) → mul → add → acc                       (MAC loop)
    //   decode → mul (operand dispatch)
    let names = [
        ("pc", 8u64),     // 0: register
        ("fetch", 30),    // 1
        ("decode", 35),   // 2
        ("exec", 45),     // 3
        ("wb", 10),       // 4: register
        ("acc", 12),      // 5: register
        ("mul", 50),      // 6
        ("add", 25),      // 7
    ];
    let mut circuit = Circuit::new();
    let ids: Vec<ComponentId> = names
        .iter()
        .map(|&(n, s)| circuit.add_component(n, s))
        .collect();
    let wire = |c: &mut Circuit, a: usize, b: usize, w: i64| c.add_connection(ids[a], ids[b], w);
    wire(&mut circuit, 0, 1, 4)?;
    wire(&mut circuit, 1, 2, 6)?;
    wire(&mut circuit, 2, 3, 6)?;
    wire(&mut circuit, 3, 4, 4)?;
    wire(&mut circuit, 4, 0, 2)?; // feedback through registers
    wire(&mut circuit, 5, 6, 3)?;
    wire(&mut circuit, 6, 7, 3)?;
    wire(&mut circuit, 7, 5, 3)?; // MAC feedback
    wire(&mut circuit, 2, 6, 2)?; // dispatch

    // Sequential timing graph: same node ids, registers split internally.
    let mut builder = SequentialGraphBuilder::new(ids.len());
    for (node, &(name, _)) in names.iter().enumerate() {
        builder = match name {
            "pc" | "wb" | "acc" => builder.register(node, 1, 1)?,
            "fetch" => builder.delay(node, 3)?,
            "decode" => builder.delay(node, 4)?,
            "exec" => builder.delay(node, 5)?,
            "mul" => builder.delay(node, 6)?,
            "add" => builder.delay(node, 3)?,
            _ => builder,
        };
    }
    for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6), (6, 7), (7, 5), (2, 6)] {
        builder = builder.edge(a, b)?;
    }
    let seq = builder.build()?;

    // The loops are legal: register splitting makes the graph a DAG.
    let sta = StaReport::zero_routing(seq.expanded(), 100)?;
    println!(
        "register-to-register critical path: {} delay units",
        sta.critical_path
    );

    // Budget a 20-unit cycle and partition.
    let cycle = 20;
    let timing = seq.derive_constraints(&SlackBudgeter::new(BudgetPolicy::ZeroSlack), cycle)?;
    println!("{} wire budgets at cycle {cycle}:", timing.len());
    for (u, v, dc) in timing.iter() {
        println!(
            "  {:<7}->{:<7} at most {dc} hop(s)",
            names[u.index()].0,
            names[v.index()].0
        );
    }

    let topology = PartitionTopology::grid(2, 2, 130)?;
    let problem = ProblemBuilder::new(circuit, topology).timing(timing).build()?;
    let outcome = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
    assert!(outcome.feasible, "the budgets admit a placement");
    println!("\npartitioned at wire length {}:", outcome.objective);
    for (j, i) in outcome.assignment.iter() {
        println!("  {:<7} -> slot {}", names[j.index()].0, i.index());
    }
    Ok(())
}
