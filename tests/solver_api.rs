//! Unified-`Solver`-trait smoke test: every registered method must run
//! through `&dyn Solver` on the same instance, produce a feasible
//! [`SolveReport`], and be visible to an observer (≥1 iteration event and a
//! well-formed start/finish bracket in the trace).
//!
//! The shared instance is QAP-shaped — four unit-size components on a 2×2
//! grid of capacity-1 partitions — because that is the only shape *all*
//! six solvers accept (`qap` requires `M = N` with equal sizes).

use qbp::prelude::*;

fn qap_shaped_problem() -> Problem {
    let mut circuit = Circuit::new();
    let a = circuit.add_component("a", 1);
    let b = circuit.add_component("b", 1);
    let c = circuit.add_component("c", 1);
    let d = circuit.add_component("d", 1);
    circuit.add_wires(a, b, 6).expect("wire");
    circuit.add_wires(b, c, 4).expect("wire");
    circuit.add_wires(c, d, 2).expect("wire");
    circuit.add_wires(a, d, 1).expect("wire");
    ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 1).expect("grid"))
        .build()
        .expect("problem")
}

#[test]
fn every_registered_solver_runs_through_dyn_dispatch() {
    let problem = qap_shaped_problem();
    assert_eq!(SOLVER_NAMES, ["qbp", "qap", "gfm", "gkl", "anneal", "mlqbp"]);

    for name in SOLVER_NAMES {
        let opts = CommonOpts {
            seed: 7,
            iterations: Some(20),
            ..CommonOpts::default()
        };
        let solver: Box<dyn Solver> = build_solver(name, &opts).expect("registered method");
        assert_eq!(solver.name(), name);

        let mut counters = CountersObserver::new();
        let mut trace = TraceObserver::new(Vec::new());
        {
            let mut tee = TeeObserver::new();
            tee.push(&mut counters);
            tee.push(&mut trace);
            let report = solver
                .solve(&problem, None, &mut tee)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(report.solver, name);
            assert!(report.feasible, "{name}: infeasible report");
            assert!(report.iterations >= 1, "{name}: no iterations reported");
            assert_eq!(report.assignment.len(), problem.n());
            assert!(
                check_feasibility(&problem, &report.assignment).is_feasible(),
                "{name}: report claims feasible but the audit disagrees"
            );
        }

        let snap = counters.snapshot();
        assert_eq!(snap.solves, 1, "{name}: expected exactly one solve");
        assert!(snap.iterations >= 1, "{name}: observer saw no iteration events");

        let sink = trace.finish().expect("in-memory trace never fails");
        let text = String::from_utf8(sink).expect("traces are utf-8");
        let records: Vec<TraceRecord> = text
            .lines()
            .map(|l| parse_trace_line(l).unwrap_or_else(|e| panic!("{name}: bad line: {e}")))
            .collect();
        assert!(records.len() >= 3, "{name}: trace too short");
        assert_eq!(records.first().expect("nonempty").event.name(), "solve_started");
        assert_eq!(records.last().expect("nonempty").event.name(), "solve_finished");
        assert!(
            records.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "{name}: trace timestamps must be monotonic"
        );
    }
}

#[test]
fn unknown_method_is_rejected_by_the_registry() {
    assert!(build_solver("simplex", &CommonOpts::default()).is_none());
}

#[test]
fn reports_are_comparable_across_solvers() {
    // The point of the unified API: heterogeneous solvers, one report type.
    let problem = qap_shaped_problem();
    let eval = Evaluator::new(&problem);
    let opts = CommonOpts {
        seed: 11,
        iterations: Some(30),
        ..CommonOpts::default()
    };
    let mut best: Option<SolveReport> = None;
    for name in SOLVER_NAMES {
        let solver = build_solver(name, &opts).expect("registered");
        let report = solver
            .solve(&problem, None, &mut NoopObserver)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.objective,
            eval.cost(&report.assignment),
            "{name}: reported objective must match a from-scratch evaluation"
        );
        if best.as_ref().is_none_or(|b| report.objective < b.objective) {
            best = Some(report);
        }
    }
    let best = best.expect("six reports");
    assert!(best.feasible);
}
