//! Cross-crate integration: the full Tables II/III protocol on scaled suite
//! instances — generation, shared feasible start, all three methods,
//! feasibility guarantees and determinism.

use qbp::prelude::*;
use qbp_bench::{default_methods, initial_solution, run_circuit_with_fallback};

fn scaled_instances(scale: f64) -> Vec<(CircuitSpec, Problem, Assignment)> {
    PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &SuiteOptions::default()).expect("instance");
            (spec, problem, witness)
        })
        .collect()
}

#[test]
fn table_protocol_all_methods_feasible_and_improving() {
    let methods = default_methods();
    for (spec, problem, witness) in scaled_instances(0.1) {
        // With timing (Table III shape).
        let row = run_circuit_with_fallback(spec.name, &problem, &methods, 7, Some(&witness))
            .expect("row");
        for r in &row.results {
            assert!(r.feasible, "{}/{}: infeasible result", spec.name, r.name);
            assert!(
                r.final_cost <= row.start_cost,
                "{}/{}: regressed past the start",
                spec.name,
                r.name
            );
        }
        // Without timing (Table II shape).
        let relaxed = problem.without_timing();
        let row2 = run_circuit_with_fallback(spec.name, &relaxed, &methods, 7, Some(&witness))
            .expect("row");
        for r in &row2.results {
            assert!(r.feasible);
            assert!(r.final_cost <= row2.start_cost);
        }
    }
}

#[test]
fn qbp_wins_or_ties_gfm_on_most_scaled_circuits() {
    // The paper's headline: QBP produces the best quality. Methods are
    // heuristics, so assert the aggregate rather than every row.
    let methods = default_methods();
    let mut qbp_wins = 0;
    let mut total = 0;
    for (spec, problem, witness) in scaled_instances(0.15) {
        let row = run_circuit_with_fallback(spec.name, &problem, &methods, 11, Some(&witness))
            .expect("row");
        let qbp = row.results.iter().find(|r| r.name == "QBP").expect("qbp");
        let gfm = row.results.iter().find(|r| r.name == "GFM").expect("gfm");
        total += 1;
        if qbp.final_cost <= gfm.final_cost {
            qbp_wins += 1;
        }
    }
    assert!(
        qbp_wins * 10 >= total * 8,
        "QBP should match or beat GFM on ≥80% of circuits ({qbp_wins}/{total})"
    );
}

#[test]
fn shared_start_is_feasible_and_deterministic() {
    let (_, problem, witness) = scaled_instances(0.1).remove(1); // cktb
    let a = initial_solution(&problem, 3, Some(&witness)).expect("start");
    let b = initial_solution(&problem, 3, Some(&witness)).expect("start");
    assert_eq!(a, b, "protocol start must be deterministic per seed");
    assert!(check_feasibility(&problem, &a).is_feasible());
    let c = initial_solution(&problem, 4, Some(&witness)).expect("start");
    assert!(check_feasibility(&problem, &c).is_feasible());
}

#[test]
fn qbp_solver_is_deterministic_on_suite_instance() {
    let (_, problem, witness) = scaled_instances(0.1).remove(4); // ckte
    let initial = initial_solution(&problem, 5, Some(&witness)).expect("start");
    let config = QbpConfig {
        iterations: 30,
        seed: 17,
        ..QbpConfig::default()
    };
    let x = QbpSolver::new(config).solve(&problem, Some(&initial)).expect("solve");
    let y = QbpSolver::new(config).solve(&problem, Some(&initial)).expect("solve");
    assert_eq!(x.assignment, y.assignment);
    assert_eq!(x.objective, y.objective);
}

#[test]
fn method_configs_respected() {
    let (_, problem, witness) = scaled_instances(0.1).remove(6); // cktg
    let initial = initial_solution(&problem, 9, Some(&witness)).expect("start");
    // GKL outer-loop cutoff.
    let gkl = GklSolver::new(GklConfig {
        max_outer_loops: 2,
        ..GklConfig::default()
    })
    .solve(&problem, &initial)
    .expect("gkl");
    assert!(gkl.passes <= 2);
    // GFM pass cap.
    let gfm = GfmSolver::new(GfmConfig {
        max_passes: 1,
        ..GfmConfig::default()
    })
    .solve(&problem, &initial)
    .expect("gfm");
    assert_eq!(gfm.passes, 1);
    // Literal-paper QBP (no enhancements) still runs and returns something
    // no worse than infeasible-free fallback semantics.
    let literal = QbpSolver::new(QbpConfig {
        iterations: 20,
        stall_window: 0,
        repair_candidates: false,
        ..QbpConfig::default()
    })
    .solve(&problem, Some(&initial))
    .expect("literal qbp");
    assert_eq!(literal.iterations, 20);
}

#[test]
fn scramble_respects_feasibility_and_moves_away() {
    let (_, problem, witness) = scaled_instances(0.15).remove(2); // cktc
    let scrambled = scramble_feasible(&problem, &witness, 10 * problem.n(), 23);
    assert!(check_feasibility(&problem, &scrambled).is_feasible());
    assert_ne!(
        scrambled, witness,
        "the walk should actually move on a non-rigid instance"
    );
    let eval = Evaluator::new(&problem);
    assert!(
        eval.cost(&scrambled) > eval.cost(&witness),
        "cost-blind walk almost surely degrades the clustered witness"
    );
}
