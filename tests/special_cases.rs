//! §2.2's special-case hierarchy, validated across crates:
//!
//! * `PP(1, 0)` without timing = Generalized Assignment Problem;
//! * GAP with `M = N` and unit sizes/capacities = Linear Assignment Problem;
//! * `PP(α, β)` with `M = N`, unit sizes = Quadratic Assignment Problem,
//!   where the GAP-subproblem solver and the LAP-subproblem solver are two
//!   instantiations of the same Burkard loop.

use qbp::prelude::*;
use qbp_gen::{random_qap, QapSpec};
use qbp_solver::exact::{exact_gap, exhaustive_constrained};
use qbp_solver::gap::{solve_gap, GapConfig, GapInstance};
use qbp_solver::solve_lap_int;

#[test]
fn pp_1_0_is_a_generalized_assignment_problem() {
    // With β = 0 and no timing, the optimal assignment of PP(1,0) equals the
    // GAP optimum over the same costs/sizes/capacities.
    let mut circuit = Circuit::new();
    let sizes = [4u64, 3, 5, 2, 6];
    for (j, &s) in sizes.iter().enumerate() {
        circuit.add_component(format!("c{j}"), s);
    }
    // Wires exist but must be ignored at β = 0.
    circuit
        .add_wires(ComponentId::new(0), ComponentId::new(1), 9)
        .expect("pair");
    let topology = PartitionTopology::grid(1, 3, 8).expect("grid");
    let m = topology.len();
    let n = circuit.len();
    let p = DenseMatrix::from_fn(m, n, |i, j| ((i * 7 + j * 3) % 10) as Cost);
    let problem = ProblemBuilder::new(circuit, topology)
        .linear_cost(p.clone())
        .scales(1, 0)
        .build()
        .expect("problem");

    // Exhaustive PP(1,0) optimum.
    let (asg, cost) = exhaustive_constrained(&problem).expect("feasible");
    // Exact GAP on the same data (flattened costs[i + j*m]).
    let costs: Vec<f64> = (0..m * n)
        .map(|r| p[(r % m, r / m)] as f64)
        .collect();
    let capacities = problem.topology().capacities().to_vec();
    let inst = GapInstance {
        m,
        n,
        costs: &costs,
        sizes: &sizes,
        capacities: &capacities,
    };
    let (_, gap_cost) = exact_gap(&inst).expect("feasible");
    assert_eq!(cost as f64, gap_cost);
    assert!(check_feasibility(&problem, &asg).is_feasible());
}

#[test]
fn gap_degenerates_to_lap_with_unit_sizes() {
    // M = N, unit sizes and capacities: the GAP heuristic must produce a
    // permutation whose cost matches the Hungarian optimum (the heuristic is
    // exact on small LAPs thanks to the improvement phase — verify against
    // the LAP solver and accept heuristic slack of 0 here).
    let n = 6;
    let cost_matrix = DenseMatrix::from_fn(n, n, |i, j| (((i * 5 + j * 11) % 13) + 1) as Cost);
    let (_, lap_opt) = solve_lap_int(&cost_matrix);
    let costs: Vec<f64> = (0..n * n)
        .map(|r| cost_matrix[(r % n, r / n)] as f64)
        .collect();
    let sizes = vec![1u64; n];
    let capacities = vec![1u64; n];
    let inst = GapInstance {
        m: n,
        n,
        costs: &costs,
        sizes: &sizes,
        capacities: &capacities,
    };
    let (_, exact) = exact_gap(&inst).expect("permutations exist");
    assert_eq!(exact, lap_opt as f64, "exact GAP == LAP on the square case");
    let heur = solve_gap(&inst, &GapConfig {
        improvement_passes: 4,
        swap_improvement: true,
    });
    assert!(heur.feasible);
    assert!(heur.cost >= exact - 1e-9);
}

#[test]
fn qap_both_solver_modes_agree_with_exhaustive() {
    // Both are heuristics: they must never beat the exhaustive optimum, and
    // should hit it on most small instances.
    let mut lap_hits = 0;
    let mut gap_hits = 0;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let problem = random_qap(&QapSpec {
            seed,
            ..QapSpec::new(6)
        })
        .expect("qap");
        let (_, opt) = exhaustive_constrained(&problem).expect("permutation exists");
        let lap_mode = QapSolver::new(QapConfig {
            iterations: 200,
            seed,
            ..QapConfig::default()
        })
        .solve(&problem)
        .expect("lap mode");
        let gap_mode = QbpSolver::new(QbpConfig {
            iterations: 200,
            seed,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .expect("gap mode");
        assert!(lap_mode.feasible && gap_mode.feasible);
        assert!(lap_mode.objective >= opt, "seed {seed}: below optimum impossible");
        assert!(gap_mode.objective >= opt, "seed {seed}: below optimum impossible");
        if lap_mode.objective == opt {
            lap_hits += 1;
        }
        if gap_mode.objective == opt {
            gap_hits += 1;
        }
    }
    assert!(lap_hits >= 4, "LAP-mode hit optimum only {lap_hits}/5 times");
    assert!(gap_hits >= 4, "GAP-mode hit optimum only {gap_hits}/5 times");
}

#[test]
fn qap_mode_solutions_are_permutations() {
    let problem = random_qap(&QapSpec::new(12)).expect("qap");
    let out = QapSolver::default().solve(&problem).expect("solve");
    let mut seen = [false; 12];
    for j in 0..12 {
        let i = out.assignment.part_index(j);
        assert!(!seen[i], "partition {i} used twice");
        seen[i] = true;
    }
}

#[test]
fn wire_crossing_metric_counts_cut_edges() {
    // B = uniform: the quadratic term equals the number of directed wire
    // crossings — validate against a hand-counted cut.
    let mut circuit = Circuit::new();
    let a = circuit.add_component("a", 1);
    let b = circuit.add_component("b", 1);
    let c = circuit.add_component("c", 1);
    circuit.add_wires(a, b, 3).expect("pair");
    circuit.add_wires(b, c, 2).expect("pair");
    let problem = ProblemBuilder::new(circuit, PartitionTopology::uniform(2, 3).expect("uniform"))
        .build()
        .expect("problem");
    let eval = Evaluator::new(&problem);
    // a,b together; c apart: only the b–c bundle crosses (2 wires × 2
    // directions).
    let asg = Assignment::from_parts(vec![0, 0, 1]).expect("three components");
    assert_eq!(eval.cost(&asg), 4);
}
