//! Empirical validation of the paper's appendix theorems on exhaustively
//! enumerable instances.
//!
//! * **Theorem 1 (Existence of Embedding)** — with `U > 2·Σ|q|`, the
//!   unconstrained-in-timing problem `QBP(Q')` over capacity-feasible
//!   assignments has the same minima as the timing-constrained `QBP_R(Q)`.
//! * **Theorem 2 (Sufficient Condition)** — with *any* positive penalty, if
//!   the embedded minimizer happens to be timing-feasible, it is a minimizer
//!   of the original constrained problem.

use qbp::prelude::*;
use qbp_solver::exact::{exhaustive_constrained, exhaustive_qbp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random tiny instance: n ≤ 5 components, 2×2 grid, random wires, random
/// timing constraints, sizes and capacities that always admit solutions.
fn random_instance(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 3 + (rng.random_range(0..3) as usize);
    let mut circuit = Circuit::new();
    let ids: Vec<ComponentId> = (0..n)
        .map(|j| circuit.add_component(format!("c{j}"), 1 + rng.random_range(0..3)))
        .collect();
    for a in 0..n {
        for b in 0..n {
            if a != b && rng.random::<f64>() < 0.4 {
                circuit
                    .add_connection(ids[a], ids[b], 1 + rng.random_range(0..4) as i64)
                    .expect("valid pair");
            }
        }
    }
    let mut timing = TimingConstraints::new(n);
    for a in 0..n {
        for b in 0..n {
            if a != b && rng.random::<f64>() < 0.3 {
                timing
                    .add(ids[a], ids[b], rng.random_range(0..3) as i64)
                    .expect("valid pair");
            }
        }
    }
    // Capacity: generous enough that C1-feasible assignments exist but tight
    // enough to matter.
    let total: u64 = circuit.total_size();
    let cap = (total / 2).max(3);
    ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, cap).expect("grid"))
        .timing(timing)
        .build()
        .expect("valid problem")
}

#[test]
fn theorem_1_embedding_is_exact_with_u_bound() {
    let mut checked = 0;
    for seed in 0..40 {
        let problem = random_instance(seed);
        let u = QMatrix::theorem1_penalty(&problem);
        let q = QMatrix::new(&problem, u).expect("penalty positive");
        let embedded = exhaustive_qbp(&q);
        let constrained = exhaustive_constrained(&problem);
        match (embedded, constrained) {
            (Some((easg, ev)), Some((_, cv))) => {
                // Equal minima, and the embedded minimizer is feasible.
                assert_eq!(ev, cv, "seed {seed}: embedded vs constrained minimum");
                assert!(
                    check_feasibility(&problem, &easg).is_feasible(),
                    "seed {seed}: embedded minimizer must be feasible"
                );
                checked += 1;
            }
            (Some((easg, ev)), None) => {
                // No timing-feasible assignment exists: the embedded minimum
                // must then pay at least one penalty.
                assert!(
                    q.violation_count(&easg) > 0,
                    "seed {seed}: no feasible solution but embedded minimizer clean"
                );
                assert!(ev >= u, "seed {seed}: value must include the penalty");
            }
            (None, _) => {
                // No capacity-feasible assignment at all (possible but rare).
            }
        }
    }
    assert!(checked >= 20, "too few nontrivial instances ({checked})");
}

#[test]
fn theorem_2_any_penalty_valid_when_minimizer_clean() {
    for seed in 0..40 {
        let problem = random_instance(seed);
        for penalty in [1, 5, 50] {
            let q = QMatrix::new(&problem, penalty).expect("penalty positive");
            let Some((easg, ev)) = exhaustive_qbp(&q) else {
                continue;
            };
            if q.violation_count(&easg) > 0 {
                continue; // Theorem 2's hypothesis not met; nothing claimed.
            }
            let (_, cv) = exhaustive_constrained(&problem)
                .expect("a clean embedded minimizer implies feasibility");
            assert_eq!(
                ev, cv,
                "seed {seed}, penalty {penalty}: clean embedded minimizer must be optimal"
            );
        }
    }
}

#[test]
fn lemma_1_value_coincides_on_feasible_region() {
    // Q and Q̂ coincide over the feasible region: yᵀQ̂y equals the plain
    // objective for every timing-feasible assignment.
    for seed in 0..20 {
        let problem = random_instance(seed);
        let q = QMatrix::with_auto_penalty(&problem).expect("auto penalty");
        let eval = Evaluator::new(&problem);
        let m = problem.m() as u64;
        let n = problem.n();
        for code in 0..m.pow(n as u32) {
            let mut parts = Vec::with_capacity(n);
            let mut cdx = code;
            for _ in 0..n {
                parts.push((cdx % m) as u32);
                cdx /= m;
            }
            let asg = Assignment::from_parts(parts).expect("non-empty");
            if q.violation_count(&asg) == 0 {
                assert_eq!(q.value(&asg), eval.cost(&asg), "seed {seed}");
            } else {
                assert!(q.value(&asg) > eval.cost(&asg), "penalties only add");
            }
        }
    }
}

#[test]
fn heuristic_matches_exhaustive_on_tiny_instances() {
    // The full QBP solver should routinely hit the exhaustive optimum on
    // instances this small.
    let mut hits = 0;
    let mut total = 0;
    for seed in 0..25 {
        let problem = random_instance(seed);
        let Some((_, opt)) = exhaustive_constrained(&problem) else {
            continue;
        };
        total += 1;
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 60,
            seed,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .expect("solve");
        if outcome.feasible && outcome.objective == opt {
            hits += 1;
        }
        assert!(
            !outcome.feasible || outcome.objective >= opt,
            "seed {seed}: heuristic below exhaustive optimum is impossible"
        );
    }
    assert!(
        hits * 10 >= total * 8,
        "QBP should hit the optimum on ≥80% of tiny instances ({hits}/{total})"
    );
}
