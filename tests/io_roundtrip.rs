//! Property test: arbitrary problems survive a `.qbp`-format round trip.

use proptest::prelude::*;
use qbp::prelude::*;
use qbp_core::io::{parse_assignment, parse_problem, write_assignment, write_problem};

fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..10, 2usize..6).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec(
            ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..9),
            0..20,
        );
        let cons = proptest::collection::vec(
            ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 0i64..5),
            0..10,
        );
        let sizes = proptest::collection::vec(1u64..40, n);
        let with_linear = proptest::bool::ANY;
        (Just((n, m)), edges, cons, sizes, with_linear).prop_map(
            |((n, m), edges, cons, sizes, with_linear)| {
                let mut circuit = Circuit::new();
                for (j, &s) in sizes.iter().enumerate() {
                    circuit.add_component(format!("c{j}"), s);
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .expect("valid pair");
                }
                let mut tc = TimingConstraints::new(n);
                for ((a, b), dc) in cons {
                    tc.add(ComponentId::new(a), ComponentId::new(b), dc)
                        .expect("valid pair");
                }
                let total: u64 = sizes.iter().sum();
                let topology = PartitionTopology::grid(1, m, total).expect("grid");
                let mut builder = ProblemBuilder::new(circuit, topology).timing(tc).scales(2, 3);
                if with_linear {
                    let p = DenseMatrix::from_fn(m, n, |i, j| ((i * 13 + j * 7) % 23) as Cost);
                    builder = builder.linear_cost(p);
                }
                builder.build().expect("valid problem")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn problem_round_trips_through_text(problem in arb_problem()) {
        let text = write_problem(&problem);
        let back = parse_problem(&text).expect("writer output must parse");
        prop_assert_eq!(&back, &problem);
        // And the round-tripped problem evaluates identically.
        let asg = Assignment::all_in_first(problem.n());
        prop_assert_eq!(
            Evaluator::new(&back).cost(&asg),
            Evaluator::new(&problem).cost(&asg)
        );
    }

    #[test]
    fn assignment_round_trips_through_text(
        problem in arb_problem(),
        seed in 0u64..1000,
    ) {
        let asg = random_assignment(problem.n(), problem.m(), seed);
        let text = write_assignment(&problem, &asg);
        let back = parse_assignment(&text, &problem, false).expect("writer output must parse");
        prop_assert_eq!(back, asg);
    }
}
