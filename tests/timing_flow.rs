//! Integration of the timing substrate with the partitioner: derive `D_C`
//! from a cycle time, partition, and verify the *routed* design still meets
//! the cycle time — the end-to-end guarantee the zero-slack budgets provide.

use qbp::prelude::*;

/// A two-lane pipelined datapath as a circuit + DAG.
fn datapath(n_stages: usize) -> (Circuit, Vec<Delay>) {
    let mut circuit = Circuit::new();
    let ids: Vec<ComponentId> = (0..n_stages)
        .map(|k| circuit.add_component(format!("s{k}"), 10 + (k as u64 % 3) * 5))
        .collect();
    for w in ids.windows(2) {
        circuit.add_connection(w[0], w[1], 3).expect("forward edge");
    }
    if n_stages > 4 {
        circuit
            .add_connection(ids[0], ids[n_stages / 2], 1)
            .expect("bypass");
    }
    let delays: Vec<Delay> = (0..n_stages).map(|k| 1 + (k % 4) as Delay).collect();
    (circuit, delays)
}

#[test]
fn budgets_guarantee_post_partition_timing_closure() {
    let (circuit, delays) = datapath(12);
    let dag = CombinationalDag::from_circuit(&circuit, &delays).expect("acyclic");
    let cycle_time = 50;
    let timing = SlackBudgeter::new(BudgetPolicy::ZeroSlack)
        .derive(&dag, cycle_time)
        .expect("feasible cycle");
    let topology = PartitionTopology::grid(2, 3, 60).expect("grid");
    let problem = ProblemBuilder::new(circuit, topology)
        .timing(timing)
        .build()
        .expect("problem");
    let outcome = QbpSolver::new(QbpConfig::default())
        .solve(&problem, None)
        .expect("solve");
    assert!(outcome.feasible, "budgeted constraints admit solutions");
    // Routed STA: inter-partition delay = realized grid distance.
    let asg = &outcome.assignment;
    let d = problem.topology().delay();
    let routed = StaReport::with_edge_delays(&dag, cycle_time, |u, v| {
        d[(asg.part_index(u), asg.part_index(v))]
    });
    assert!(
        routed.is_ok(),
        "safe budgets: any budget-respecting placement meets cycle time"
    );
}

#[test]
fn window_budgets_are_looser_than_zero_slack() {
    let (circuit, delays) = datapath(10);
    let dag = CombinationalDag::from_circuit(&circuit, &delays).expect("acyclic");
    let cycle = 40;
    let window = SlackBudgeter::new(BudgetPolicy::Window)
        .derive(&dag, cycle)
        .expect("feasible");
    let zs = SlackBudgeter::new(BudgetPolicy::ZeroSlack)
        .derive(&dag, cycle)
        .expect("feasible");
    assert_eq!(window.len(), zs.len());
    for (u, v, w_limit) in window.iter() {
        let z_limit = zs.get(u, v).expect("same edge set");
        assert!(
            w_limit >= z_limit,
            "window budget {w_limit} < zero-slack {z_limit} on {u}->{v}"
        );
    }
}

#[test]
fn infeasible_cycle_time_is_reported_before_partitioning() {
    let (circuit, delays) = datapath(12);
    let dag = CombinationalDag::from_circuit(&circuit, &delays).expect("acyclic");
    let critical = StaReport::zero_routing(&dag, 10_000).expect("slack").critical_path;
    let err = SlackBudgeter::default().derive(&dag, critical - 1);
    assert!(matches!(
        err,
        Err(TimingError::InfeasibleCycleTime { .. })
    ));
}

#[test]
fn tighter_cycle_time_means_tighter_budgets() {
    // Budgets shrink monotonically (edge-wise) as the cycle target tightens;
    // the partitioner stays feasible at every level. (Final *costs* are not
    // asserted monotone — heuristics can get lucky under tighter guidance.)
    let (circuit, delays) = datapath(12);
    let dag = CombinationalDag::from_circuit(&circuit, &delays).expect("acyclic");
    let critical = StaReport::zero_routing(&dag, 10_000).expect("ok").critical_path;
    let mut last_budgets: Option<TimingConstraints> = None;
    for extra in [12, 4, 1] {
        let timing = SlackBudgeter::default()
            .derive(&dag, critical + extra)
            .expect("feasible");
        if let Some(prev) = &last_budgets {
            // Per-edge shares can shift between runs (the remainder sweep is
            // greedy), but the *total* distributed routing slack must shrink
            // with the cycle target.
            let total: Delay = timing.iter().map(|(_, _, dc)| dc).sum();
            let prev_total: Delay = prev.iter().map(|(_, _, dc)| dc).sum();
            assert!(
                total <= prev_total,
                "total budget grew as the cycle tightened ({total} > {prev_total})"
            );
        }
        // Generous capacity: with near-zero budgets the whole chain may be
        // forced into one partition.
        let topology = PartitionTopology::grid(2, 3, 200).expect("grid");
        let problem = ProblemBuilder::new(circuit.clone(), topology)
            .timing(timing.clone())
            .build()
            .expect("problem");
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 150,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .expect("solve");
        assert!(outcome.feasible, "extra slack {extra}");
        last_budgets = Some(timing);
    }
}
