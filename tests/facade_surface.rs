//! The facade crate's prelude must expose a coherent, usable surface — this
//! is the "downstream user" smoke test: everything a typical flow touches,
//! imported through `qbp::prelude` alone.

use qbp::prelude::*;
use qbp_core::stats::{AssignmentStats, CircuitStats};

#[test]
fn full_flow_through_the_prelude() {
    // Generate → inspect → solve → audit, all via prelude types.
    let spec = scaled_spec(&PAPER_SUITE[1], 0.06);
    let (problem, witness) =
        build_instance_with_witness(&spec, &SuiteOptions::default()).expect("instance");

    let cstats = CircuitStats::of(problem.circuit());
    assert_eq!(cstats.components, problem.n());
    assert!(cstats.size_spread() > 5.0);

    let outcome = QbpSolver::new(QbpConfig {
        iterations: 30,
        ..QbpConfig::default()
    })
    .solve(&problem, Some(&witness))
    .expect("solve");
    assert!(outcome.feasible);

    let astats = AssignmentStats::of(&problem, &outcome.assignment);
    assert!(astats.looks_feasible());
    assert!(astats.peak_utilization <= 1.0);
    assert_eq!(
        astats.looks_feasible(),
        check_feasibility(&problem, &outcome.assignment).is_feasible()
    );
}

#[test]
fn exact_oracles_agree_via_prelude() {
    let mut circuit = Circuit::new();
    let a = circuit.add_component("a", 1);
    let b = circuit.add_component("b", 1);
    let c = circuit.add_component("c", 1);
    circuit.add_wires(a, b, 4).expect("pair");
    circuit.add_wires(b, c, 2).expect("pair");
    let mut tc = TimingConstraints::new(3);
    tc.add_symmetric(a, b, 1).expect("pair");
    let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 2).expect("grid"))
        .timing(tc)
        .build()
        .expect("problem");
    let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
    let bb = branch_and_bound(&q, None).expect("feasible");
    assert!(bb.proved_optimal);
    let heuristic = QbpSolver::new(QbpConfig {
        iterations: 40,
        ..QbpConfig::default()
    })
    .solve(&problem, None)
    .expect("solve");
    assert!(heuristic.feasible);
    assert_eq!(heuristic.embedded_value, bb.value, "tiny instance: heuristic hits optimum");
}

#[test]
fn annealer_and_qbp_share_outcome_type() {
    let spec = scaled_spec(&PAPER_SUITE[6], 0.05);
    let (problem, witness) =
        build_instance_with_witness(&spec, &SuiteOptions::default()).expect("instance");
    let sa = qbp_solver::AnnealSolver::new(qbp_solver::AnnealConfig {
        steps_per_level: 200,
        levels: 15,
        ..qbp_solver::AnnealConfig::default()
    })
    .solve(&problem, Some(&witness))
    .expect("sa");
    // Outcomes are interchangeable: same fields, same audit path.
    let report = check_feasibility(&problem, &sa.assignment);
    assert_eq!(sa.feasible, report.is_feasible());
}

#[test]
fn timing_prelude_surface() {
    let dag = TimingGraphBuilder::new(2)
        .delay(0, 2)
        .expect("node")
        .delay(1, 3)
        .expect("node")
        .edge(0, 1)
        .expect("edge")
        .build()
        .expect("dag");
    let sta = StaReport::zero_routing(&dag, 10).expect("feasible");
    assert_eq!(sta.critical_path, 5);
    let tc = SlackBudgeter::new(BudgetPolicy::Window).derive(&dag, 10).expect("budgets");
    assert_eq!(tc.len(), 1);
}
