//! Facade crate for the QBP partitioning suite: re-exports the problem model
//! ([`qbp_core`]), the Quadratic-Boolean-Programming solver ([`qbp_solver`]),
//! the GFM/GKL interchange baselines ([`qbp_baselines`]), the multilevel
//! V-cycle driver and method registry ([`qbp_multilevel`]), the incremental
//! re-partitioning (ECO) layer ([`qbp_eco`]), the static-timing substrate
//! ([`qbp_timing`]) and the instance generators ([`qbp_gen`]).
//!
//! This is a faithful, from-scratch reproduction of
//! *Shih & Kuh, "Quadratic Boolean Programming for Performance-Driven System
//! Partitioning"* (UCB/ERL M93/19; DAC 1993).
//!
//! # Quickstart
//!
//! ```
//! use qbp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two components wired together, four partitions in a 2×2 grid.
//! let mut circuit = Circuit::new();
//! let a = circuit.add_component("a", 10);
//! let b = circuit.add_component("b", 20);
//! circuit.add_wires(a, b, 5)?;
//!
//! let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 25)?).build()?;
//! let outcome = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
//! assert!(outcome.feasible);
//! # Ok(())
//! # }
//! ```
//!
//! Every solver also implements the unified [`qbp_solver::Solver`] trait, so
//! the same call site can drive QBP, QAP, GFM, GKL, the annealer or the
//! multilevel `mlqbp` V-cycle while an observer (see [`qbp_observe`])
//! watches the run:
//!
//! ```
//! use qbp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new();
//! let a = circuit.add_component("a", 10);
//! let b = circuit.add_component("b", 20);
//! circuit.add_wires(a, b, 5)?;
//! let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 25)?).build()?;
//!
//! let solver = build_solver("qbp", &CommonOpts::default()).expect("known method");
//! let mut counters = CountersObserver::new();
//! let report = solver.solve(&problem, None, &mut counters)?;
//! assert!(report.feasible);
//! assert!(counters.snapshot().iterations >= 1);
//! # Ok(())
//! # }
//! ```
//!
//! Netlists drift after the first solve; the ECO layer ([`qbp_eco`])
//! absorbs typed edit deltas in place and re-solves warm instead of from
//! scratch (see `docs/ECO.md`):
//!
//! ```
//! use qbp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = ProblemBuilder::on(PartitionTopology::grid(2, 2, 25)?)
//!     .component("a", 10)
//!     .component("b", 20)
//!     .component("c", 5)
//!     .pair("a", "b", 5)
//!     .build()?;
//! let mut session = EcoSession::new(problem, EcoConfig::default())?;
//! let delta = NetlistDelta::new().reweight_pair(ComponentId::new(0), ComponentId::new(1), 9);
//! let (apply, solve) = session.apply_and_resolve(&delta, &mut NoopObserver)?;
//! assert!(solve.feasible && !apply.rebuilt);
//! assert!(session.state_matches_fresh());
//! # Ok(())
//! # }
//! ```

pub use qbp_baselines;
pub use qbp_core;
pub use qbp_eco;
pub use qbp_gen;
pub use qbp_multilevel;
pub use qbp_observe;
pub use qbp_solver;
pub use qbp_timing;

/// Convenient glob import for examples and applications.
pub mod prelude {
    pub use qbp_baselines::{BaselineOutcome, GfmConfig, GfmSolver, GklConfig, GklSolver};
    pub use qbp_multilevel::{
        build_solver, coarsen, CoarsenOptions, LevelStack, MlqbpConfig, MlqbpSolver,
        SOLVER_NAMES,
    };
    pub use qbp_core::{
        check_feasibility, deviation_cost_matrix, Assignment, Circuit, Component, ComponentId,
        Cost, Delay, DenseMatrix, Error, Evaluator, PairIndex, PartitionId, PartitionProfile,
        PartitionTopology, Problem, ProblemBuilder, QBody, QMatrix, QbpError, Size,
        TimingConstraints, NO_CONSTRAINT,
    };
    pub use qbp_eco::{
        run_script, ApplyReport, EcoConfig, EcoSession, EditOp, NetlistDelta, ScriptOp,
        ScriptSummary,
    };
    pub use qbp_gen::{
        build_instance, build_instance_with_witness, scaled_spec, CircuitSpec, ConstraintSampler,
        SuiteOptions, SyntheticCircuit, PAPER_SUITE,
    };
    pub use qbp_observe::{
        parse_trace_line, CounterSnapshot, CountersObserver, NoopObserver, ProgressObserver,
        SolveEvent, SolveObserver, SolverId, TeeObserver, TraceObserver, TraceRecord,
    };
    pub use qbp_solver::{
        branch_and_bound, greedy_first_fit, random_assignment, scramble_feasible, AnnealConfig,
        AnnealSolver, BbOutcome, CommonOpts, Configure, EtaMode, PenaltyMode, QapConfig, QapSolver,
        QbpConfig, QbpOutcome, QbpSolver, SolveReport, Solver,
    };
    pub use qbp_timing::{
        BudgetPolicy, CombinationalDag, SequentialDag, SequentialGraphBuilder, SlackBudgeter,
        StaReport, TimingError, TimingGraphBuilder,
    };
}
