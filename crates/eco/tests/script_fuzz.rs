//! Property tests for the ECO script parser: arbitrary and truncated input
//! must never panic, and every rejection must be a typed [`ParseError`]
//! that names the offending line.

use proptest::prelude::*;
use qbp_core::io::ParseError;
use qbp_core::QbpError;
use qbp_eco::script::parse_script;

fn assert_located(err: &ParseError) {
    let msg = err.to_string();
    assert!(
        msg.contains("line "),
        "script parse error must carry a line number: {msg:?}"
    );
    let lifted: QbpError = err.clone().into();
    assert!(matches!(lifted, QbpError::Parse(_)));
}

/// Arbitrary printable-ish characters, biased toward JSON punctuation so
/// random lines reach deep into the flat-object scanner.
fn noise_char() -> impl Strategy<Value = char> {
    (0usize..16, 0u32..94).prop_map(|(pick, c)| match pick {
        0 => '{',
        1 => '}',
        2 => '"',
        3 => ':',
        4 => ',',
        5 => '-',
        6 => '#',
        7 => '\t',
        _ => char::from_u32(32 + c).unwrap_or(' '),
    })
}

/// Script-line fragments: valid ops, malformed ops, and raw noise.
fn fragment() -> impl Strategy<Value = String> {
    (0usize..10, 0i64..1 << 32).prop_map(|(pick, n)| match pick {
        0 => format!("{{\"op\": \"add_component\", \"name\": \"u{n}\", \"size\": {n}}}\n"),
        1 => format!("{{\"op\": \"add_pair\", \"a\": {n}, \"b\": 0, \"weight\": {n}}}\n"),
        2 => format!("{{\"op\": \"tighten_cycle_time\", \"delta\": -{n}}}\n"),
        3 => format!("{{\"op\": \"set_timing_bound\", \"a\": 0, \"b\": {n}}}\n"),
        4 => format!("{{\"op\": \"frobnicate\", \"x\": {n}}}\n"),
        5 => format!("{{\"op\": \"add_component\", \"size\": {n}}}\n"),
        6 => format!("{{\"op\": \"add_pair\", \"a\": -{n}}}\n"),
        7 => format!("# comment {n}\n"),
        8 => "\n".to_string(),
        9 => format!("{{\"op\": \"add_component\", \"name\": \"u{n}\", \"size\": {n}"),
        _ => unreachable!(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Raw character noise: the flat-JSON scanner must reject with a line
    // number, never panic or loop.
    #[test]
    fn arbitrary_text_never_panics(chars in proptest::collection::vec(noise_char(), 0..512)) {
        let text: String = chars.into_iter().collect();
        match parse_script(&text) {
            Ok(_) => {}
            Err(e) => assert_located(&e),
        }
    }

    // Structured fragments: valid and near-valid op lines in any order.
    #[test]
    fn fragment_scripts_never_panic(parts in proptest::collection::vec(fragment(), 0..24)) {
        let text = parts.concat();
        match parse_script(&text) {
            Ok(_) => {}
            Err(e) => assert_located(&e),
        }
    }

    // Truncating a valid script at any byte keeps the parser total: every
    // prefix either parses or reports a located error.
    #[test]
    fn truncated_script_never_panics(cut in 0usize..300) {
        let full = "\
{\"op\": \"add_component\", \"name\": \"u99\", \"size\": 3}
{\"op\": \"add_pair\", \"a\": 3, \"b\": 17, \"weight\": 2}
{\"op\": \"reweight_pair\", \"a\": \"u3\", \"b\": \"u17\", \"weight\": 9}
{\"op\": \"set_timing_bound\", \"a\": 3, \"b\": 17, \"bound\": 4}
{\"op\": \"tighten_cycle_time\", \"delta\": 1}
";
        let cut = cut.min(full.len());
        match parse_script(&full[..cut]) {
            Ok(_) => {}
            Err(e) => assert_located(&e),
        }
    }
}
