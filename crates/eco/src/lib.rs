//! Incremental re-partitioning (ECO mode) for the QBP workspace.
//!
//! Physical-design flows rarely solve one partitioning problem and stop: the
//! netlist drifts — an engineering change order (ECO) adds a buffer, rips up
//! a net, tightens the clock — and re-running the full solver from scratch
//! for every edit wastes almost all of its work. This crate makes the
//! partitioner *incremental*:
//!
//! * [`NetlistDelta`] — a typed, validated, canonicalized batch of edit ops
//!   ([`EditOp`]): add/detach components, set/remove pair wires, set/remove
//!   pair timing bounds, tighten the cycle time globally.
//! * [`EcoSession`] — owns the [`Problem`](qbp_core::Problem), the current
//!   [`Assignment`](qbp_core::Assignment), the sparse `Q̂` state
//!   ([`QBody`](qbp_core::QBody)) and the live partition profile, applies a
//!   delta **in place** in `O(touched · deg)` (falling back to a full
//!   rebuild past a staleness threshold), and re-solves **warm** from the
//!   previous assignment via localized descent with capped escalation
//!   ([`QbpSolver::solve_warm`](qbp_solver::QbpSolver::solve_warm)) plus a
//!   periodic capped-solve quality re-anchor
//!   ([`EcoConfig::refresh_every`]) that bounds drift over long streams.
//! * [`script`] — a JSONL edit-script format (`qbp eco --script
//!   edits.jsonl`) with name- or index-based component references.
//!
//! The contract that makes this trustworthy: after every apply the patched
//! state is **bit-identical** to building from scratch on the mutated
//! problem — [`EcoSession::state_matches_fresh`] audits exactly that, and
//! the equivalence proptests plus the `eco_bench` perf gate enforce it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod delta;
pub mod script;
mod session;

pub use delta::{EditOp, NetlistDelta};
pub use script::{run_script, run_script_exec, ScriptOp, ScriptSummary};
pub use session::{apply_and_resolve_quiet, ApplyReport, EcoConfig, EcoSession};

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{check_feasibility, ComponentId, PartitionTopology, ProblemBuilder};
    use qbp_observe::{CountersObserver, NoopObserver};
    use qbp_solver::QbpConfig;

    fn ring_problem(n: usize, m: usize, cap: u64) -> qbp_core::Problem {
        let mut b = ProblemBuilder::on(PartitionTopology::grid(m, 1, cap).unwrap());
        for j in 0..n {
            b = b.component(format!("u{j}"), 1);
        }
        for j in 0..n {
            b = b.pair(format!("u{j}"), format!("u{}", (j + 1) % n), 2);
        }
        b = b.timing_bound("u0", "u1", 1);
        b.build().unwrap()
    }

    fn small_config() -> EcoConfig {
        EcoConfig {
            solver: QbpConfig {
                iterations: 20,
                ..QbpConfig::default()
            },
            ..EcoConfig::default()
        }
    }

    fn id(i: usize) -> ComponentId {
        ComponentId::new(i)
    }

    #[test]
    fn session_applies_and_resolves_pair_edit() {
        let mut s = EcoSession::new(ring_problem(8, 4, 4), small_config()).unwrap();
        assert!(s.state_matches_fresh());
        let delta = NetlistDelta::new().reweight_pair(id(2), id(3), 9);
        let (apply, solve) = s.apply_and_resolve(&delta, &mut NoopObserver).unwrap();
        assert_eq!(apply.delta_seq, 1);
        assert!(!apply.rebuilt);
        assert_eq!(apply.dirty, vec![2, 3]);
        assert!(apply.patched_rows > 0);
        assert!(solve.feasible);
        assert!(s.state_matches_fresh());
        assert!(check_feasibility(s.problem(), s.assignment()).is_feasible());
    }

    #[test]
    fn reanchor_repairs_a_rough_baseline_and_never_worsens() {
        // Pile everything onto one partition: infeasible (capacity 4,
        // 8 unit components) and expensive. reanchor must adopt a feasible
        // improvement; a second reanchor from the good state must not
        // worsen it.
        let problem = ring_problem(8, 4, 4);
        let crammed = qbp_core::Assignment::all_in_first(8);
        let mut s =
            EcoSession::with_assignment(problem, crammed, small_config()).unwrap();
        let first = s.reanchor(&mut NoopObserver).unwrap();
        assert!(first.feasible);
        assert!(s.state_matches_fresh());
        let second = s.reanchor(&mut NoopObserver).unwrap();
        assert!(second.feasible);
        assert!(second.embedded_value.unwrap() <= first.embedded_value.unwrap());
    }

    #[test]
    fn refresh_cadence_reanchors_quality() {
        struct Probe {
            warm_solves: usize,
            escalated: usize,
        }
        impl qbp_observe::SolveObserver for Probe {
            fn on_event(&mut self, event: &qbp_observe::SolveEvent) {
                if let qbp_observe::SolveEvent::WarmSolve { escalated, .. } = event {
                    self.warm_solves += 1;
                    self.escalated += *escalated as usize;
                }
            }
        }
        // refresh_every = 1: every resolve runs the capped re-anchor solve
        // and reports it as escalated; the result stays feasible and the
        // patched state stays bit-identical.
        let mut config = small_config();
        config.refresh_every = 1;
        let mut s = EcoSession::new(ring_problem(8, 4, 4), config).unwrap();
        let mut probe = Probe {
            warm_solves: 0,
            escalated: 0,
        };
        for w in 3..6 {
            let delta = NetlistDelta::new().reweight_pair(id(1), id(2), w);
            let (_, solve) = s.apply_and_resolve(&delta, &mut probe).unwrap();
            assert!(solve.feasible);
        }
        assert_eq!(probe.warm_solves, 3);
        assert_eq!(probe.escalated, 3);
        assert!(s.state_matches_fresh());

        // refresh_every = 0 disables the rung: the same edits repair
        // locally without any escalation.
        let mut config = small_config();
        config.refresh_every = 0;
        let mut s = EcoSession::new(ring_problem(8, 4, 4), config).unwrap();
        let mut probe = Probe {
            warm_solves: 0,
            escalated: 0,
        };
        for w in 3..6 {
            let delta = NetlistDelta::new().reweight_pair(id(1), id(2), w);
            let _ = s.apply_and_resolve(&delta, &mut probe).unwrap();
        }
        assert_eq!(probe.warm_solves, 3);
        assert_eq!(probe.escalated, 0);
    }

    #[test]
    fn tighten_crosses_staleness_threshold_and_rebuilds() {
        let mut s = EcoSession::new(ring_problem(8, 4, 4), small_config()).unwrap();
        let delta = NetlistDelta::new().tighten_cycle_time(0);
        let (apply, _) = s.apply_and_resolve(&delta, &mut NoopObserver).unwrap();
        assert!(apply.rebuilt, "touching all rows must take the rebuild path");
        assert_eq!(apply.patched_rows, 0);
        assert!(s.state_matches_fresh());
    }

    #[test]
    fn add_and_remove_component_keep_state_fresh() {
        let mut s = EcoSession::new(ring_problem(6, 3, 4), small_config()).unwrap();
        let delta = NetlistDelta::new()
            .add_component("extra", 1)
            .add_pair(id(0), id(6), 3);
        let (apply, solve) = s.apply_and_resolve(&delta, &mut NoopObserver).unwrap();
        assert!(apply.rebuilt, "component addition always rebuilds");
        assert_eq!(s.problem().n(), 7);
        assert_eq!(s.assignment().len(), 7);
        assert!(solve.feasible);
        assert!(s.state_matches_fresh());

        let delta = NetlistDelta::new().remove_component(id(6));
        let (apply, solve) = s.apply_and_resolve(&delta, &mut NoopObserver).unwrap();
        assert!(!apply.rebuilt, "a detach patches rows in place");
        assert!(apply.dirty.contains(&6) && apply.dirty.contains(&0));
        assert_eq!(s.problem().n(), 7, "detach keeps ids stable");
        assert!(solve.feasible);
        assert!(s.state_matches_fresh());
    }

    #[test]
    fn counters_track_deltas_and_rebuilds() {
        let mut s = EcoSession::new(ring_problem(8, 4, 4), small_config()).unwrap();
        let mut counters = CountersObserver::new();
        let _ = s
            .apply_and_resolve(
                &NetlistDelta::new().reweight_pair(id(1), id(2), 4),
                &mut counters,
            )
            .unwrap();
        let _ = s
            .apply_and_resolve(&NetlistDelta::new().tighten_cycle_time(0), &mut counters)
            .unwrap();
        let snap = counters.snapshot();
        assert_eq!(snap.eco_deltas, 2);
        assert_eq!(snap.eco_rebuilds, 1);
        assert!(snap.eco_patched_rows > 0);
    }

    #[test]
    fn invalid_delta_leaves_session_unchanged() {
        let mut s = EcoSession::new(ring_problem(6, 3, 4), small_config()).unwrap();
        let before = s.assignment().clone();
        let delta = NetlistDelta::new()
            .reweight_pair(id(0), id(1), 3)
            .add_pair(id(0), id(99), 1);
        assert!(s.apply(&delta, &mut NoopObserver).is_err());
        assert_eq!(s.deltas_applied(), 0);
        assert_eq!(s.assignment(), &before);
        assert!(s.state_matches_fresh());
    }

    #[test]
    fn run_script_drives_session_end_to_end() {
        let mut s = EcoSession::new(ring_problem(8, 4, 4), small_config()).unwrap();
        let text = "\
# warm-up edits\n\
{\"op\": \"reweight_pair\", \"a\": \"u1\", \"b\": \"u2\", \"weight\": 6}\n\
{\"op\": \"set_timing_bound\", \"a\": 2, \"b\": 3, \"bound\": 1}\n\
{\"op\": \"remove_pair\", \"a\": 4, \"b\": 5}\n";
        let summary = run_script(&mut s, text, &mut NoopObserver).unwrap();
        assert_eq!(summary.edits, 3);
        assert!(summary.all_feasible);
        assert!(s.state_matches_fresh());
        assert_eq!(s.deltas_applied(), 3);
    }

    #[test]
    fn warm_quality_stays_near_cold_on_small_instance() {
        let mut s = EcoSession::new(ring_problem(10, 5, 4), small_config()).unwrap();
        let edits = [
            NetlistDelta::new().reweight_pair(id(0), id(1), 7),
            NetlistDelta::new().add_pair(id(2), id(7), 4),
            NetlistDelta::new().remove_pair(id(5), id(6)),
            NetlistDelta::new().set_timing_bound(id(3), id(4), Some(1)),
        ];
        for delta in &edits {
            let (_, solve) = s.apply_and_resolve(delta, &mut NoopObserver).unwrap();
            assert!(solve.feasible);
            let cold = s.cold_solve().unwrap();
            assert!(cold.feasible);
            let warm_v = solve.embedded_value.unwrap();
            // Warm must stay within 5% of cold on the same patched problem.
            assert!(
                warm_v <= cold.embedded_value + cold.embedded_value.abs() / 20 + 1,
                "warm {warm_v} vs cold {} drifted past 5%",
                cold.embedded_value
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qbp_core::{ComponentId, PartitionTopology, ProblemBuilder};
    use qbp_observe::NoopObserver;
    use qbp_solver::QbpConfig;

    fn session(n: usize) -> EcoSession {
        let mut b = ProblemBuilder::on(PartitionTopology::grid(2, 2, (n as u64).max(4)).unwrap());
        for j in 0..n {
            b = b.component(format!("u{j}"), 1);
        }
        for j in 0..n - 1 {
            b = b.pair(format!("u{j}"), format!("u{}", j + 1), 2);
        }
        let problem = b.build().unwrap();
        EcoSession::new(
            problem,
            EcoConfig {
                solver: QbpConfig {
                    iterations: 8,
                    ..QbpConfig::default()
                },
                ..EcoConfig::default()
            },
        )
        .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Every applied delta leaves the session's patched Q-body and
        // profile bit-identical to from-scratch construction, across edit
        // kinds, including sequences that cross the patch-vs-rebuild
        // threshold and delete-then-re-add the same pair.
        #[test]
        fn session_state_always_matches_fresh(
            edits in proptest::collection::vec((0usize..5, 0usize..6, 0usize..6, 0i64..5), 1..10)
        ) {
            let n = 6;
            let mut s = session(n);
            for (kind, a, b, v) in edits {
                let (a, b) = (a % n, b % n);
                if a == b { continue; }
                let delta = match kind {
                    0 => NetlistDelta::new()
                        .add_pair(ComponentId::new(a), ComponentId::new(b), v),
                    1 => NetlistDelta::new()
                        .remove_pair(ComponentId::new(a), ComponentId::new(b))
                        .add_pair(ComponentId::new(a), ComponentId::new(b), v + 1),
                    2 => NetlistDelta::new().set_timing_bound(
                        ComponentId::new(a),
                        ComponentId::new(b),
                        if v == 0 { None } else { Some(v) },
                    ),
                    3 => NetlistDelta::new().remove_component(ComponentId::new(a)),
                    _ => NetlistDelta::new().tighten_cycle_time(v % 2),
                };
                let report = s.apply(&delta, &mut NoopObserver).unwrap();
                prop_assert!(s.state_matches_fresh(),
                    "state drifted after delta {} ({:?})", report.delta_seq, delta);
            }
        }

        // Warm re-solves end feasible for any single-op edit stream.
        #[test]
        fn warm_resolves_stay_feasible(
            edits in proptest::collection::vec((0usize..2, 0usize..6, 0usize..6, 0i64..4), 1..6)
        ) {
            let n = 6;
            let mut s = session(n);
            for (kind, a, b, v) in edits {
                let (a, b) = (a % n, b % n);
                if a == b { continue; }
                let delta = match kind {
                    0 => NetlistDelta::new()
                        .add_pair(ComponentId::new(a), ComponentId::new(b), v),
                    _ => NetlistDelta::new().set_timing_bound(
                        ComponentId::new(a),
                        ComponentId::new(b),
                        Some(v + 1),
                    ),
                };
                let (_, solve) = s.apply_and_resolve(&delta, &mut NoopObserver).unwrap();
                prop_assert!(solve.feasible);
            }
        }
    }
}
