//! The ECO session: a live problem + solver-state pair that absorbs
//! [`NetlistDelta`]s in place and re-solves warm.

use crate::delta::{EditOp, NetlistDelta};
use qbp_core::exec::{catch_panic, ExecCtx};
use qbp_core::{
    Assignment, ComponentId, Error, PartitionProfile, Problem, QBody, QMatrix,
};
use qbp_observe::{NoopObserver, SolveEvent, SolveObserver};
use qbp_solver::{moved_from, PenaltyMode, QbpConfig, QbpSolver, SolveReport, SolveWorkspace};
use std::time::Duration;

/// Iteration cap of the quality-refresh solve (mirrors the solver's warm
/// escalation cap).
const REFRESH_ITERATIONS: usize = 12;

/// Retries of a capped-escalation re-solve whose worker panicked
/// ([`Error::Internal`]); each retry backs off exponentially (1 ms, 2 ms).
/// Retries make sense precisely for panics — the descent is deterministic
/// for a given seed, but a panic can come from a transient environment
/// fault, and the warm result below stays a valid fallback either way.
const ESCALATION_RETRIES: usize = 2;

/// Configuration of an [`EcoSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct EcoConfig {
    /// Timing penalty embedded in `Q̂`. `None` resolves the auto penalty
    /// once at session creation and then freezes it — a stable penalty is
    /// what makes patched state comparable bit-for-bit against fresh
    /// construction across the whole edit stream.
    pub penalty: Option<qbp_core::Cost>,
    /// Rebuild instead of patching when the touched rows reach this
    /// percentage of all rows (default 75, mirroring the solver's 3N/4
    /// patch-vs-rebuild rule).
    pub rebuild_threshold_pct: usize,
    /// Solver knobs for cold and warm solves. The penalty mode inside is
    /// overridden with the session's frozen penalty.
    pub solver: QbpConfig,
    /// Quality-refresh cadence: every `refresh_every`-th delta, the warm
    /// re-solve is followed by a capped full solve seeded from its result
    /// (the same cap as the infeasibility escalation rung). Localized
    /// repair keeps each edit feasible but lets quality drift over a long
    /// stream; the periodic re-anchor bounds that drift while staying far
    /// cheaper than cold solves. `0` disables (default 32).
    pub refresh_every: usize,
}

impl Default for EcoConfig {
    fn default() -> Self {
        EcoConfig {
            penalty: None,
            rebuild_threshold_pct: 75,
            solver: QbpConfig::default(),
            refresh_every: 32,
        }
    }
}

/// What applying one delta did to the session state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReport {
    /// 1-based sequence number of the delta within the session.
    pub delta_seq: usize,
    /// Canonical ops applied (after dedup/merge).
    pub ops: usize,
    /// CSR rows re-derived and spliced in place (0 on the rebuild path).
    pub patched_rows: usize,
    /// Whether the staleness threshold (or a component addition) forced a
    /// full state rebuild instead of row patches.
    pub rebuilt: bool,
    /// The dirty component set: every component whose `Q̂` rows changed.
    /// Feed this to [`EcoSession::resolve`].
    pub dirty: Vec<usize>,
}

/// A live incremental-re-partitioning session.
///
/// The session owns the [`Problem`], the current [`Assignment`], the sparse
/// `Q̂` state ([`QBody`]) and the embedded [`PartitionProfile`], and keeps
/// all four consistent across [`NetlistDelta`]s: small deltas patch the CSR
/// rows and profile records of the touched components in `O(touched · deg)`,
/// large ones (or component additions) rebuild, per
/// [`EcoConfig::rebuild_threshold_pct`]. After every apply the state is
/// bit-identical to building from scratch on the mutated problem
/// ([`EcoSession::state_matches_fresh`]).
///
/// ```
/// use qbp_core::{Assignment, ComponentId, PartitionTopology, ProblemBuilder};
/// use qbp_eco::{EcoConfig, EcoSession, NetlistDelta};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let problem = ProblemBuilder::on(PartitionTopology::grid(2, 2, 10)?)
///     .component("a", 1)
///     .component("b", 1)
///     .component("c", 1)
///     .pair("a", "b", 5)
///     .build()?;
/// let mut session = EcoSession::new(problem, EcoConfig::default())?;
/// let delta = NetlistDelta::new()
///     .add_pair(ComponentId::new(1), ComponentId::new(2), 3);
/// let (apply, solve) = session.apply_and_resolve(&delta, &mut qbp_observe::NoopObserver)?;
/// assert!(solve.feasible);
/// assert!(!apply.rebuilt);
/// assert!(session.state_matches_fresh());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EcoSession {
    problem: Problem,
    penalty: qbp_core::Cost,
    /// `None` only transiently while a `QMatrix` temporarily owns the body.
    body: Option<QBody>,
    assignment: Assignment,
    profile: PartitionProfile,
    config: EcoConfig,
    deltas: usize,
}

impl EcoSession {
    /// Opens a session by cold-solving `problem` for the initial
    /// assignment.
    ///
    /// # Errors
    ///
    /// Propagates solver and penalty-configuration errors.
    pub fn new(problem: Problem, config: EcoConfig) -> Result<Self, Error> {
        let penalty = Self::resolve_penalty(&problem, &config)?;
        let solver = QbpSolver::new(QbpConfig {
            penalty: PenaltyMode::Fixed(penalty),
            ..config.solver
        });
        let outcome = solver.solve(&problem, None)?;
        Self::with_assignment_and_penalty(problem, outcome.assignment, penalty, config)
    }

    /// Opens a session around an existing assignment (e.g. the result of a
    /// previous batch run). The assignment need not be feasible; the first
    /// [`EcoSession::resolve`] will repair it.
    ///
    /// # Errors
    ///
    /// Returns an error when the assignment does not match the problem's
    /// dimensions or the penalty configuration is invalid.
    pub fn with_assignment(
        problem: Problem,
        assignment: Assignment,
        config: EcoConfig,
    ) -> Result<Self, Error> {
        let penalty = Self::resolve_penalty(&problem, &config)?;
        Self::with_assignment_and_penalty(problem, assignment, penalty, config)
    }

    fn resolve_penalty(problem: &Problem, config: &EcoConfig) -> Result<qbp_core::Cost, Error> {
        match config.penalty {
            Some(p) => Ok(p),
            None => Ok(QMatrix::with_auto_penalty(problem)?.penalty()),
        }
    }

    fn with_assignment_and_penalty(
        problem: Problem,
        assignment: Assignment,
        penalty: qbp_core::Cost,
        config: EcoConfig,
    ) -> Result<Self, Error> {
        problem.validate_assignment(&assignment)?;
        let body = QBody::build(&problem, penalty)?;
        let q = QMatrix::from_body(&problem, body);
        let profile = PartitionProfile::embedded(&q, &assignment);
        let body = q.into_body();
        Ok(EcoSession {
            problem,
            penalty,
            body: Some(body),
            assignment,
            profile,
            config,
            deltas: 0,
        })
    }

    /// The current (mutated) problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The current assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The live embedded partition profile.
    pub fn profile(&self) -> &PartitionProfile {
        &self.profile
    }

    /// The frozen timing penalty of this session.
    pub fn penalty(&self) -> qbp_core::Cost {
        self.penalty
    }

    /// Number of deltas applied so far.
    pub fn deltas_applied(&self) -> usize {
        self.deltas
    }

    /// Validates, canonicalizes and applies `delta` in place, keeping the
    /// CSR `Q̂` rows, timing-class tables and partition profile in sync, and
    /// emits one [`SolveEvent::DeltaApplied`]. The assignment is *not*
    /// re-solved — call [`EcoSession::resolve`] with the returned dirty set
    /// (or use [`EcoSession::apply_and_resolve`]).
    ///
    /// # Errors
    ///
    /// Returns the first validation error; the session is unchanged in that
    /// case.
    pub fn apply(
        &mut self,
        delta: &NetlistDelta,
        obs: &mut dyn SolveObserver,
    ) -> Result<ApplyReport, Error> {
        delta.validate(&self.problem)?;
        let mut canonical = delta.clone();
        canonical.canonicalize();

        let old_n = self.problem.n();
        let mut touched: Vec<usize> = Vec::new();
        let mut touched_all = false;
        for op in canonical.ops() {
            match op {
                EditOp::AddComponent { name, size } => {
                    let id = self
                        .problem
                        .add_component(name.clone(), *size)
                        .expect("validated delta applies infallibly");
                    touched.push(id.index());
                }
                EditOp::RemoveComponent { id } => {
                    // The partners lose records too — capture them before
                    // the detach drops the adjacency.
                    let c = self.problem.circuit();
                    let t = self.problem.timing();
                    touched.push(id.index());
                    touched.extend(c.out_connections(*id).map(|(o, _)| o.index()));
                    touched.extend(c.in_connections(*id).map(|(o, _)| o.index()));
                    touched.extend(t.constraints_from(*id).map(|(o, _)| o.index()));
                    touched.extend(t.constraints_into(*id).map(|(o, _)| o.index()));
                    self.problem
                        .detach_component(*id)
                        .expect("validated delta applies infallibly");
                }
                EditOp::AddPair { a, b, weight } | EditOp::ReweightPair { a, b, weight } => {
                    self.problem
                        .set_pair_weight(*a, *b, *weight)
                        .expect("validated delta applies infallibly");
                    touched.push(a.index());
                    touched.push(b.index());
                }
                EditOp::RemovePair { a, b } => {
                    self.problem
                        .set_pair_weight(*a, *b, 0)
                        .expect("validated delta applies infallibly");
                    touched.push(a.index());
                    touched.push(b.index());
                }
                EditOp::SetTimingBound { a, b, bound } => {
                    self.problem
                        .set_timing_bound(*a, *b, *bound)
                        .expect("validated delta applies infallibly");
                    touched.push(a.index());
                    touched.push(b.index());
                }
                EditOp::TightenCycleTime { delta } => {
                    self.problem
                        .tighten_cycle_time(*delta)
                        .expect("validated delta applies infallibly");
                    touched_all = true;
                }
            }
        }

        let n = self.problem.n();
        if n > old_n {
            // Place each new component in the partition with the most free
            // capacity (deterministic: lowest index wins ties).
            let m = self.problem.m();
            let capacities = self.problem.topology().capacities();
            let mut used = vec![0u64; m];
            for j in 0..old_n {
                used[self.assignment.part_index(j)] +=
                    self.problem.circuit().size(ComponentId::new(j));
            }
            let mut parts: Vec<u32> = self.assignment.as_slice().to_vec();
            for j in old_n..n {
                let size = self.problem.circuit().size(ComponentId::new(j));
                let best = (0..m)
                    .max_by_key(|&i| (capacities[i].saturating_sub(used[i]), std::cmp::Reverse(i)))
                    .expect("m >= 1");
                used[best] += size;
                parts.push(best as u32);
            }
            self.assignment = Assignment::from_parts(parts)
                .expect("placement stays within partition range");
        }

        touched.sort_unstable();
        touched.dedup();
        if touched_all {
            touched = (0..n).collect();
        }

        // Patch vs. rebuild: component additions change the row count and
        // always rebuild; otherwise the staleness threshold decides.
        let stale = touched.len() * 100 >= n * self.config.rebuild_threshold_pct;
        let (patched_rows, rebuilt) = if n != old_n || stale {
            let fresh = QBody::build(&self.problem, self.penalty)?;
            let q = QMatrix::from_body(&self.problem, fresh);
            self.profile = PartitionProfile::embedded(&q, &self.assignment);
            self.body = Some(q.into_body());
            (0, true)
        } else {
            let body = self.body.as_mut().expect("body present between applies");
            let patched = body.patch_rows(&self.problem, &touched);
            let q = QMatrix::from_body(
                &self.problem,
                self.body.take().expect("body present between applies"),
            );
            self.profile
                .patch_structure(&q, &self.assignment, &touched);
            self.body = Some(q.into_body());
            (patched, false)
        };

        self.deltas += 1;
        obs.on_event(&SolveEvent::DeltaApplied {
            delta: self.deltas,
            ops: canonical.len(),
            patched_rows,
            rebuilt,
        });
        Ok(ApplyReport {
            delta_seq: self.deltas,
            ops: canonical.len(),
            patched_rows,
            rebuilt,
            dirty: touched,
        })
    }

    /// Re-solves warm from the current assignment: a localized descent over
    /// `dirty` and its one-hop frontier, escalating to a capped (then, if
    /// needed, full-budget) solve only when the local pass leaves the
    /// assignment infeasible ([`QbpSolver::solve_warm`]). Every
    /// [`EcoConfig::refresh_every`]-th delta additionally runs the capped
    /// solve as a quality re-anchor (reported as `escalated`). Updates the
    /// session's assignment and profile and emits one
    /// [`SolveEvent::WarmSolve`].
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn resolve(
        &mut self,
        dirty: &[usize],
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        self.resolve_exec(dirty, &ExecCtx::unbounded(), obs)
    }

    /// [`EcoSession::resolve`] under an execution budget: the warm descent
    /// and its escalation rungs check `exec` at iteration boundaries, and the
    /// quality-refresh solve is both budgeted and panic-isolated — a worker
    /// panic ([`Error::Internal`]) retries up to [`ESCALATION_RETRIES`] times
    /// with exponential backoff, then falls back to the warm result (the
    /// refresh is an optional polish; losing it degrades quality, never
    /// correctness).
    ///
    /// # Errors
    ///
    /// Propagates solver errors other than refresh-rung worker panics.
    pub fn resolve_exec(
        &mut self,
        dirty: &[usize],
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let solver = QbpSolver::new(QbpConfig {
            penalty: PenaltyMode::Fixed(self.penalty),
            ..self.config.solver
        });
        let mut warm = solver.solve_warm_exec(&self.problem, &self.assignment, dirty, exec, obs)?;
        let mut status = warm.status;
        // Quality-refresh rung: localized repair keeps each edit feasible
        // but the assignment drifts from what a from-scratch solve would
        // find as local fixes stack up. Every `refresh_every`-th delta,
        // re-anchor with a capped full solve seeded from the warm result,
        // keeping it only when it is no worse.
        if self.config.refresh_every > 0
            && self.deltas.is_multiple_of(self.config.refresh_every)
            && !warm.escalated
            && status.is_completed()
        {
            let capped = QbpConfig {
                iterations: REFRESH_ITERATIONS.min(self.config.solver.iterations.max(1)),
                penalty: PenaltyMode::Fixed(self.penalty),
                ..self.config.solver
            };
            let capped_solver = QbpSolver::new(capped);
            let mut polished = None;
            for attempt in 0..=ESCALATION_RETRIES {
                let run = catch_panic(|| {
                    capped_solver.solve_observed_exec(
                        &self.problem,
                        Some(&warm.assignment),
                        &mut SolveWorkspace::new(),
                        exec,
                        obs,
                    )
                })
                .and_then(|r| r);
                match run {
                    Ok(out) => {
                        polished = Some(out);
                        break;
                    }
                    Err(Error::Internal { .. }) => {
                        obs.on_event(&SolveEvent::WorkerPanicked { run: attempt });
                        if attempt < ESCALATION_RETRIES {
                            std::thread::sleep(Duration::from_millis(1 << attempt));
                        }
                        // Retries exhausted: keep the warm result.
                    }
                    Err(e) => return Err(e),
                }
            }
            warm.escalated = true;
            if let Some(polished) = polished {
                status = status.merge(polished.status);
                if (polished.feasible && !warm.feasible)
                    || (polished.feasible == warm.feasible
                        && polished.embedded_value <= warm.embedded_value)
                {
                    warm.embedded_value = polished.embedded_value;
                    warm.objective = polished.objective;
                    warm.feasible = polished.feasible;
                    warm.assignment = polished.assignment;
                }
            }
        }
        obs.on_event(&SolveEvent::WarmSolve {
            delta: self.deltas,
            dirty: dirty.len(),
            escalated: warm.escalated,
            value: warm.embedded_value,
            feasible: warm.feasible,
        });
        let moves_applied = moved_from(Some(&self.assignment), &warm.assignment);
        self.profile.update(&self.assignment, &warm.assignment);
        self.assignment = warm.assignment.clone();
        Ok(SolveReport {
            solver: "qbp-eco",
            moves_applied,
            objective: warm.objective,
            embedded_value: Some(warm.embedded_value),
            feasible: warm.feasible,
            iterations: 0,
            elapsed: warm.elapsed,
            auto_profile: None,
            assignment: warm.assignment,
            status,
        })
    }

    /// Re-anchors the session with a full-budget solve seeded from the
    /// current assignment, adopting the result only when it is no worse
    /// (feasible-first, then embedded value). ECO flows call this between
    /// edit bursts — or right after [`EcoSession::with_assignment`] on a
    /// rough baseline — to buy cold-solve quality once without paying it
    /// per edit.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn reanchor(&mut self, obs: &mut dyn SolveObserver) -> Result<SolveReport, Error> {
        let solver = QbpSolver::new(QbpConfig {
            penalty: PenaltyMode::Fixed(self.penalty),
            ..self.config.solver
        });
        let out = solver.solve_observed(
            &self.problem,
            Some(&self.assignment),
            &mut SolveWorkspace::new(),
            obs,
        )?;
        let body = self.body.take().expect("body present between applies");
        let q = QMatrix::from_body(&self.problem, body);
        let current_value = q.value(&self.assignment);
        let current_feasible =
            qbp_core::check_feasibility(&self.problem, &self.assignment).is_feasible();
        self.body = Some(q.into_body());
        let adopt = (out.feasible && !current_feasible)
            || (out.feasible == current_feasible && out.embedded_value <= current_value);
        let (moves_applied, objective, embedded, feasible) = if adopt {
            let moves = moved_from(Some(&self.assignment), &out.assignment);
            self.profile.update(&self.assignment, &out.assignment);
            self.assignment = out.assignment;
            (moves, out.objective, out.embedded_value, out.feasible)
        } else {
            let eval = qbp_core::Evaluator::new(&self.problem);
            (0, eval.cost(&self.assignment), current_value, current_feasible)
        };
        Ok(SolveReport {
            solver: "qbp-eco",
            moves_applied,
            objective,
            embedded_value: Some(embedded),
            feasible,
            iterations: out.iterations,
            elapsed: out.elapsed,
            auto_profile: None,
            assignment: self.assignment.clone(),
            status: out.status,
        })
    }

    /// [`EcoSession::apply`] followed by [`EcoSession::resolve`] on the
    /// delta's dirty set.
    ///
    /// # Errors
    ///
    /// Returns validation errors (session unchanged) or solver errors (delta
    /// applied, assignment unchanged).
    pub fn apply_and_resolve(
        &mut self,
        delta: &NetlistDelta,
        obs: &mut dyn SolveObserver,
    ) -> Result<(ApplyReport, SolveReport), Error> {
        let apply = self.apply(delta, obs)?;
        let solve = self.resolve(&apply.dirty, obs)?;
        Ok((apply, solve))
    }

    /// [`EcoSession::apply_and_resolve`] under an execution budget: the
    /// apply is unconditional (state consistency is the session's minimum
    /// work), the re-solve is budgeted via [`EcoSession::resolve_exec`].
    ///
    /// # Errors
    ///
    /// Same as [`EcoSession::apply_and_resolve`].
    pub fn apply_and_resolve_exec(
        &mut self,
        delta: &NetlistDelta,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<(ApplyReport, SolveReport), Error> {
        let apply = self.apply(delta, obs)?;
        let solve = self.resolve_exec(&apply.dirty, exec, obs)?;
        Ok((apply, solve))
    }

    /// Audits the incremental state: rebuilds `Q̂` and the profile from
    /// scratch on the current problem and compares bit-for-bit against the
    /// live patched state. `true` means every field matches. Used by the
    /// equivalence proptests and the `eco_bench` gate; O(E + T), so cheap
    /// enough to run per edit in audits.
    pub fn state_matches_fresh(&self) -> bool {
        let Ok(fresh) = QBody::build(&self.problem, self.penalty) else {
            return false;
        };
        if self.body.as_ref() != Some(&fresh) {
            return false;
        }
        let q = QMatrix::from_body(&self.problem, fresh);
        let fresh_profile = PartitionProfile::embedded(&q, &self.assignment);
        self.profile == fresh_profile
    }

    /// Cold-solves the current (mutated) problem from scratch with the
    /// session's solver config and frozen penalty — the reference point for
    /// warm-vs-cold quality and speed comparisons. Does not change the
    /// session.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn cold_solve(&self) -> Result<qbp_solver::QbpOutcome, Error> {
        let solver = QbpSolver::new(QbpConfig {
            penalty: PenaltyMode::Fixed(self.penalty),
            ..self.config.solver
        });
        solver.solve(&self.problem, None)
    }
}

/// Convenience: apply a delta and warm-resolve without wiring an observer.
///
/// # Errors
///
/// See [`EcoSession::apply_and_resolve`].
pub fn apply_and_resolve_quiet(
    session: &mut EcoSession,
    delta: &NetlistDelta,
) -> Result<(ApplyReport, SolveReport), Error> {
    session.apply_and_resolve(delta, &mut NoopObserver)
}
