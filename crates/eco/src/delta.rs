//! Typed netlist deltas: the edit-op taxonomy of ECO mode.
//!
//! A [`NetlistDelta`] is an ordered batch of [`EditOp`]s that is validated as
//! a whole ([`NetlistDelta::validate`]) and canonicalized
//! ([`NetlistDelta::canonicalize`]) before an
//! [`EcoSession`](crate::EcoSession) applies it. Validation simulates the
//! batch read-only, so a validated delta applies infallibly; canonicalization
//! folds redundant edits of the same pair so the patch cost tracks the
//! number of *distinct* rows touched, not the raw edit count.

use qbp_core::{ComponentId, Cost, Delay, Error, Problem, Size};

/// One typed netlist edit.
///
/// Wire edits have *overwrite* semantics: [`EditOp::AddPair`],
/// [`EditOp::ReweightPair`] and [`EditOp::RemovePair`] all set the symmetric
/// pair weight (`RemovePair` sets it to 0), so they compose by
/// last-wins. "Remove component" is a *detach*: every wire and timing
/// constraint incident to the component is dropped, but the component itself
/// remains as an isolated node so component ids stay stable across the
/// session (its size still occupies capacity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Append a new component to the circuit.
    AddComponent {
        /// Display name of the new component.
        name: String,
        /// Size (capacity consumption) of the new component.
        size: Size,
    },
    /// Detach a component: drop its wires and timing constraints, keep the
    /// node (ids stay stable).
    RemoveComponent {
        /// The component to detach.
        id: ComponentId,
    },
    /// Set the symmetric wire weight of a pair.
    AddPair {
        /// First endpoint.
        a: ComponentId,
        /// Second endpoint.
        b: ComponentId,
        /// New symmetric weight (`a[a][b] = a[b][a] = weight`).
        weight: Cost,
    },
    /// Remove the wires of a pair (set the symmetric weight to 0).
    RemovePair {
        /// First endpoint.
        a: ComponentId,
        /// Second endpoint.
        b: ComponentId,
    },
    /// Overwrite the symmetric wire weight of a pair.
    ReweightPair {
        /// First endpoint.
        a: ComponentId,
        /// Second endpoint.
        b: ComponentId,
        /// New symmetric weight.
        weight: Cost,
    },
    /// Set (or with `None` remove) the symmetric timing bound of a pair.
    SetTimingBound {
        /// First endpoint.
        a: ComponentId,
        /// Second endpoint.
        b: ComponentId,
        /// New bound; `None` removes the constraint.
        bound: Option<Delay>,
    },
    /// Tighten every timing bound by `delta` (clamping at 0): the global
    /// "cycle time shrank" edit.
    TightenCycleTime {
        /// Amount to subtract from every bound.
        delta: Delay,
    },
}

impl EditOp {
    /// Whether the op adds or detaches a component (the ops that suppress
    /// cross-op merging in [`NetlistDelta::canonicalize`]).
    pub fn is_component_op(&self) -> bool {
        matches!(
            self,
            EditOp::AddComponent { .. } | EditOp::RemoveComponent { .. }
        )
    }
}

/// An ordered, validated-as-a-whole batch of netlist edits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistDelta {
    ops: Vec<EditOp>,
}

impl NetlistDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an arbitrary op.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Fluent: append a new component.
    pub fn add_component(mut self, name: impl Into<String>, size: Size) -> Self {
        self.ops.push(EditOp::AddComponent {
            name: name.into(),
            size,
        });
        self
    }

    /// Fluent: detach a component.
    pub fn remove_component(mut self, id: ComponentId) -> Self {
        self.ops.push(EditOp::RemoveComponent { id });
        self
    }

    /// Fluent: set a symmetric pair weight.
    pub fn add_pair(mut self, a: ComponentId, b: ComponentId, weight: Cost) -> Self {
        self.ops.push(EditOp::AddPair { a, b, weight });
        self
    }

    /// Fluent: remove a pair's wires.
    pub fn remove_pair(mut self, a: ComponentId, b: ComponentId) -> Self {
        self.ops.push(EditOp::RemovePair { a, b });
        self
    }

    /// Fluent: overwrite a pair's symmetric weight.
    pub fn reweight_pair(mut self, a: ComponentId, b: ComponentId, weight: Cost) -> Self {
        self.ops.push(EditOp::ReweightPair { a, b, weight });
        self
    }

    /// Fluent: set (or remove, with `None`) a symmetric timing bound.
    pub fn set_timing_bound(mut self, a: ComponentId, b: ComponentId, bound: Option<Delay>) -> Self {
        self.ops.push(EditOp::SetTimingBound { a, b, bound });
        self
    }

    /// Fluent: tighten every timing bound by `delta`.
    pub fn tighten_cycle_time(mut self, delta: Delay) -> Self {
        self.ops.push(EditOp::TightenCycleTime { delta });
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks the whole batch against `problem` without mutating anything:
    /// every referenced id must exist (ids introduced by earlier
    /// `AddComponent` ops in the same delta count), pair endpoints must be
    /// distinct, weights, bounds and tighten amounts must be non-negative,
    /// and added components must keep the total size within total capacity.
    /// A delta that validates applies infallibly.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, as the same [`Error`] variant the
    /// underlying mutation would have produced.
    pub fn validate(&self, problem: &Problem) -> Result<(), Error> {
        let mut n = problem.n();
        let mut total_size = problem.circuit().total_size();
        let total_capacity = problem.topology().total_capacity();
        let check_id = |id: ComponentId, n: usize| -> Result<(), Error> {
            if id.index() >= n {
                return Err(Error::ComponentOutOfRange { id, len: n });
            }
            Ok(())
        };
        let check_pair = |a: ComponentId, b: ComponentId, n: usize| -> Result<(), Error> {
            check_id(a, n)?;
            check_id(b, n)?;
            if a == b {
                return Err(Error::SelfLoop(a));
            }
            Ok(())
        };
        for op in &self.ops {
            match op {
                EditOp::AddComponent { size, .. } => {
                    total_size += size;
                    if total_size > total_capacity {
                        return Err(Error::CapacityImpossible {
                            total_size,
                            total_capacity,
                        });
                    }
                    n += 1;
                }
                EditOp::RemoveComponent { id } => check_id(*id, n)?,
                EditOp::AddPair { a, b, weight } | EditOp::ReweightPair { a, b, weight } => {
                    check_pair(*a, *b, n)?;
                    if *weight < 0 {
                        return Err(Error::NegativeValue {
                            what: "connection weight",
                            value: *weight,
                        });
                    }
                }
                EditOp::RemovePair { a, b } => check_pair(*a, *b, n)?,
                EditOp::SetTimingBound { a, b, bound } => {
                    check_pair(*a, *b, n)?;
                    if let Some(d) = bound {
                        if *d < 0 {
                            return Err(Error::NegativeValue {
                                what: "timing bound",
                                value: *d,
                            });
                        }
                    }
                }
                EditOp::TightenCycleTime { delta } => {
                    if *delta < 0 {
                        return Err(Error::NegativeValue {
                            what: "cycle-time tightening",
                            value: *delta,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Normalizes and dedupes the batch in place; returns the number of ops
    /// eliminated.
    ///
    /// * Pair ops are normalized to `a < b` (all pair edits are symmetric).
    /// * When the delta contains no component ops, wire edits of the same
    ///   pair fold to the last one (they all overwrite the symmetric
    ///   weight), and — when additionally no [`EditOp::TightenCycleTime`] is
    ///   present — timing-bound edits of the same pair fold likewise.
    ///   Component ops suppress merging because an id may refer to different
    ///   netlist states before and after a detach; a tighten suppresses
    ///   timing-bound merging because it reads the bounds standing at its
    ///   position in the batch.
    /// * Consecutive tighten ops sum (clamping at 0 is monotone, so
    ///   `tighten(x); tighten(y)` ≡ `tighten(x + y)`).
    pub fn canonicalize(&mut self) -> usize {
        let before = self.ops.len();
        for op in &mut self.ops {
            match op {
                EditOp::AddPair { a, b, .. }
                | EditOp::RemovePair { a, b }
                | EditOp::ReweightPair { a, b, .. }
                | EditOp::SetTimingBound { a, b, .. } if a.index() > b.index() => {
                    std::mem::swap(a, b);
                }
                _ => {}
            }
        }
        let has_component_op = self.ops.iter().any(EditOp::is_component_op);
        let has_tighten = self
            .ops
            .iter()
            .any(|op| matches!(op, EditOp::TightenCycleTime { .. }));
        if !has_component_op {
            // Last-wins fold: walk backwards, keep the first (i.e. latest)
            // edit seen per (pair, kind) key.
            let mut keep = vec![true; self.ops.len()];
            let mut seen: Vec<(usize, usize, bool)> = Vec::new();
            for (i, op) in self.ops.iter().enumerate().rev() {
                let key = match op {
                    EditOp::AddPair { a, b, .. }
                    | EditOp::RemovePair { a, b }
                    | EditOp::ReweightPair { a, b, .. } => Some((a.index(), b.index(), false)),
                    EditOp::SetTimingBound { a, b, .. } if !has_tighten => {
                        Some((a.index(), b.index(), true))
                    }
                    _ => None,
                };
                if let Some(key) = key {
                    if seen.contains(&key) {
                        keep[i] = false;
                    } else {
                        seen.push(key);
                    }
                }
            }
            let mut i = 0;
            self.ops.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
        // Sum consecutive tightens.
        let mut i = 0;
        while i + 1 < self.ops.len() {
            if let (
                EditOp::TightenCycleTime { delta: d1 },
                EditOp::TightenCycleTime { delta: d2 },
            ) = (&self.ops[i], &self.ops[i + 1])
            {
                let sum = d1.saturating_add(*d2);
                self.ops[i] = EditOp::TightenCycleTime { delta: sum };
                self.ops.remove(i + 1);
            } else {
                i += 1;
            }
        }
        before - self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder};

    fn problem() -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        c.add_component("c", 1);
        c.add_wires(a, b, 5).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 10).unwrap())
            .build()
            .unwrap()
    }

    fn id(i: usize) -> ComponentId {
        ComponentId::new(i)
    }

    #[test]
    fn validate_accepts_ids_added_in_same_delta() {
        let p = problem();
        let d = NetlistDelta::new()
            .add_component("new", 2)
            .add_pair(id(0), id(3), 4);
        assert!(d.validate(&p).is_ok());
        // ...but not ids beyond what the delta itself adds.
        let d = NetlistDelta::new().add_pair(id(0), id(3), 4);
        assert!(matches!(
            d.validate(&p),
            Err(Error::ComponentOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_ops() {
        let p = problem();
        assert!(matches!(
            NetlistDelta::new().add_pair(id(1), id(1), 3).validate(&p),
            Err(Error::SelfLoop(_))
        ));
        assert!(matches!(
            NetlistDelta::new().add_pair(id(0), id(1), -3).validate(&p),
            Err(Error::NegativeValue { .. })
        ));
        assert!(matches!(
            NetlistDelta::new().tighten_cycle_time(-1).validate(&p),
            Err(Error::NegativeValue { .. })
        ));
        assert!(matches!(
            NetlistDelta::new().add_component("huge", 1000).validate(&p),
            Err(Error::CapacityImpossible { .. })
        ));
    }

    #[test]
    fn canonicalize_folds_same_pair_wire_edits_last_wins() {
        let mut d = NetlistDelta::new()
            .add_pair(id(0), id(1), 3)
            .remove_pair(id(1), id(0)) // normalized to (0, 1)
            .reweight_pair(id(0), id(1), 7)
            .add_pair(id(0), id(2), 1);
        let removed = d.canonicalize();
        assert_eq!(removed, 2);
        assert_eq!(
            d.ops(),
            &[
                EditOp::ReweightPair {
                    a: id(0),
                    b: id(1),
                    weight: 7
                },
                EditOp::AddPair {
                    a: id(0),
                    b: id(2),
                    weight: 1
                },
            ]
        );
    }

    #[test]
    fn canonicalize_keeps_timing_edits_apart_across_tighten() {
        let mut d = NetlistDelta::new()
            .set_timing_bound(id(0), id(1), Some(5))
            .tighten_cycle_time(2)
            .set_timing_bound(id(0), id(1), Some(7));
        assert_eq!(d.canonicalize(), 0, "tighten suppresses bound merging");
        assert_eq!(d.len(), 3);
        // Without the tighten the two bound edits fold.
        let mut d = NetlistDelta::new()
            .set_timing_bound(id(0), id(1), Some(5))
            .set_timing_bound(id(0), id(1), Some(7));
        assert_eq!(d.canonicalize(), 1);
        assert_eq!(
            d.ops(),
            &[EditOp::SetTimingBound {
                a: id(0),
                b: id(1),
                bound: Some(7)
            }]
        );
    }

    #[test]
    fn canonicalize_sums_consecutive_tightens_and_respects_component_ops() {
        let mut d = NetlistDelta::new()
            .tighten_cycle_time(1)
            .tighten_cycle_time(2);
        assert_eq!(d.canonicalize(), 1);
        assert_eq!(d.ops(), &[EditOp::TightenCycleTime { delta: 3 }]);

        // A component op suppresses pair merging entirely.
        let mut d = NetlistDelta::new()
            .add_pair(id(0), id(1), 3)
            .remove_component(id(2))
            .add_pair(id(0), id(1), 4);
        assert_eq!(d.canonicalize(), 0);
        assert_eq!(d.len(), 3);
    }
}
