//! ECO edit scripts: one JSON object per line, one edit per line.
//!
//! The format is deliberately flat so it round-trips through `jq` and the
//! trace tooling:
//!
//! ```text
//! {"op": "add_component", "name": "u99", "size": 3}
//! {"op": "remove_component", "c": "u42"}
//! {"op": "add_pair", "a": 3, "b": 17, "weight": 2}
//! {"op": "remove_pair", "a": "u3", "b": "u17"}
//! {"op": "reweight_pair", "a": 3, "b": 17, "weight": 9}
//! {"op": "set_timing_bound", "a": 3, "b": 17, "bound": 4}
//! {"op": "set_timing_bound", "a": 3, "b": 17}            // no bound = remove
//! {"op": "tighten_cycle_time", "delta": 1}
//! ```
//!
//! Component references (`a`, `b`, `c`) are either 0-based indices (JSON
//! numbers) or component names (JSON strings); names resolve against the
//! session's problem at application time. Blank lines and lines starting
//! with `#` are skipped.

use crate::delta::{EditOp, NetlistDelta};
use crate::session::EcoSession;
use qbp_core::io::ParseError;
use qbp_core::{ComponentId, Cost, Error, ExecCtx, ExecStatus, Problem, QbpError};
use qbp_observe::SolveObserver;

/// A component reference in a script: index or name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompRef {
    /// 0-based component index.
    Id(usize),
    /// Component name, resolved against the problem when the edit applies.
    Name(String),
}

impl CompRef {
    /// Resolves against `problem` (names by linear scan, first match).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownComponentName`] for an unresolvable name and
    /// [`Error::ComponentOutOfRange`] for an out-of-range index.
    pub fn resolve(&self, problem: &Problem) -> Result<ComponentId, Error> {
        match self {
            CompRef::Id(i) => {
                if *i >= problem.n() {
                    return Err(Error::ComponentOutOfRange {
                        id: ComponentId::new(*i),
                        len: problem.n(),
                    });
                }
                Ok(ComponentId::new(*i))
            }
            CompRef::Name(name) => problem
                .circuit()
                .iter()
                .find(|(_, c)| c.name() == name)
                .map(|(id, _)| id)
                .ok_or_else(|| Error::UnknownComponentName(name.clone())),
        }
    }
}

/// One parsed script line: an edit whose component references may still be
/// names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// `{"op": "add_component", "name": ..., "size": ...}`
    AddComponent {
        /// Name of the new component.
        name: String,
        /// Size of the new component.
        size: u64,
    },
    /// `{"op": "remove_component", "c": ...}`
    RemoveComponent {
        /// The component to detach.
        c: CompRef,
    },
    /// `{"op": "add_pair", "a": ..., "b": ..., "weight": ...}`
    AddPair {
        /// First endpoint.
        a: CompRef,
        /// Second endpoint.
        b: CompRef,
        /// Symmetric weight.
        weight: Cost,
    },
    /// `{"op": "remove_pair", "a": ..., "b": ...}`
    RemovePair {
        /// First endpoint.
        a: CompRef,
        /// Second endpoint.
        b: CompRef,
    },
    /// `{"op": "reweight_pair", "a": ..., "b": ..., "weight": ...}`
    ReweightPair {
        /// First endpoint.
        a: CompRef,
        /// Second endpoint.
        b: CompRef,
        /// New symmetric weight.
        weight: Cost,
    },
    /// `{"op": "set_timing_bound", "a": ..., "b": ..., "bound": ...?}`
    SetTimingBound {
        /// First endpoint.
        a: CompRef,
        /// Second endpoint.
        b: CompRef,
        /// New bound; absent = remove the constraint.
        bound: Option<i64>,
    },
    /// `{"op": "tighten_cycle_time", "delta": ...}`
    TightenCycleTime {
        /// Amount subtracted from every bound.
        delta: i64,
    },
}

impl ScriptOp {
    /// Resolves names to ids against `problem`, yielding an applicable
    /// [`EditOp`].
    ///
    /// # Errors
    ///
    /// Returns name/range resolution errors (see [`CompRef::resolve`]).
    pub fn resolve(&self, problem: &Problem) -> Result<EditOp, Error> {
        Ok(match self {
            ScriptOp::AddComponent { name, size } => EditOp::AddComponent {
                name: name.clone(),
                size: *size,
            },
            ScriptOp::RemoveComponent { c } => EditOp::RemoveComponent {
                id: c.resolve(problem)?,
            },
            ScriptOp::AddPair { a, b, weight } => EditOp::AddPair {
                a: a.resolve(problem)?,
                b: b.resolve(problem)?,
                weight: *weight,
            },
            ScriptOp::RemovePair { a, b } => EditOp::RemovePair {
                a: a.resolve(problem)?,
                b: b.resolve(problem)?,
            },
            ScriptOp::ReweightPair { a, b, weight } => EditOp::ReweightPair {
                a: a.resolve(problem)?,
                b: b.resolve(problem)?,
                weight: *weight,
            },
            ScriptOp::SetTimingBound { a, b, bound } => EditOp::SetTimingBound {
                a: a.resolve(problem)?,
                b: b.resolve(problem)?,
                bound: *bound,
            },
            ScriptOp::TightenCycleTime { delta } => EditOp::TightenCycleTime { delta: *delta },
        })
    }
}

/// Serializes one edit as a script line (ids, not names — the canonical
/// machine form, and what the generator emits).
pub fn format_edit(op: &EditOp) -> String {
    match op {
        EditOp::AddComponent { name, size } => {
            format!("{{\"op\": \"add_component\", \"name\": \"{name}\", \"size\": {size}}}")
        }
        EditOp::RemoveComponent { id } => {
            format!("{{\"op\": \"remove_component\", \"c\": {}}}", id.index())
        }
        EditOp::AddPair { a, b, weight } => format!(
            "{{\"op\": \"add_pair\", \"a\": {}, \"b\": {}, \"weight\": {weight}}}",
            a.index(),
            b.index()
        ),
        EditOp::RemovePair { a, b } => format!(
            "{{\"op\": \"remove_pair\", \"a\": {}, \"b\": {}}}",
            a.index(),
            b.index()
        ),
        EditOp::ReweightPair { a, b, weight } => format!(
            "{{\"op\": \"reweight_pair\", \"a\": {}, \"b\": {}, \"weight\": {weight}}}",
            a.index(),
            b.index()
        ),
        EditOp::SetTimingBound { a, b, bound } => match bound {
            Some(d) => format!(
                "{{\"op\": \"set_timing_bound\", \"a\": {}, \"b\": {}, \"bound\": {d}}}",
                a.index(),
                b.index()
            ),
            None => format!(
                "{{\"op\": \"set_timing_bound\", \"a\": {}, \"b\": {}}}",
                a.index(),
                b.index()
            ),
        },
        EditOp::TightenCycleTime { delta } => {
            format!("{{\"op\": \"tighten_cycle_time\", \"delta\": {delta}}}")
        }
    }
}

/// Serializes a whole delta, one line per op.
pub fn format_delta(delta: &NetlistDelta) -> String {
    let mut s = String::new();
    for op in delta.ops() {
        s.push_str(&format_edit(op));
        s.push('\n');
    }
    s
}

// --- minimal flat-JSON-object scanner -----------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Num(i64),
    Str(String),
}

fn parse_line(line: &str, lineno: usize) -> Result<Vec<(String, Scalar)>, ParseError> {
    let bad = || ParseError::BadArguments {
        line: lineno,
        expected: "a flat JSON object of string/integer fields",
    };
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(bad)?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // key
        rest = rest.strip_prefix('"').ok_or_else(bad)?;
        let end = rest.find('"').ok_or_else(bad)?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or_else(bad)?.trim_start();
        // value: string or integer
        if let Some(s) = rest.strip_prefix('"') {
            let end = s.find('"').ok_or_else(bad)?;
            fields.push((key, Scalar::Str(s[..end].to_string())));
            rest = s[end + 1..].trim_start();
        } else {
            let end = rest
                .find(|c: char| c == ',' || c.is_whitespace())
                .unwrap_or(rest.len());
            let num: i64 = rest[..end].parse().map_err(|_| bad())?;
            fields.push((key, Scalar::Num(num)));
            rest = rest[end..].trim_start();
        }
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(bad());
        }
    }
    Ok(fields)
}

fn field<'f>(fields: &'f [(String, Scalar)], key: &str) -> Option<&'f Scalar> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn comp_ref(
    fields: &[(String, Scalar)],
    key: &'static str,
    lineno: usize,
) -> Result<CompRef, ParseError> {
    match field(fields, key) {
        Some(Scalar::Num(i)) if *i >= 0 => Ok(CompRef::Id(*i as usize)),
        Some(Scalar::Str(s)) => Ok(CompRef::Name(s.clone())),
        _ => Err(ParseError::BadArguments {
            line: lineno,
            expected: "a component index or name",
        }),
    }
}

fn num(fields: &[(String, Scalar)], key: &'static str, lineno: usize) -> Result<i64, ParseError> {
    match field(fields, key) {
        Some(Scalar::Num(i)) => Ok(*i),
        _ => Err(ParseError::BadArguments {
            line: lineno,
            expected: "an integer field",
        }),
    }
}

/// Parses a whole script: one op per non-blank, non-`#` line, keeping
/// 1-based line numbers for error reporting.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed line.
pub fn parse_script(text: &str) -> Result<Vec<(usize, ScriptOp)>, ParseError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = parse_line(line, lineno)?;
        let op_name = match field(&fields, "op") {
            Some(Scalar::Str(s)) => s.clone(),
            _ => {
                return Err(ParseError::BadArguments {
                    line: lineno,
                    expected: "an \"op\" field naming the edit",
                })
            }
        };
        let op = match op_name.as_str() {
            "add_component" => {
                let name = match field(&fields, "name") {
                    Some(Scalar::Str(s)) => s.clone(),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line: lineno,
                            expected: "a \"name\" string field",
                        })
                    }
                };
                let size = num(&fields, "size", lineno)?;
                if size < 0 {
                    return Err(ParseError::BadArguments {
                        line: lineno,
                        expected: "a non-negative size",
                    });
                }
                ScriptOp::AddComponent {
                    name,
                    size: size as u64,
                }
            }
            "remove_component" => ScriptOp::RemoveComponent {
                c: comp_ref(&fields, "c", lineno)?,
            },
            "add_pair" => ScriptOp::AddPair {
                a: comp_ref(&fields, "a", lineno)?,
                b: comp_ref(&fields, "b", lineno)?,
                weight: num(&fields, "weight", lineno)?,
            },
            "remove_pair" => ScriptOp::RemovePair {
                a: comp_ref(&fields, "a", lineno)?,
                b: comp_ref(&fields, "b", lineno)?,
            },
            "reweight_pair" => ScriptOp::ReweightPair {
                a: comp_ref(&fields, "a", lineno)?,
                b: comp_ref(&fields, "b", lineno)?,
                weight: num(&fields, "weight", lineno)?,
            },
            "set_timing_bound" => ScriptOp::SetTimingBound {
                a: comp_ref(&fields, "a", lineno)?,
                b: comp_ref(&fields, "b", lineno)?,
                bound: field(&fields, "bound")
                    .map(|v| match v {
                        Scalar::Num(d) => Ok(*d),
                        _ => Err(ParseError::BadArguments {
                            line: lineno,
                            expected: "an integer bound",
                        }),
                    })
                    .transpose()?,
            },
            "tighten_cycle_time" => ScriptOp::TightenCycleTime {
                delta: num(&fields, "delta", lineno)?,
            },
            _ => {
                return Err(ParseError::UnknownDirective {
                    line: lineno,
                    directive: op_name,
                })
            }
        };
        ops.push((lineno, op));
    }
    Ok(ops)
}

/// Summary of a script run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptSummary {
    /// Edits applied (one delta per script line).
    pub edits: usize,
    /// Warm re-solves that escalated past the localized pass.
    pub escalations: usize,
    /// Applies that took the rebuild path.
    pub rebuilds: usize,
    /// Whether every warm re-solve ended feasible.
    pub all_feasible: bool,
    /// Embedded objective after the last edit.
    pub final_value: Cost,
    /// How the run ended: [`ExecStatus::Completed`] when every line was
    /// applied and re-solved, otherwise the budget/cancel status that
    /// stopped the script (later lines are left unapplied).
    pub status: ExecStatus,
}

/// Runs a script against a session: each line becomes a one-op
/// [`NetlistDelta`] that is applied and warm-resolved in order.
///
/// # Errors
///
/// Returns a [`QbpError::Parse`] for malformed script lines and lifts
/// validation/solver errors ([`QbpError::Model`]); the session keeps all
/// edits applied before the failing line.
pub fn run_script(
    session: &mut EcoSession,
    text: &str,
    obs: &mut dyn SolveObserver,
) -> Result<ScriptSummary, QbpError> {
    run_script_exec(session, text, &ExecCtx::unbounded(), obs)
}

/// [`run_script`] under an execution budget: each warm re-solve runs inside
/// `exec`, and once the budget expires (or the cancel token fires) the
/// script stops *between* lines — the session keeps every edit applied so
/// far with a feasible assignment, later lines are left unapplied, and the
/// summary's `status` reports why.
///
/// # Errors
///
/// Like [`run_script`].
pub fn run_script_exec(
    session: &mut EcoSession,
    text: &str,
    exec: &ExecCtx,
    obs: &mut dyn SolveObserver,
) -> Result<ScriptSummary, QbpError> {
    /// Forwards every event and counts escalated warm solves on the way.
    struct EscalationTee<'a> {
        inner: &'a mut dyn SolveObserver,
        escalations: usize,
    }
    impl qbp_observe::SolveObserver for EscalationTee<'_> {
        fn on_event(&mut self, event: &qbp_observe::SolveEvent) {
            if matches!(
                event,
                qbp_observe::SolveEvent::WarmSolve {
                    escalated: true,
                    ..
                }
            ) {
                self.escalations += 1;
            }
            self.inner.on_event(event);
        }
    }

    let ops = parse_script(text)?;
    let mut tee = EscalationTee {
        inner: obs,
        escalations: 0,
    };
    let mut summary = ScriptSummary {
        edits: 0,
        escalations: 0,
        rebuilds: 0,
        all_feasible: true,
        final_value: 0,
        status: ExecStatus::Completed,
    };
    for (_, op) in &ops {
        // Line boundaries are the script's cooperative checkpoints: a
        // stopped run never leaves a half-applied edit behind.
        if let Some(stop) = exec.check(summary.edits) {
            summary.status = stop;
            break;
        }
        let edit = op.resolve(session.problem())?;
        let mut delta = NetlistDelta::new();
        delta.push(edit);
        let (apply, solve) = session.apply_and_resolve_exec(&delta, exec, &mut tee)?;
        summary.edits += 1;
        summary.rebuilds += apply.rebuilt as usize;
        summary.all_feasible &= solve.feasible;
        summary.final_value = solve.embedded_value.unwrap_or(solve.objective);
        summary.status = summary.status.merge(solve.status);
    }
    summary.escalations = tee.escalations;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_round_trips_through_format_and_parse() {
        let delta = NetlistDelta::new()
            .add_component("u9", 3)
            .remove_component(ComponentId::new(2))
            .add_pair(ComponentId::new(0), ComponentId::new(1), 5)
            .remove_pair(ComponentId::new(0), ComponentId::new(1))
            .reweight_pair(ComponentId::new(0), ComponentId::new(1), 7)
            .set_timing_bound(ComponentId::new(0), ComponentId::new(1), Some(4))
            .set_timing_bound(ComponentId::new(0), ComponentId::new(1), None)
            .tighten_cycle_time(2);
        let text = format_delta(&delta);
        let parsed = parse_script(&text).unwrap();
        assert_eq!(parsed.len(), delta.len());
        // Ids resolve to themselves on any problem large enough.
        let p = qbp_core::ProblemBuilder::on(
            qbp_core::PartitionTopology::grid(2, 2, 100).unwrap(),
        )
        .component("a", 1)
        .component("b", 1)
        .component("c", 1)
        .build()
        .unwrap();
        for ((_, op), want) in parsed.iter().zip(delta.ops()) {
            assert_eq!(&op.resolve(&p).unwrap(), want);
        }
    }

    #[test]
    fn parse_skips_comments_and_reports_line_numbers() {
        let text = "# header\n\n{\"op\": \"tighten_cycle_time\", \"delta\": 1}\nnot json\n";
        let err = parse_script(text).unwrap_err();
        assert!(matches!(err, ParseError::BadArguments { line: 4, .. }));
        assert!(matches!(
            parse_script("{\"op\": \"frobnicate\"}").unwrap_err(),
            ParseError::UnknownDirective { line: 1, .. }
        ));
    }

    #[test]
    fn names_resolve_against_problem() {
        let p = qbp_core::ProblemBuilder::on(
            qbp_core::PartitionTopology::grid(2, 2, 100).unwrap(),
        )
        .component("alpha", 1)
        .component("beta", 1)
        .build()
        .unwrap();
        let ops = parse_script("{\"op\": \"add_pair\", \"a\": \"alpha\", \"b\": \"beta\", \"weight\": 2}")
            .unwrap();
        let edit = ops[0].1.resolve(&p).unwrap();
        assert_eq!(
            edit,
            EditOp::AddPair {
                a: ComponentId::new(0),
                b: ComponentId::new(1),
                weight: 2
            }
        );
        assert!(matches!(
            parse_script("{\"op\": \"add_pair\", \"a\": \"ghost\", \"b\": 0, \"weight\": 1}")
                .unwrap()[0]
                .1
                .resolve(&p),
            Err(Error::UnknownComponentName(_))
        ));
    }
}
