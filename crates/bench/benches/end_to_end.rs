//! End-to-end solver benchmarks: one full QBP run, GFM run and GKL run on a
//! scaled suite circuit (the CPU columns of Tables II/III in miniature), the
//! `B = 0` feasibility phase, and a QAP solve in both subproblem modes.

use criterion::{criterion_group, criterion_main, Criterion};
use qbp_baselines::{GfmConfig, GfmSolver, GklConfig, GklSolver};
use qbp_bench::initial_solution;
use qbp_gen::{build_instance_with_witness, random_qap, scaled_spec, QapSpec, SuiteOptions,
              PAPER_SUITE};
use qbp_solver::{QapConfig, QapSolver, QbpConfig, QbpSolver};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let spec = scaled_spec(&PAPER_SUITE[1], 0.15); // cktb at ~54 components
    let (problem, witness) =
        build_instance_with_witness(&spec, &SuiteOptions::default()).expect("instance");
    let initial = initial_solution(&problem, 1, Some(&witness)).expect("feasible start");

    let mut group = c.benchmark_group("methods_cktb15");
    group.sample_size(10);
    group.bench_function("qbp_100it", |b| {
        let solver = QbpSolver::new(QbpConfig::default());
        b.iter(|| black_box(solver.solve(&problem, Some(&initial)).expect("solve")))
    });
    group.bench_function("gfm", |b| {
        let solver = GfmSolver::new(GfmConfig::default());
        b.iter(|| black_box(solver.solve(&problem, &initial).expect("solve")))
    });
    group.bench_function("gkl_6loops", |b| {
        let solver = GklSolver::new(GklConfig::default());
        b.iter(|| black_box(solver.solve(&problem, &initial).expect("solve")))
    });
    group.finish();
}

fn bench_feasibility_phase(c: &mut Criterion) {
    let spec = scaled_spec(&PAPER_SUITE[1], 0.15);
    let (problem, _) =
        build_instance_with_witness(&spec, &SuiteOptions::default()).expect("instance");
    let mut group = c.benchmark_group("feasibility_phase");
    group.sample_size(10);
    group.bench_function("find_feasible_b0", |b| {
        let solver = QbpSolver::new(QbpConfig {
            iterations: 40,
            ..QbpConfig::default()
        });
        b.iter(|| black_box(solver.find_feasible(&problem).expect("run")))
    });
    group.finish();
}

fn bench_qap_modes(c: &mut Criterion) {
    let problem = random_qap(&QapSpec::new(16)).expect("qap");
    let mut group = c.benchmark_group("qap_n16");
    group.sample_size(10);
    group.bench_function("lap_mode_100it", |b| {
        let solver = QapSolver::new(QapConfig::default());
        b.iter(|| black_box(solver.solve(&problem).expect("solve")))
    });
    group.bench_function("gap_mode_100it", |b| {
        let solver = QbpSolver::new(QbpConfig::default());
        b.iter(|| black_box(solver.solve(&problem, None).expect("solve")))
    });
    group.finish();
}

criterion_group!(benches, bench_methods, bench_feasibility_phase, bench_qap_modes);
criterion_main!(benches);
