//! Micro-benchmarks for the evaluation's CPU-shape claims, most importantly
//! §4.3: the sparse `η` kernel (`O((E+T)·M)`) versus the dense
//! `O((MN)²)` reference — the speedup that makes the Burkard heuristic
//! "a practical method" on circuits with hundreds of components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbp_core::{Assignment, ComponentId, Evaluator, PartitionId, QMatrix};
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::gap::{solve_gap, GapConfig, GapInstance};
use qbp_solver::solve_lap;
use std::hint::black_box;

fn suite_instance(scale: f64) -> (qbp_core::Problem, Assignment) {
    let spec = scaled_spec(&PAPER_SUITE[1], scale); // cktb
    let (problem, witness) =
        build_instance_with_witness(&spec, &SuiteOptions::default()).expect("instance");
    (problem, witness)
}

fn bench_eta(c: &mut Criterion) {
    let mut group = c.benchmark_group("eta");
    for scale in [0.1, 0.25] {
        let (problem, witness) = suite_instance(scale);
        let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
        let mut out = Vec::new();
        group.bench_with_input(BenchmarkId::new("sparse", problem.n()), &(), |b, ()| {
            b.iter(|| {
                q.eta(black_box(&witness), &mut out);
                black_box(&out);
            })
        });
        // The dense reference is O((MN)²); only run it on the small scale.
        if scale <= 0.1 {
            group.bench_with_input(BenchmarkId::new("dense", problem.n()), &(), |b, ()| {
                b.iter(|| black_box(q.eta_dense_reference(black_box(&witness))))
            });
        }
    }
    group.finish();
}

fn bench_value_and_objective(c: &mut Criterion) {
    let (problem, witness) = suite_instance(0.25);
    let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
    let eval = Evaluator::new(&problem);
    let mut group = c.benchmark_group("evaluate");
    group.bench_function("embedded_value", |b| {
        b.iter(|| black_box(q.value(black_box(&witness))))
    });
    group.bench_function("objective", |b| {
        b.iter(|| black_box(eval.cost(black_box(&witness))))
    });
    group.bench_function("move_delta", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for j in 0..problem.n().min(64) {
                acc += eval.move_delta(&witness, ComponentId::new(j), PartitionId::new(0));
            }
            black_box(acc)
        })
    });
    group.bench_function("embedded_move_delta", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for j in 0..problem.n().min(64) {
                acc += q.move_delta(&witness, ComponentId::new(j), PartitionId::new(0));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_gap(c: &mut Criterion) {
    let (problem, _) = suite_instance(0.25);
    let m = problem.m();
    let n = problem.n();
    let costs: Vec<f64> = (0..m * n).map(|k| ((k * 37) % 101) as f64).collect();
    let sizes: Vec<u64> = (0..n)
        .map(|j| problem.circuit().size(ComponentId::new(j)))
        .collect();
    let capacities = problem.topology().capacities().to_vec();
    let inst = GapInstance {
        m,
        n,
        costs: &costs,
        sizes: &sizes,
        capacities: &capacities,
    };
    c.bench_function("gap/mthg", |b| {
        b.iter(|| black_box(solve_gap(black_box(&inst), &GapConfig::default())))
    });
}

fn bench_lap(c: &mut Criterion) {
    let mut group = c.benchmark_group("lap");
    for n in [16usize, 50, 100] {
        let costs: Vec<f64> = (0..n * n).map(|k| ((k * 31) % 97) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(solve_lap(n, black_box(&costs))))
        });
    }
    group.finish();
}

fn bench_feasibility(c: &mut Criterion) {
    let (problem, witness) = suite_instance(0.25);
    c.bench_function("check_feasibility", |b| {
        b.iter(|| black_box(qbp_core::check_feasibility(&problem, black_box(&witness))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_eta, bench_value_and_objective, bench_gap, bench_lap, bench_feasibility
}
criterion_main!(benches);
