//! Benchmark harness utilities: everything the `table*`/`ablation*` binaries
//! share — running the three methods on a problem from a common initial
//! solution, computing improvement percentages, and printing paper-style
//! tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod scale;

pub use harness::{
    default_methods, default_methods_with_threads, initial_solution, print_table, run_circuit,
    run_circuit_with_fallback, run_rows, CircuitRow, Method, MethodResult, TableOptions,
};
