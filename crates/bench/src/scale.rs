//! Million-component scale benchmark: cost / wall-clock / memory at
//! N ∈ {10³, 10⁴, 10⁵} (and 10⁶ behind `QBP_SCALE_FULL=1`), comparing the
//! multilevel fast lane against the flat QBP solver at every size.
//!
//! Instances come from [`qbp_gen::ClusteredCircuit`], whose planted
//! cluster-per-partition witness seeds both solvers, so every point starts
//! feasible and the incumbent rule keeps it that way. Each point also audits
//! the compact memory layout: the measured heap of the streamed-CSR build
//! (`QBody::heap_bytes` + profile buffers + the level-stack arena) against
//! the estimated peak of the retired nested build path
//! (`QBody::nested_layout_bytes`), which materialized one `Vec` per row and
//! one boxed pair record per adjacency entry before packing.
//!
//! Environment knobs (shared by the `scale_bench` binary and the
//! `scale_bench` block in `perf_snapshot`):
//!
//! * `QBP_SCALE_N=<n>` — run exactly one size (CI smoke uses a small one).
//! * `QBP_SCALE_FULL=1` — append the 10⁶-component point to the default
//!   ladder.

use qbp_core::hw::{current_rss_bytes, peak_rss_bytes, AutoProfile, HostInfo};
use qbp_core::{Cost, PartitionProfile, QMatrix};
use qbp_gen::ClusteredCircuit;
use qbp_multilevel::{coarsen_observed, CoarsenOptions, MlqbpConfig, MlqbpSolver};
use qbp_observe::NoopObserver;
use qbp_solver::{QbpConfig, QbpSolver, Solver};
use std::time::Instant;

/// The default size ladder; `QBP_SCALE_FULL=1` appends [`FULL_SIZE`].
pub const SCALE_SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// The opt-in million-component point.
pub const FULL_SIZE: usize = 1_000_000;

/// Default RNG seed for the clustered instances.
pub const SCALE_SEED: u64 = 0x5CA1E;

/// What to run: which sizes, and with what seed.
#[derive(Debug, Clone)]
pub struct ScaleOptions {
    /// Seed for the clustered generator (one instance per size).
    pub seed: u64,
    /// Sizes to measure, ascending.
    pub sizes: Vec<usize>,
}

impl ScaleOptions {
    /// Reads `QBP_SCALE_N` / `QBP_SCALE_FULL` from the environment;
    /// defaults to the [`SCALE_SIZES`] ladder.
    pub fn from_env() -> ScaleOptions {
        let mut sizes: Vec<usize> = match std::env::var("QBP_SCALE_N") {
            Ok(n) => vec![n
                .trim()
                .parse()
                .expect("QBP_SCALE_N must be a component count")],
            Err(_) => SCALE_SIZES.to_vec(),
        };
        if std::env::var("QBP_SCALE_FULL").map(|v| v == "1") == Ok(true)
            && !sizes.contains(&FULL_SIZE)
        {
            sizes.push(FULL_SIZE);
        }
        sizes.sort_unstable();
        ScaleOptions {
            seed: SCALE_SEED,
            sizes,
        }
    }
}

/// One size's measurements.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Component count of the instance.
    pub components: usize,
    /// Partition count (the generator's grid).
    pub partitions: usize,
    /// Burkard iteration budget used for both solvers at this size.
    pub iterations: usize,
    /// Wall seconds to build problem + Q̂ body + profile + level stack.
    pub build_seconds: f64,
    /// Measured heap of the compact layout: Q̂ body (streamed u32 CSR) +
    /// partition-profile buffers + the coarsening arena.
    pub compact_bytes: usize,
    /// Estimated peak heap of the same state under the pre-compaction
    /// layout: nested per-row pair vectors during the Q̂ build, plus the
    /// profile's dense (one-row-per-component) correction tally.
    pub nested_bytes: usize,
    /// `100 · (1 − compact/nested)`.
    pub layout_reduction_pct: f64,
    /// Process resident set right after the build, in MiB (`VmRSS`);
    /// `None` off Linux.
    pub current_rss_mb: Option<u64>,
    /// Process peak resident set after this point's solves, in MiB
    /// (`VmHWM` — monotonic over the process, so ascending size order
    /// makes each value the peak *through* this size); `None` off Linux.
    pub peak_rss_mb: Option<u64>,
    /// The hardware-adaptive profile that configured the mlqbp run.
    pub auto: AutoProfile,
    /// Multilevel solve wall seconds.
    pub ml_seconds: f64,
    /// Multilevel final wire cost.
    pub ml_cost: Cost,
    /// Whether the multilevel result satisfies C1 and C2.
    pub ml_feasible: bool,
    /// Flat QBP solve wall seconds (same budget, same witness start).
    pub flat_seconds: f64,
    /// Flat QBP final wire cost.
    pub flat_cost: Cost,
    /// Whether the flat result satisfies C1 and C2.
    pub flat_feasible: bool,
}

impl ScalePoint {
    /// Flat wall over multilevel wall (>1 means the fast lane is faster).
    pub fn ml_speedup(&self) -> f64 {
        self.flat_seconds / self.ml_seconds.max(1e-12)
    }

    /// Serializes this point as a JSON object (two-space indent, nested
    /// under the `scale_bench.points` array).
    pub fn to_json(&self) -> String {
        let fmt_rss = |v: Option<u64>| v.map_or("null".to_string(), |mb| mb.to_string());
        format!(
            "{{\n      \"components\": {},\n      \"partitions\": {},\n      \
             \"iterations\": {},\n      \"build_seconds\": {:.6},\n      \
             \"compact_bytes\": {},\n      \"nested_bytes\": {},\n      \
             \"layout_reduction_pct\": {:.2},\n      \"current_rss_mb\": {},\n      \
             \"peak_rss_mb\": {},\n      \"auto_threads\": {},\n      \
             \"auto_levels\": {},\n      \"auto_min_size\": {},\n      \
             \"ml_seconds\": {:.6},\n      \"ml_cost\": {},\n      \
             \"ml_feasible\": {},\n      \"flat_seconds\": {:.6},\n      \
             \"flat_cost\": {},\n      \"flat_feasible\": {},\n      \
             \"ml_speedup\": {:.3}\n    }}",
            self.components,
            self.partitions,
            self.iterations,
            self.build_seconds,
            self.compact_bytes,
            self.nested_bytes,
            self.layout_reduction_pct,
            fmt_rss(self.current_rss_mb),
            fmt_rss(self.peak_rss_mb),
            self.auto.threads,
            self.auto.mlqbp_levels,
            self.auto.mlqbp_min_size,
            self.ml_seconds,
            self.ml_cost,
            self.ml_feasible,
            self.flat_seconds,
            self.flat_cost,
            self.flat_feasible,
            self.ml_speedup()
        )
    }
}

/// Iteration budget per size: full paper budget at 10³, tapering to a
/// handful of Burkard iterations at 10⁶ so the ladder stays CI-tolerable.
/// Both solvers get the same budget, so the wall ratio stays meaningful.
fn iterations_for(components: usize) -> usize {
    (200_000 / components.max(1)).clamp(4, 100)
}

/// Runs the ladder, ascending, printing one progress line per size to
/// stderr. The caller detects the host once ([`HostInfo::detect`]) and
/// passes it in, so one snapshot of the hardware configures every size (and
/// the JSON header written by [`scale_json`] reports the same numbers).
pub fn run_scale_bench(opts: &ScaleOptions, host: &HostInfo) -> Vec<ScalePoint> {
    opts.sizes
        .iter()
        .map(|&n| run_point(host, n, opts.seed))
        .collect()
}

fn run_point(host: &HostInfo, components: usize, seed: u64) -> ScalePoint {
    let iterations = iterations_for(components);
    let auto = AutoProfile::for_problem(host, components);

    let t0 = Instant::now();
    let gen = ClusteredCircuit::new(components).seed(seed);
    let (problem, witness) = gen.build_problem().expect("clustered instance builds");
    let q = QMatrix::with_auto_penalty(&problem).expect("auto penalty");
    let profile = PartitionProfile::embedded(&q, &witness);
    let stack = coarsen_observed(
        &problem,
        &CoarsenOptions {
            max_levels: auto.mlqbp_levels,
            min_size: auto.mlqbp_min_size,
            threads: auto.threads,
        },
        &mut NoopObserver,
    );
    let build_seconds = t0.elapsed().as_secs_f64();

    let compact_bytes = q.body().heap_bytes() + profile.heap_bytes() + stack.arena_bytes();
    let nested_bytes =
        q.body().nested_layout_bytes() + profile.dense_layout_bytes() + stack.arena_bytes();
    let layout_reduction_pct = 100.0 * (1.0 - compact_bytes as f64 / nested_bytes.max(1) as f64);
    let current_rss_mb = current_rss_bytes().map(|b| b >> 20);
    drop(stack);
    drop(profile);
    drop(q);

    let qbp = QbpConfig {
        seed,
        iterations,
        threads: auto.threads,
        ..QbpConfig::default()
    };
    let ml_solver = MlqbpSolver::new(MlqbpConfig {
        max_levels: auto.mlqbp_levels,
        min_size: auto.mlqbp_min_size,
        coarse_runs: auto.multistart_width,
        qbp,
        ..MlqbpConfig::default()
    });
    let t0 = Instant::now();
    let ml = Solver::solve(&ml_solver, &problem, Some(&witness), &mut NoopObserver)
        .expect("mlqbp scale solve");
    let ml_seconds = t0.elapsed().as_secs_f64();

    let flat_solver = QbpSolver::new(qbp);
    let t0 = Instant::now();
    let flat = Solver::solve(&flat_solver, &problem, Some(&witness), &mut NoopObserver)
        .expect("flat scale solve");
    let flat_seconds = t0.elapsed().as_secs_f64();

    let point = ScalePoint {
        components,
        partitions: problem.m(),
        iterations,
        build_seconds,
        compact_bytes,
        nested_bytes,
        layout_reduction_pct,
        current_rss_mb,
        peak_rss_mb: peak_rss_bytes().map(|b| b >> 20),
        auto,
        ml_seconds,
        ml_cost: ml.objective,
        ml_feasible: ml.feasible,
        flat_seconds,
        flat_cost: flat.objective,
        flat_feasible: flat.feasible,
    };
    eprintln!(
        "scale_bench: N={} build {:.2}s, layout -{:.1}% ({} → {} bytes), \
         mlqbp {:.2}s cost {} (feasible {}), flat {:.2}s cost {} (feasible {}), \
         speedup {:.2}x, peak RSS {} MiB",
        point.components,
        point.build_seconds,
        point.layout_reduction_pct,
        point.nested_bytes,
        point.compact_bytes,
        point.ml_seconds,
        point.ml_cost,
        point.ml_feasible,
        point.flat_seconds,
        point.flat_cost,
        point.flat_feasible,
        point.ml_speedup(),
        point
            .peak_rss_mb
            .map_or("?".to_string(), |mb| mb.to_string()),
    );
    point
}

/// Serializes a full run as the `scale_bench` JSON block: the seed, the
/// host the run was configured with (the same [`HostInfo`] handed to
/// [`run_scale_bench`]), and one object per size.
pub fn scale_json(seed: u64, host: &HostInfo, points: &[ScalePoint]) -> String {
    let ram = host
        .available_ram
        .map_or("null".to_string(), |b| (b >> 20).to_string());
    let body = points
        .iter()
        .map(|p| format!("\n    {}", p.to_json()))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\n  \"seed\": {},\n  \"host_cores\": {},\n  \"host_ram_mb\": {},\n  \
         \"points\": [{}\n  ]\n}}",
        seed, host.cores, ram, body
    )
}

/// Relative growth in multilevel wall or peak RSS against the baseline that
/// triggers a CI `::warning::` annotation.
pub const SCALE_REGRESSION_THRESHOLD: f64 = 0.25;

/// The first numeric value following `"<field>":` after `anchor` in `hay`;
/// `None` when the anchor or field is missing or the value is `null`.
fn field_after(hay: &str, anchor: &str, field: &str) -> Option<f64> {
    let rest = &hay[hay.find(anchor)? + anchor.len()..];
    let key = format!("\"{field}\":");
    let rest = &rest[rest.find(&key)? + key.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh run against the `scale_bench` points inside
/// `baseline_json` (a committed `BENCH_qbp.json` or a prior
/// `BENCH_scale.json`), printing one GitHub `::warning::` annotation per
/// size whose multilevel wall or peak RSS grew more than
/// [`SCALE_REGRESSION_THRESHOLD`]. Sizes absent from the baseline are
/// skipped. Returns the number of warnings printed.
pub fn warn_regressions(baseline_json: &str, points: &[ScalePoint]) -> usize {
    let mut warnings = 0;
    for p in points {
        let anchor = format!("\"components\": {},", p.components);
        if let Some(base_wall) = field_after(baseline_json, &anchor, "ml_seconds") {
            if base_wall > 0.0 && p.ml_seconds > base_wall * (1.0 + SCALE_REGRESSION_THRESHOLD) {
                println!(
                    "::warning::scale_bench N={}: mlqbp wall {:.2}s is {:+.0}% vs baseline {:.2}s",
                    p.components,
                    p.ml_seconds,
                    100.0 * (p.ml_seconds / base_wall - 1.0),
                    base_wall
                );
                warnings += 1;
            }
        }
        if let (Some(base_rss), Some(rss)) = (
            field_after(baseline_json, &anchor, "peak_rss_mb"),
            p.peak_rss_mb,
        ) {
            if base_rss > 0.0 && rss as f64 > base_rss * (1.0 + SCALE_REGRESSION_THRESHOLD) {
                println!(
                    "::warning::scale_bench N={}: peak RSS {} MiB is {:+.0}% vs baseline {:.0} MiB",
                    p.components,
                    rss,
                    100.0 * (rss as f64 / base_rss - 1.0),
                    base_rss
                );
                warnings += 1;
            }
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_ladder_point_is_feasible_and_compact() {
        let host = HostInfo::from_parts(1, Some(1 << 30));
        let point = run_point(&host, 1_000, SCALE_SEED);
        assert!(point.ml_feasible, "mlqbp must stay feasible from the witness");
        assert!(point.flat_feasible, "flat must stay feasible from the witness");
        assert!(
            point.layout_reduction_pct >= 40.0,
            "compact layout must cut ≥40% vs nested (got {:.1}%)",
            point.layout_reduction_pct
        );
        assert!(point.compact_bytes < point.nested_bytes);
    }

    #[test]
    fn json_block_names_every_point() {
        let host = HostInfo::from_parts(2, None);
        let points = vec![run_point(&host, 1_000, 7)];
        let json = scale_json(7, &host, &points);
        assert!(json.contains("\"points\""));
        assert!(json.contains("\"components\": 1000"));
        assert!(json.contains("\"layout_reduction_pct\""));
    }

    #[test]
    fn regression_warnings_fire_only_past_the_threshold() {
        let auto = AutoProfile::for_problem(&HostInfo::from_parts(2, None), 1_000);
        let mk = |ml_seconds: f64, rss: u64| ScalePoint {
            components: 1_000,
            partitions: 16,
            iterations: 10,
            build_seconds: 0.0,
            compact_bytes: 1,
            nested_bytes: 2,
            layout_reduction_pct: 50.0,
            current_rss_mb: Some(rss),
            peak_rss_mb: Some(rss),
            auto,
            ml_seconds,
            ml_cost: 0,
            ml_feasible: true,
            flat_seconds: 1.0,
            flat_cost: 0,
            flat_feasible: true,
        };
        let baseline = "{\"points\": [{\"components\": 1000,\n\
             \"ml_seconds\": 1.000000,\n\"peak_rss_mb\": 100}]}";
        // Within budget on both axes: no warnings.
        assert_eq!(warn_regressions(baseline, &[mk(1.2, 120)]), 0);
        // Wall and RSS both past +25%: two warnings.
        assert_eq!(warn_regressions(baseline, &[mk(1.5, 200)]), 2);
        // A size the baseline does not carry is skipped.
        let mut other = mk(9.0, 900);
        other.components = 77;
        assert_eq!(warn_regressions(baseline, &[other]), 0);
    }

    #[test]
    fn iteration_budget_tapers_with_size() {
        assert_eq!(iterations_for(1_000), 100);
        assert_eq!(iterations_for(10_000), 20);
        assert_eq!(iterations_for(100_000), 4);
        assert_eq!(iterations_for(1_000_000), 4);
    }
}
