//! Shared harness: run QBP/GFM/GKL from a common initial feasible solution
//! and print paper-style result tables.

use qbp_baselines::{GfmConfig, GfmSolver, GklConfig, GklSolver};
use qbp_core::{check_feasibility, Assignment, Cost, Error, Evaluator, Problem};
use qbp_cli::args::ArgsError;
use qbp_observe::{CounterSnapshot, CountersObserver};
use qbp_solver::{greedy_first_fit, QbpConfig, QbpSolver, Solver};
use std::time::Instant;

/// One of the three compared methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// The paper's Quadratic Boolean Programming solver.
    Qbp(QbpConfig),
    /// Generalized Fiduccia–Mattheyses.
    Gfm(GfmConfig),
    /// Generalized Kernighan–Lin.
    Gkl(GklConfig),
}

impl Method {
    /// Display name matching the paper's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Qbp(_) => "QBP",
            Method::Gfm(_) => "GFM",
            Method::Gkl(_) => "GKL",
        }
    }
}

/// The paper's §5 configuration: QBP at 100 iterations, GFM until no
/// improvement, GKL cut off after 6 outer loops.
pub fn default_methods() -> Vec<Method> {
    default_methods_with_threads(1)
}

/// [`default_methods`] with an intra-solve thread budget applied to every
/// method (QBP's η/GAP/descent lanes, the baselines' gain/pair-table
/// builds, and — past its spawn-amortization work gate — the
/// speculative-batch sweep). Every engine is bit-identical across thread
/// counts, so the
/// budget only changes wall clock, never the table entries; the binaries
/// pass [`TableOptions::threads`] (the `QBP_THREADS` environment knob).
pub fn default_methods_with_threads(threads: usize) -> Vec<Method> {
    vec![
        Method::Qbp(QbpConfig {
            threads,
            ..QbpConfig::default()
        }),
        Method::Gfm(GfmConfig {
            threads,
            ..GfmConfig::default()
        }),
        Method::Gkl(GklConfig {
            threads,
            ..GklConfig::default()
        }),
    ]
}

/// One method's row fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name.
    pub name: &'static str,
    /// Final objective (total Manhattan wire length on the suite).
    pub final_cost: Cost,
    /// Percentage improvement over the common start.
    pub improvement_pct: f64,
    /// Wall-clock seconds.
    pub cpu_seconds: f64,
    /// Whether the returned assignment is violation-free.
    pub feasible: bool,
    /// Aggregate event counters from the run (η recomputes vs. patches, GAP
    /// calls, accepted/rejected moves, …), collected by a
    /// [`CountersObserver`] attached to the solve.
    pub counters: CounterSnapshot,
}

/// One circuit's full row.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitRow {
    /// Circuit name.
    pub name: String,
    /// Cost of the shared initial feasible solution.
    pub start_cost: Cost,
    /// Per-method results in the order given to [`run_circuit`].
    pub results: Vec<MethodResult>,
}

/// Table-run options shared by the binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOptions {
    /// Instance scale factor (1.0 = the paper's full sizes). The binaries
    /// read `QBP_SCALE` from the environment so CI can run scaled-down.
    pub scale: f64,
    /// Base seed for instance generation and solvers.
    pub seed: u64,
    /// Intra-solve thread budget applied to every method (`QBP_THREADS`
    /// from the environment; 1 = serial, 0 = all host cores). Results are
    /// bit-identical across budgets — only `cpu_seconds` moves.
    pub threads: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { scale: 1.0, seed: 1993, threads: 1 }
    }
}

impl TableOptions {
    /// Reads `QBP_SCALE` / `QBP_SEED` / `QBP_THREADS` from the environment,
    /// falling back to the defaults.
    pub fn from_env() -> Self {
        let mut opts = TableOptions::default();
        if let Ok(s) = std::env::var("QBP_SCALE") {
            if let Ok(v) = s.parse::<f64>() {
                if v > 0.0 && v <= 1.0 {
                    opts.scale = v;
                }
            }
        }
        if let Ok(s) = std::env::var("QBP_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                opts.seed = v;
            }
        }
        if let Ok(s) = std::env::var("QBP_THREADS") {
            if let Ok(v) = s.parse::<usize>() {
                opts.threads = v;
            }
        }
        opts
    }

    /// [`TableOptions::from_env`] with `--scale` / `--seed` / `--threads`
    /// command-line overrides on top (flags beat environment variables). The
    /// flags share the CLI's parser, so names and types cannot drift from
    /// `qbp solve`.
    ///
    /// # Errors
    ///
    /// Returns the parse error when a flag value is malformed or `--scale`
    /// falls outside `(0, 1]`.
    pub fn from_env_and_args(args: &qbp_cli::args::Args) -> Result<Self, ArgsError> {
        let mut opts = TableOptions::from_env();
        if let Some(scale) = args.get_parsed_opt::<f64>("scale", "a number in (0, 1]")? {
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(ArgsError::BadValue {
                    flag: "scale".to_string(),
                    expected: "a number in (0, 1]",
                    found: scale.to_string(),
                });
            }
            opts.scale = scale;
        }
        if let Some(seed) = args.get_parsed_opt::<u64>("seed", "an integer")? {
            opts.seed = seed;
        }
        if let Some(threads) = args.get_parsed_opt::<usize>("threads", "a thread count")? {
            opts.threads = threads;
        }
        Ok(opts)
    }
}

/// Produces the shared initial feasible solution the paper uses for all
/// three methods: "the fastest way to obtain an initial feasible solution is
/// to use \[the\] QBP algorithm with matrix B set to all zeros"; greedy
/// first-fit is the fallback.
///
/// # Errors
///
/// Returns an error when no feasible start can be found (the instance's
/// constraints admit no solution the searchers can reach).
pub fn initial_solution(
    problem: &Problem,
    seed: u64,
    fallback: Option<&Assignment>,
) -> Result<Assignment, Error> {
    for attempt in 0..4 {
        let config = QbpConfig {
            iterations: 10 * (attempt + 1),
            seed: seed.wrapping_add(attempt as u64 * 7919),
            ..QbpConfig::default()
        };
        if let Some(asg) = QbpSolver::new(config).find_feasible(problem)? {
            return Ok(asg);
        }
    }
    if let Some(asg) = greedy_first_fit(problem, seed, 200) {
        return Ok(asg);
    }
    // Last resort: scramble the instance's planted witness (the analogue of
    // the paper's designer-provided initial assignment) with a cost-blind
    // feasible random walk, so the common start is feasible but unoptimized.
    if let Some(w) = fallback {
        if check_feasibility(problem, w).is_feasible() {
            return Ok(qbp_solver::scramble_feasible(problem, w, 20 * problem.n(), seed));
        }
    }
    Err(Error::InfeasibleStart {
        capacity_violations: 0,
        timing_violations: 0,
    })
}

/// Runs the given methods on one problem from a shared initial feasible
/// solution, mirroring the paper's experimental protocol.
///
/// # Errors
///
/// Propagates initial-solution failure and solver configuration errors.
pub fn run_circuit(
    name: &str,
    problem: &Problem,
    methods: &[Method],
    seed: u64,
) -> Result<CircuitRow, Error> {
    run_circuit_with_fallback(name, problem, methods, seed, None)
}

/// [`run_circuit`] with a fallback initial solution (typically the suite's
/// planted witness) used when the feasibility searchers fail.
///
/// The methods run concurrently on a [`std::thread::scope`] (the `Problem`
/// and the shared initial solution are borrowed by every worker); each
/// method is itself deterministic, and results are collected in method
/// order, so the row is identical to a serial execution apart from the
/// per-method `cpu_seconds`.
///
/// # Errors
///
/// Propagates initial-solution failure and solver configuration errors
/// (lowest method index first).
///
/// # Panics
///
/// Panics if a method worker thread panics.
pub fn run_circuit_with_fallback(
    name: &str,
    problem: &Problem,
    methods: &[Method],
    seed: u64,
    fallback: Option<&Assignment>,
) -> Result<CircuitRow, Error> {
    let initial = initial_solution(problem, seed, fallback)?;
    debug_assert!(check_feasibility(problem, &initial).is_feasible());
    let eval = Evaluator::new(problem);
    let start_cost = eval.cost(&initial);
    let outcomes: Vec<Result<(Cost, bool, f64, CounterSnapshot), Error>> =
        std::thread::scope(|scope| {
            let initial = &initial;
            let handles: Vec<_> = methods
                .iter()
                .map(|method| {
                    scope.spawn(move || {
                        let mut counters = CountersObserver::new();
                        let t0 = Instant::now();
                        let (final_cost, feasible) = match method {
                            Method::Qbp(config) => {
                                let out = Solver::solve(
                                    &QbpSolver::new(*config),
                                    problem,
                                    Some(initial),
                                    &mut counters,
                                )?;
                                // The paper's protocol guarantees a feasible
                                // answer exists (the start is feasible); keep
                                // the better of incumbent and start.
                                if out.feasible && out.objective <= start_cost {
                                    (out.objective, true)
                                } else {
                                    (start_cost, true)
                                }
                            }
                            Method::Gfm(config) => {
                                let out = GfmSolver::new(*config)
                                    .solve_observed(problem, initial, &mut counters)?;
                                (
                                    out.cost,
                                    check_feasibility(problem, &out.assignment).is_feasible(),
                                )
                            }
                            Method::Gkl(config) => {
                                let out = GklSolver::new(*config)
                                    .solve_observed(problem, initial, &mut counters)?;
                                (
                                    out.cost,
                                    check_feasibility(problem, &out.assignment).is_feasible(),
                                )
                            }
                        };
                        Ok((
                            final_cost,
                            feasible,
                            t0.elapsed().as_secs_f64(),
                            counters.snapshot(),
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("method worker panicked"))
                .collect()
        });
    let mut results = Vec::with_capacity(methods.len());
    for (method, outcome) in methods.iter().zip(outcomes) {
        let (final_cost, feasible, cpu_seconds, counters) = outcome?;
        let improvement_pct = if start_cost != 0 {
            100.0 * (start_cost - final_cost) as f64 / start_cost as f64
        } else {
            0.0
        };
        results.push(MethodResult {
            name: method.name(),
            final_cost,
            improvement_pct,
            cpu_seconds,
            feasible,
            counters,
        });
    }
    Ok(CircuitRow {
        name: name.to_string(),
        start_cost,
        results,
    })
}

/// Runs [`run_circuit_with_fallback`] for every `(name, problem, fallback)`
/// triple concurrently — one scoped worker per circuit, each of which fans
/// its methods out in turn — and returns the rows in input order. Every row
/// is deterministic, so the table is identical to a serial run apart from
/// the per-method `cpu_seconds`.
///
/// # Errors
///
/// Propagates the first (lowest-index) circuit's error.
///
/// # Panics
///
/// Panics if a circuit worker thread panics.
pub fn run_rows(
    circuits: &[(&str, &Problem, Option<&Assignment>)],
    methods: &[Method],
    seed: u64,
) -> Result<Vec<CircuitRow>, Error> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = circuits
            .iter()
            .map(|&(name, problem, fallback)| {
                scope.spawn(move || {
                    run_circuit_with_fallback(name, problem, methods, seed, fallback)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("circuit worker panicked"))
            .collect()
    })
}

/// Prints rows in the paper's Table II/III layout.
pub fn print_table(title: &str, rows: &[CircuitRow]) {
    println!("{title}");
    print!("{:<10}{:>10}", "circuits", "start");
    if let Some(first) = rows.first() {
        for r in &first.results {
            print!("{:>10}{:>8}{:>9}", format!("{}", r.name), "(-%)", "cpu");
        }
    }
    println!();
    for row in rows {
        print!("{:<10}{:>10}", row.name, row.start_cost);
        for r in &row.results {
            print!(
                "{:>10}{:>8.1}{:>9.2}",
                r.final_cost, r.improvement_pct, r.cpu_seconds
            );
        }
        if row.results.iter().any(|r| !r.feasible) {
            print!("   [INFEASIBLE RESULT!]");
        }
        println!();
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_gen::{scaled_spec, SuiteOptions, PAPER_SUITE};

    #[test]
    fn run_circuit_produces_consistent_row() {
        let spec = scaled_spec(&PAPER_SUITE[1], 0.08); // ~29 components
        let (problem, witness) =
            qbp_gen::build_instance_with_witness(&spec, &SuiteOptions::default()).unwrap();
        let methods = vec![
            Method::Qbp(QbpConfig { iterations: 10, ..QbpConfig::default() }),
            Method::Gfm(GfmConfig::default()),
            Method::Gkl(GklConfig { max_outer_loops: 2, ..GklConfig::default() }),
        ];
        let row = run_circuit_with_fallback("mini", &problem, &methods, 1, Some(&witness)).unwrap();
        assert_eq!(row.results.len(), 3);
        for r in &row.results {
            assert!(r.feasible, "{} must return feasible", r.name);
            assert!(r.final_cost <= row.start_cost, "{} must not regress", r.name);
            let expect_pct =
                100.0 * (row.start_cost - r.final_cost) as f64 / row.start_cost as f64;
            assert!((r.improvement_pct - expect_pct).abs() < 1e-9);
            assert_eq!(r.counters.solves, 1, "{} emits one SolveStarted", r.name);
            assert!(r.counters.iterations >= 1, "{} runs iterations", r.name);
        }
        // Phase attribution: only QBP solves GAP subproblems and computes η.
        let qbp = &row.results[0].counters;
        assert!(qbp.gap_calls >= 1);
        assert!(qbp.eta_full >= 1);
    }

    #[test]
    fn initial_solution_is_feasible() {
        let spec = scaled_spec(&PAPER_SUITE[4], 0.08);
        let (problem, witness) =
            qbp_gen::build_instance_with_witness(&spec, &SuiteOptions::default()).unwrap();
        let asg = initial_solution(&problem, 3, Some(&witness)).unwrap();
        assert!(check_feasibility(&problem, &asg).is_feasible());
    }

    #[test]
    fn options_from_env_defaults() {
        // No env vars set in the test environment by default.
        let o = TableOptions::from_env();
        assert!(o.scale > 0.0 && o.scale <= 1.0);
    }
}
