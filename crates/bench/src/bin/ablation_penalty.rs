//! ABL-PEN: §3.2's numerical-accuracy discussion — the Theorem-1 bound `U`
//! is provably sufficient but enormous; the paper instead runs a fixed 50
//! justified a posteriori by Theorem 2. This sweep compares penalty choices.
//!
//! Usage: `cargo run -p qbp-bench --release --bin ablation_penalty`

use qbp_bench::{initial_solution, TableOptions};
use qbp_core::Evaluator;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{PenaltyMode, QbpConfig, QbpSolver};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    let modes: [(&str, PenaltyMode); 4] = [
        ("fixed=50", PenaltyMode::Fixed(50)),
        ("fixed=5", PenaltyMode::Fixed(5)),
        ("auto", PenaltyMode::Auto),
        ("theorem1", PenaltyMode::Theorem1),
    ];
    print!("{:<10}{:>10}", "circuits", "start");
    for (name, _) in &modes {
        print!("{:>12}{:>6}", *name, "ok?");
    }
    println!();
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        let initial =
            initial_solution(&problem, opts.seed, Some(&witness)).expect("feasible start");
        let start = Evaluator::new(&problem).cost(&initial);
        print!("{:<10}{:>10}", spec.name, start);
        for (_, mode) in &modes {
            let out = QbpSolver::new(QbpConfig {
                penalty: *mode,
                ..QbpConfig::default()
            })
            .solve(&problem, Some(&initial))
            .expect("solve");
            let cost = if out.feasible { out.objective.min(start) } else { start };
            print!("{:>12}{:>6}", cost, if out.feasible { "yes" } else { "NO" });
        }
        println!();
    }
    println!("\n(ok? = Theorem-2 a-posteriori check: returned minimizer is timing-feasible)");
}
