//! ABL-ITERS: §5 notes "the solution quality is dependent on the number of
//! iterations, the more CPU time spent, the better the results". This sweep
//! reruns QBP at increasing iteration budgets on the suite.
//!
//! Usage: `cargo run -p qbp-bench --release --bin ablation_iters`

use qbp_bench::{initial_solution, TableOptions};
use qbp_core::Evaluator;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{QbpConfig, QbpSolver};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    let budgets = [10usize, 25, 50, 100, 200, 400];
    print!("{:<10}{:>10}", "circuits", "start");
    for b in budgets {
        print!("{:>10}", format!("it={b}"));
    }
    println!();
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        let initial =
            initial_solution(&problem, opts.seed, Some(&witness)).expect("feasible start");
        let start = Evaluator::new(&problem).cost(&initial);
        print!("{:<10}{:>10}", spec.name, start);
        for b in budgets {
            let out = QbpSolver::new(QbpConfig {
                iterations: b,
                ..QbpConfig::default()
            })
            .solve(&problem, Some(&initial))
            .expect("solve");
            let cost = if out.feasible { out.objective.min(start) } else { start };
            print!("{:>10}", cost);
        }
        println!();
    }
    println!("\n(each column: final total Manhattan wire length after that many iterations)");
}
