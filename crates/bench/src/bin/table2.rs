//! TABLE-II: QBP vs GFM vs GKL **without** timing constraints — the paper's
//! Table II, on the synthetic suite.
//!
//! Usage: `cargo run -p qbp-bench --release --bin table2`
//! (set `QBP_SCALE=0.25` for a faster, proportionally scaled run).

use qbp_bench::harness::print_table;
use qbp_bench::{default_methods_with_threads, run_rows, TableOptions};
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    let methods = default_methods_with_threads(opts.threads);
    // Table II relaxes the timing constraints.
    let instances: Vec<_> = PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, opts.scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &suite_options).expect("suite construction");
            (spec, problem.without_timing(), witness)
        })
        .collect();
    // All circuits run concurrently; rows come back in suite order.
    let circuits: Vec<_> = instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, Some(witness)))
        .collect();
    let rows = run_rows(&circuits, &methods, opts.seed).expect("initial feasible solution");
    print_table(
        &format!("II. Without Timing Constraints (scale {}):", opts.scale),
        &rows,
    );
}
