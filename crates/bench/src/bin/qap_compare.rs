//! QAP: §2.2.3 — the Quadratic Assignment Problem is the `M = N`,
//! equal-sizes special case, and Burkard's original heuristic used Linear
//! Assignment subproblems. This bench cross-checks the two instantiations
//! of the Burkard loop (LAP-mode vs generalized GAP-mode) on random QAPs,
//! against the exhaustive optimum where tractable.
//!
//! Usage: `cargo run -p qbp-bench --release --bin qap_compare`

use qbp_gen::{random_qap, QapSpec};
use qbp_solver::exact::exhaustive_constrained;
use qbp_solver::{QapConfig, QapSolver, QbpConfig, QbpSolver};

fn main() {
    println!(
        "{:<8}{:>12}{:>12}{:>12}",
        "n", "LAP-mode", "GAP-mode", "optimum"
    );
    for n in [6usize, 8, 12, 16, 25, 36] {
        let problem = random_qap(&QapSpec::new(n)).expect("qap instance");
        let lap = QapSolver::new(QapConfig {
            iterations: 200,
            ..QapConfig::default()
        })
        .solve(&problem)
        .expect("lap-mode solve");
        let gap = QbpSolver::new(QbpConfig {
            iterations: 200,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .expect("gap-mode solve");
        let optimum = if n <= 8 {
            exhaustive_constrained(&problem)
                .map(|(_, c)| c.to_string())
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into()
        };
        println!(
            "{:<8}{:>12}{:>12}{:>12}",
            n, lap.objective, gap.objective, optimum
        );
    }
    println!("\n(LAP-mode = Burkard's original permutation subproblems; GAP-mode = this paper's generalization run on the same instance)");
}
