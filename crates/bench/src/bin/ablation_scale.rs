//! Complexity study for §4.3: per-iteration CPU of the QBP loop as the
//! instance grows. The sparse η kernel makes an iteration cost
//! `O((E+T)·M)`; since the suite scales E and T linearly with N, the
//! per-iteration time should grow roughly linearly in N — not with the
//! `M²N²` a dense implementation would pay.
//!
//! Usage: `cargo run -p qbp-bench --release --bin ablation_scale`

use qbp_bench::TableOptions;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{QbpConfig, QbpSolver};
use std::time::Instant;

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    println!(
        "{:>8}{:>10}{:>12}{:>16}{:>18}",
        "scale", "N", "E+T", "cpu/iter (ms)", "(cpu/iter)/(E+T)"
    );
    let iterations = 30;
    for scale in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let spec = scaled_spec(&PAPER_SUITE[2], scale); // cktc, the densest
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        let work = problem.circuit().directed_edge_count() + problem.timing().len();
        let t0 = Instant::now();
        let _ = QbpSolver::new(QbpConfig {
            iterations,
            repair_candidates: false, // isolate the paper's loop itself
            ..QbpConfig::default()
        })
        .solve(&problem, Some(&witness))
        .expect("solve");
        let per_iter_ms = t0.elapsed().as_secs_f64() * 1e3 / iterations as f64;
        println!(
            "{:>8}{:>10}{:>12}{:>16.3}{:>18.6}",
            scale,
            problem.n(),
            work,
            per_iter_ms,
            per_iter_ms / work as f64,
        );
    }
    println!("\n(the last column flattening out = per-iteration cost linear in E+T, §4.3)");
}
