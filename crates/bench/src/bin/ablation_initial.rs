//! ABL-INIT: §5 claims "QBP maintained the same kind of good results from
//! any arbitrary initial solution". This sweep solves each circuit from (a)
//! the protocol's feasible start, (b) a greedy first-fit start, (c) several
//! random (possibly infeasible) starts, and reports the final cost of each.
//!
//! Usage: `cargo run -p qbp-bench --release --bin ablation_initial`

use qbp_bench::{initial_solution, TableOptions};
use qbp_core::Evaluator;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{greedy_first_fit, random_assignment, QbpConfig, QbpSolver};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "circuits", "protocol", "greedy", "random#1", "random#2", "random#3"
    );
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        let eval = Evaluator::new(&problem);
        let solver = QbpSolver::new(QbpConfig::default());
        let run = |initial: Option<&qbp_core::Assignment>, seed: u64| -> String {
            let solver = QbpSolver::new(QbpConfig {
                seed,
                ..QbpConfig::default()
            });
            match solver.solve(&problem, initial) {
                Ok(out) if out.feasible => out.objective.to_string(),
                Ok(_) => "infeas".to_string(),
                Err(e) => format!("err:{e}"),
            }
        };
        let protocol =
            initial_solution(&problem, opts.seed, Some(&witness)).expect("feasible start");
        let protocol_cost = {
            let out = solver.solve(&problem, Some(&protocol)).expect("solve");
            if out.feasible {
                out.objective.min(eval.cost(&protocol))
            } else {
                eval.cost(&protocol)
            }
        };
        let greedy = greedy_first_fit(&problem, opts.seed, 100)
            .map(|g| run(Some(&g), opts.seed))
            .unwrap_or_else(|| "n/a".into());
        print!("{:<10}{:>12}{:>12}", spec.name, protocol_cost, greedy);
        for r in 0..3u64 {
            let rand_start = random_assignment(problem.n(), problem.m(), opts.seed + 100 + r);
            print!("{:>12}", run(Some(&rand_start), opts.seed + r));
        }
        println!();
    }
    println!("\n(final cost per starting point; 'infeas' = no feasible solution reached)");
}
