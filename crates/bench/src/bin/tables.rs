//! Runs TABLE-I, TABLE-II and TABLE-III back to back — the full §5
//! evaluation. `QBP_SCALE` scales the instances; `QBP_SEED` reseeds them;
//! the `--scale` and `--seed` flags override both.
//!
//! Usage: `cargo run -p qbp-bench --release --bin tables [-- --scale 0.5 --seed 7]`

use qbp_bench::harness::print_table;
use qbp_bench::{default_methods_with_threads, run_rows, TableOptions};
use qbp_cli::args::Args;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};

fn main() {
    let opts = Args::parse(std::env::args().skip(1), &[])
        .and_then(|args| TableOptions::from_env_and_args(&args));
    let opts = match opts {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };

    println!("I. circuit descriptions (generated at scale {}):", opts.scale);
    println!(
        "{:<8}{:>16}{:>12}{:>26}",
        "ckt", "# of components", "# of wires", "# of Timing Constraints"
    );
    let mut instances = Vec::new();
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        println!(
            "{:<8}{:>16}{:>12}{:>26}",
            spec.name,
            problem.n(),
            problem.circuit().total_wire_weight() / 2,
            problem.timing().len()
        );
        instances.push((spec, problem, witness));
    }
    println!();

    let methods = default_methods_with_threads(opts.threads);
    // Table II relaxes the timing constraints; both tables' circuits run
    // concurrently (rows come back in suite order regardless).
    let relaxed: Vec<_> = instances
        .iter()
        .map(|(_, problem, _)| problem.without_timing())
        .collect();
    let circuits2: Vec<_> = instances
        .iter()
        .zip(&relaxed)
        .map(|((spec, _, witness), problem)| (spec.name, problem, Some(witness)))
        .collect();
    let circuits3: Vec<_> = instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, Some(witness)))
        .collect();
    let rows2 = run_rows(&circuits2, &methods, opts.seed).expect("table II rows");
    let rows3 = run_rows(&circuits3, &methods, opts.seed).expect("table III rows");
    print_table("II. Without Timing Constraints:", &rows2);
    print_table("III. With Timing Constraints:", &rows3);
}
