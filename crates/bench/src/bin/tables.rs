//! Runs TABLE-I, TABLE-II and TABLE-III back to back — the full §5
//! evaluation. `QBP_SCALE` scales the instances; `QBP_SEED` reseeds them.
//!
//! Usage: `cargo run -p qbp-bench --release --bin tables`

use qbp_bench::harness::print_table;
use qbp_bench::{default_methods, run_circuit_with_fallback, TableOptions};
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };

    println!("I. circuit descriptions (generated at scale {}):", opts.scale);
    println!(
        "{:<8}{:>16}{:>12}{:>26}",
        "ckt", "# of components", "# of wires", "# of Timing Constraints"
    );
    let mut instances = Vec::new();
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        println!(
            "{:<8}{:>16}{:>12}{:>26}",
            spec.name,
            problem.n(),
            problem.circuit().total_wire_weight() / 2,
            problem.timing().len()
        );
        instances.push((spec, problem, witness));
    }
    println!();

    let methods = default_methods();
    let mut rows2 = Vec::new();
    let mut rows3 = Vec::new();
    for (spec, problem, witness) in &instances {
        let relaxed = problem.without_timing();
        rows2.push(
            run_circuit_with_fallback(spec.name, &relaxed, &methods, opts.seed, Some(witness))
                .expect("table II row"),
        );
        rows3.push(
            run_circuit_with_fallback(spec.name, problem, &methods, opts.seed, Some(witness))
                .expect("table III row"),
        );
    }
    print_table("II. Without Timing Constraints:", &rows2);
    print_table("III. With Timing Constraints:", &rows3);
}
