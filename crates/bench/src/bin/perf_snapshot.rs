//! Performance snapshot: runs the scaled paper suite once, times each
//! method, measures the serial-vs-parallel multistart speedup on one
//! representative circuit, and writes everything to `BENCH_qbp.json`.
//!
//! Usage: `QBP_SCALE=0.25 cargo run -p qbp-bench --release --bin perf_snapshot`
//!
//! Environment:
//! * `QBP_SCALE` — instance scale (this binary defaults to 0.25, not 1.0).
//! * `QBP_SEED` — base seed (default 1993).
//! * `QBP_BENCH_OUT` — output path (default `BENCH_qbp.json`).
//!
//! The snapshot is informational (CI runs it non-gating), but the binary
//! does exit non-zero if the parallel multistart diverges from the serial
//! one — that would be a determinism bug, not a performance regression.

use qbp_bench::{default_methods, run_rows, CircuitRow, TableOptions};
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{QbpConfig, QbpSolver};
use std::time::Instant;

/// Multistart restarts benchmarked below.
const MULTISTART_RUNS: usize = 8;
/// Circuit used for the multistart speedup measurement (mid-sized so the
/// snapshot stays quick while each run is long enough to amortize spawn
/// cost).
const MULTISTART_CIRCUIT: &str = "cktd";

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_json(rows: &[CircuitRow]) -> String {
    let mut out = String::from("[");
    for (ri, row) in rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"circuit\": \"{}\", \"start_cost\": {}, \"methods\": [",
            json_escape(&row.name),
            row.start_cost
        ));
        for (mi, r) in row.results.iter().enumerate() {
            if mi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"final_cost\": {}, \"improvement_pct\": {:.3}, \
                 \"cpu_seconds\": {:.6}, \"feasible\": {}}}",
                r.name, r.final_cost, r.improvement_pct, r.cpu_seconds, r.feasible
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]");
    out
}

fn main() {
    let mut opts = TableOptions::from_env();
    if std::env::var("QBP_SCALE").is_err() {
        opts.scale = 0.25;
    }
    let out_path =
        std::env::var("QBP_BENCH_OUT").unwrap_or_else(|_| "BENCH_qbp.json".to_string());
    let threads_available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };

    eprintln!(
        "perf_snapshot: scale {}, seed {}, {} core(s)",
        opts.scale, opts.seed, threads_available
    );

    // Suite timings: every circuit (and within it, every method) runs
    // concurrently, exactly like the table binaries.
    let instances: Vec<_> = PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, opts.scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &suite_options).expect("suite construction");
            (spec, problem, witness)
        })
        .collect();
    let circuits: Vec<_> = instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, Some(witness)))
        .collect();
    let methods = default_methods();
    let suite_t0 = Instant::now();
    let rows = run_rows(&circuits, &methods, opts.seed).expect("suite rows");
    let suite_seconds = suite_t0.elapsed().as_secs_f64();

    // Multistart speedup: the same 8 restarts serially (threads = 1) and in
    // parallel (threads = 0 → all cores); the winners must be bit-identical.
    let (_, problem, _) = instances
        .iter()
        .find(|(spec, _, _)| spec.name == MULTISTART_CIRCUIT)
        .expect("multistart circuit in suite");
    let solver_for = |threads: usize| {
        QbpSolver::new(QbpConfig {
            seed: opts.seed,
            threads,
            ..QbpConfig::default()
        })
    };
    let t0 = Instant::now();
    let serial = solver_for(1)
        .solve_multistart(problem, None, MULTISTART_RUNS)
        .expect("serial multistart");
    let serial_seconds = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = solver_for(0)
        .solve_multistart(problem, None, MULTISTART_RUNS)
        .expect("parallel multistart");
    let parallel_seconds = t0.elapsed().as_secs_f64();
    let bit_identical = serial.assignment == parallel.assignment
        && serial.embedded_value == parallel.embedded_value
        && serial.objective == parallel.objective
        && serial.feasible == parallel.feasible
        && serial.iterations == parallel.iterations;
    let speedup = serial_seconds / parallel_seconds.max(1e-12);
    eprintln!(
        "multistart ({MULTISTART_CIRCUIT}, {MULTISTART_RUNS} runs): \
         serial {serial_seconds:.3}s, parallel {parallel_seconds:.3}s, \
         speedup {speedup:.2}x, bit_identical {bit_identical}"
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads_available\": {},\n  \
         \"suite_wall_seconds\": {:.6},\n  \"tables\": {},\n  \"multistart\": {{\n    \
         \"circuit\": \"{}\",\n    \"runs\": {},\n    \"serial_seconds\": {:.6},\n    \
         \"parallel_seconds\": {:.6},\n    \"speedup\": {:.3},\n    \"bit_identical\": {}\n  }}\n}}\n",
        opts.scale,
        opts.seed,
        threads_available,
        suite_seconds,
        rows_json(&rows),
        MULTISTART_CIRCUIT,
        MULTISTART_RUNS,
        serial_seconds,
        parallel_seconds,
        speedup,
        bit_identical
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("perf_snapshot: wrote {out_path}");

    if !bit_identical {
        eprintln!("error: parallel multistart diverged from serial (determinism bug)");
        std::process::exit(1);
    }
}
