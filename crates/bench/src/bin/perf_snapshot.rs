//! Performance snapshot: runs the scaled paper suite once, times each
//! method, measures the serial-vs-parallel multistart speedup and the
//! observability layer's overhead on one representative circuit, and writes
//! everything (including per-method event counters) to `BENCH_qbp.json`.
//!
//! Usage: `QBP_SCALE=0.25 cargo run -p qbp-bench --release --bin perf_snapshot`
//! (or `--bin perf_snapshot -- --scale 0.25 --seed 7 --runs 8`; flags beat
//! environment variables).
//!
//! Environment:
//! * `QBP_SCALE` — instance scale (this binary defaults to 0.25, not 1.0).
//! * `QBP_SEED` — base seed (default 1993).
//! * `QBP_BENCH_OUT` — output path (default `BENCH_qbp.json`).
//! * `QBP_THREADS_OUT` — path of the standalone thread-scaling artifact
//!   (default `BENCH_threads.json`): the thread-scaling probe plus the
//!   gating `refine_bench` block, for CI upload.
//! * `QBP_SCALE_N` / `QBP_SCALE_FULL` — size ladder of the embedded
//!   `scale_bench` block (see `qbp_bench::scale`).
//!
//! The snapshot is mostly informational (CI runs it non-gating), but the
//! binary exits non-zero on correctness or efficiency contract violations:
//! the parallel multistart diverging from the serial one, a thread-scaling
//! or `refine_bench` parallel solve diverging from its serial twin, a
//! profiled kernel diverging from its explicit-walk twin, the QBP
//! profile-sync patch path losing to full rebuilds on suite totals, or
//! (when `QBP_BASELINE` is set) a gated hot kernel (η, profiled move/swap
//! gains) or a `refine_bench` sweep wall slowing more than 25% against the
//! committed baseline.

use qbp_baselines::{GfmConfig, GfmSolver, GklConfig, GklSolver};
use qbp_bench::{default_methods_with_threads, run_rows, CircuitRow, TableOptions};
use qbp_cli::args::Args;
use qbp_core::hw::HostInfo;
use qbp_core::{Assignment, ComponentId, Evaluator, PartitionId, PartitionProfile, Problem, QMatrix};
use qbp_eco::{EcoConfig, EcoSession, NetlistDelta};
use qbp_gen::{build_instance_with_witness, eco_edit_stream, scaled_spec, EcoStreamOptions,
    SuiteOptions, PAPER_SUITE};
use qbp_multilevel::{MlqbpConfig, MlqbpSolver};
use qbp_observe::{CounterSnapshot, CountersObserver, NoopObserver, SolveObserver};
use qbp_solver::{Budget, ExecCtx, QbpConfig, QbpSolver, SolveWorkspace, Solver};
use std::time::{Duration, Instant};

/// Default multistart restarts benchmarked below (`--runs` overrides).
const MULTISTART_RUNS: usize = 8;
/// Circuit used for the multistart-speedup and observer-overhead
/// measurements (mid-sized so the snapshot stays quick while each run is
/// long enough to amortize spawn cost).
const MULTISTART_CIRCUIT: &str = "cktd";
/// Repetitions per observer-overhead timing; the minimum is reported.
const OVERHEAD_REPS: usize = 3;
/// Repetitions per kernel timing (minimum is kept, summed over the suite).
/// The profiled kernels finish in tens of microseconds per circuit, so a
/// min-of-3 is under-sampled — scheduler noise swings the reported ratios
/// by ±5 % run to run; nine reps keeps the minima stable.
const KERNEL_REPS: usize = 9;
/// Instance scales the kernel benchmark runs at.
const KERNEL_SCALES: [f64; 2] = [0.25, 1.0];
/// Relative slowdown against `QBP_BASELINE` that triggers a CI annotation.
const KERNEL_REGRESSION_THRESHOLD: f64 = 0.15;
/// Relative slowdown of a gated hot kernel (see [`GATED_KERNEL_KEYS`])
/// against `QBP_BASELINE` that fails the snapshot outright.
const ETA_REGRESSION_HARD_THRESHOLD: f64 = 0.25;
/// The multilevel comparison runs the paper suite at this multiple of the
/// snapshot scale: at the default scale 0.25 this is the paper's circuits
/// at full size (scale `4 × 0.25 = 1.0`).
const ML_PAPER_FACTOR: f64 = 4.0;
/// The multilevel comparison runs the synthetic suite at this multiple of
/// the snapshot scale: at the default scale 0.25 this is four times the
/// paper's circuit sizes (scale `16 × 0.25 = 4.0`), where coarsening pays
/// most.
const ML_SYNTHETIC_FACTOR: f64 = 16.0;
/// Circuit the ECO benchmark replays its edit stream on.
const ECO_CIRCUIT: &str = "ckta";
/// Length of the seeded ECO edit stream (`QBP_ECO_EDITS` overrides, for
/// scaled-down smoke runs).
const ECO_EDITS: usize = 1000;
/// Minimum warm-vs-cold wall-clock speedup the ECO stream must demonstrate
/// (informational annotation below it; the gating checks are the
/// state-equivalence audit and warm feasibility).
const ECO_SPEEDUP_TARGET: f64 = 25.0;
/// Warm re-solve cost may exceed the cold-solve cost of the same mutated
/// problem by at most this fraction before the snapshot annotates it.
const ECO_QUALITY_BUDGET: f64 = 0.05;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_json(rows: &[CircuitRow]) -> String {
    let mut out = String::from("[");
    for (ri, row) in rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"circuit\": \"{}\", \"start_cost\": {}, \"methods\": [",
            json_escape(&row.name),
            row.start_cost
        ));
        for (mi, r) in row.results.iter().enumerate() {
            if mi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"final_cost\": {}, \"improvement_pct\": {:.3}, \
                 \"cpu_seconds\": {:.6}, \"feasible\": {}, \"counters\": {}}}",
                r.name,
                r.final_cost,
                r.improvement_pct,
                r.cpu_seconds,
                r.feasible,
                r.counters.to_json()
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]");
    out
}

/// Sums one method's counters across all circuits of the suite — the
/// per-phase totals (η incremental vs. full, GAP calls, repairs, …) the
/// snapshot surfaces at top level.
fn aggregate_counters(rows: &[CircuitRow], method: &str) -> CounterSnapshot {
    let mut total = CounterSnapshot::default();
    for r in rows.iter().flat_map(|row| &row.results) {
        if r.name != method {
            continue;
        }
        let c = &r.counters;
        total.solves += c.solves;
        total.iterations += c.iterations;
        total.eta_full += c.eta_full;
        total.eta_incremental += c.eta_incremental;
        total.gap_calls += c.gap_calls;
        total.lap_calls += c.lap_calls;
        total.infeasible_subproblems += c.infeasible_subproblems;
        total.penalty_hits += c.penalty_hits;
        total.repairs += c.repairs;
        total.repairs_cleaned += c.repairs_cleaned;
        total.stall_resets += c.stall_resets;
        total.moves_accepted += c.moves_accepted;
        total.moves_rejected += c.moves_rejected;
        total.improvements += c.improvements;
        total.runs += c.runs;
        total.profile_rebuilds += c.profile_rebuilds;
        total.profile_patches += c.profile_patches;
        total.levels_coarsened += c.levels_coarsened;
        total.levels_refined += c.levels_refined;
    }
    total
}

/// Suite-aggregated wall-clock of the η and gain kernels at one instance
/// scale: the pre-CSR nested-list η baseline vs. the CSR walk vs. the
/// profile-backed kernel, and the explicit-walk move/swap gains vs. their
/// [`PartitionProfile`] counterparts. All variants are asserted bit-identical
/// on every circuit before being timed.
struct KernelBench {
    scale: f64,
    eta_nested_seconds: f64,
    eta_csr_seconds: f64,
    eta_profiled_seconds: f64,
    profile_build_seconds: f64,
    move_gains_walk_seconds: f64,
    move_gains_profiled_seconds: f64,
    swap_gains_walk_seconds: f64,
    swap_gains_profiled_seconds: f64,
    /// Largest padded partition stride ([`qbp_core::padded_partitions`])
    /// any suite circuit ran the SoA kernels at.
    padded_partitions: usize,
    /// `false` when any kernel pair disagreed on any circuit (a correctness
    /// bug, reported and gated like the multistart determinism check).
    matched: bool,
}

/// Minimum wall-clock of `f` over [`KERNEL_REPS`] repetitions.
fn min_time<F: FnMut()>(mut f: F) -> f64 {
    (0..KERNEL_REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn kernel_bench(scale: f64, suite_options: &SuiteOptions) -> KernelBench {
    let mut kb = KernelBench {
        scale,
        eta_nested_seconds: 0.0,
        eta_csr_seconds: 0.0,
        eta_profiled_seconds: 0.0,
        profile_build_seconds: 0.0,
        move_gains_walk_seconds: 0.0,
        move_gains_profiled_seconds: 0.0,
        swap_gains_walk_seconds: 0.0,
        swap_gains_profiled_seconds: 0.0,
        padded_partitions: 0,
        matched: true,
    };
    for spec in PAPER_SUITE {
        let spec = scaled_spec(&spec, scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, suite_options).expect("suite construction");
        let q = QMatrix::with_auto_penalty(&problem).expect("auto penalty");
        let nested = q.nested_eta_baseline();
        let eval = Evaluator::new(&problem);
        let n = problem.n();
        let m = problem.m();

        // η: nested baseline vs. CSR walk vs. profile lookups.
        let (mut eta_a, mut eta_b, mut eta_c) = (Vec::new(), Vec::new(), Vec::new());
        kb.eta_nested_seconds += min_time(|| nested.eta(&q, &witness, &mut eta_a));
        kb.eta_csr_seconds += min_time(|| q.eta(&witness, &mut eta_b));
        let t0 = Instant::now();
        let embedded = PartitionProfile::embedded(&q, &witness);
        kb.profile_build_seconds += t0.elapsed().as_secs_f64();
        kb.eta_profiled_seconds += min_time(|| q.eta_profiled(&witness, &embedded, &mut eta_c));
        if eta_a != eta_b || eta_b != eta_c {
            kb.matched = false;
        }

        // Move and swap gains: explicit adjacency walks vs. profile lookups,
        // over every (component, foreign partition) and every cross-partition
        // pair — the exact gain sets GFM and GKL enumerate.
        let plain = PartitionProfile::plain(&problem, &witness);
        let move_walk: Vec<i64> = (0..n)
            .flat_map(|j| {
                let cur = witness.part_index(j);
                (0..m).filter(move |&i| i != cur).map(move |i| (j, i))
            })
            .map(|(j, i)| eval.move_delta(&witness, ComponentId::new(j), PartitionId::new(i)))
            .collect();
        let move_prof: Vec<i64> = (0..n)
            .flat_map(|j| {
                let cur = witness.part_index(j);
                (0..m).filter(move |&i| i != cur).map(move |i| (j, i))
            })
            .map(|(j, i)| {
                eval.move_delta_profiled(&plain, &witness, ComponentId::new(j), PartitionId::new(i))
            })
            .collect();
        let swap_pairs: Vec<(ComponentId, ComponentId)> = (0..n)
            .flat_map(|j1| (j1 + 1..n).map(move |j2| (j1, j2)))
            .filter(|&(j1, j2)| witness.part_index(j1) != witness.part_index(j2))
            .map(|(j1, j2)| (ComponentId::new(j1), ComponentId::new(j2)))
            .collect();
        let swap_walk: Vec<i64> = swap_pairs
            .iter()
            .map(|&(c1, c2)| eval.swap_delta(&witness, c1, c2))
            .collect();
        let swap_prof: Vec<i64> = swap_pairs
            .iter()
            .map(|&(c1, c2)| eval.swap_delta_profiled_lookup(&plain, &witness, c1, c2))
            .collect();
        if move_walk != move_prof || swap_walk != swap_prof {
            kb.matched = false;
        }

        let mut sink: i64 = 0;
        kb.move_gains_walk_seconds += min_time(|| {
            for j in 0..n {
                let cur = witness.part_index(j);
                for i in (0..m).filter(|&i| i != cur) {
                    sink = sink.wrapping_add(eval.move_delta(
                        &witness,
                        ComponentId::new(j),
                        PartitionId::new(i),
                    ));
                }
            }
        });
        kb.move_gains_profiled_seconds += min_time(|| {
            for j in 0..n {
                let cur = witness.part_index(j);
                for i in (0..m).filter(|&i| i != cur) {
                    sink = sink.wrapping_add(eval.move_delta_profiled(
                        &plain,
                        &witness,
                        ComponentId::new(j),
                        PartitionId::new(i),
                    ));
                }
            }
        });
        kb.swap_gains_walk_seconds += min_time(|| {
            for &(c1, c2) in &swap_pairs {
                sink = sink.wrapping_add(eval.swap_delta(&witness, c1, c2));
            }
        });
        kb.swap_gains_profiled_seconds += min_time(|| {
            for &(c1, c2) in &swap_pairs {
                sink =
                    sink.wrapping_add(eval.swap_delta_profiled_lookup(&plain, &witness, c1, c2));
            }
        });
        kb.padded_partitions = kb.padded_partitions.max(qbp_core::padded_partitions(m));
        std::hint::black_box(sink);
    }
    kb
}

impl KernelBench {
    fn eta_speedup_vs_nested(&self) -> f64 {
        self.eta_nested_seconds / self.eta_profiled_seconds.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"scale\": {}, \"reps\": {}, \"threads_used\": 1, \
             \"simd_lane_width\": {}, \"padded_partitions\": {}, \
             \"eta_nested_seconds\": {:.6}, \"eta_csr_seconds\": {:.6}, \
             \"eta_profiled_seconds\": {:.6}, \"eta_speedup_vs_nested\": {:.3}, \
             \"profile_build_seconds\": {:.6}, \
             \"move_gains_walk_seconds\": {:.6}, \"move_gains_profiled_seconds\": {:.6}, \
             \"move_gains_speedup\": {:.3}, \
             \"swap_gains_walk_seconds\": {:.6}, \"swap_gains_profiled_seconds\": {:.6}, \
             \"swap_gains_speedup\": {:.3}, \"matched\": {}}}",
            self.scale,
            KERNEL_REPS,
            qbp_core::SIMD_LANES,
            self.padded_partitions,
            self.eta_nested_seconds,
            self.eta_csr_seconds,
            self.eta_profiled_seconds,
            self.eta_speedup_vs_nested(),
            self.profile_build_seconds,
            self.move_gains_walk_seconds,
            self.move_gains_profiled_seconds,
            self.move_gains_walk_seconds / self.move_gains_profiled_seconds.max(1e-12),
            self.swap_gains_walk_seconds,
            self.swap_gains_profiled_seconds,
            self.swap_gains_walk_seconds / self.swap_gains_profiled_seconds.max(1e-12),
            self.matched
        )
    }
}

/// Timing keys diffed against a `QBP_BASELINE` snapshot (lower is better).
const KERNEL_TIMING_KEYS: [&str; 7] = [
    "eta_nested_seconds",
    "eta_csr_seconds",
    "eta_profiled_seconds",
    "profile_build_seconds",
    "move_gains_profiled_seconds",
    "swap_gains_profiled_seconds",
    "move_gains_walk_seconds",
];

/// Pulls `"key": <number>` out of a JSON fragment without a JSON parser (the
/// snapshot format is this binary's own output).
fn extract_number(fragment: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = fragment.find(&pat)? + pat.len();
    let rest = fragment[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Hot-kernel keys whose regressions fail the snapshot (not just annotate)
/// past [`ETA_REGRESSION_HARD_THRESHOLD`]: the three η variants the solver's
/// descent loop lives on, plus the profiled move/swap gain kernels GFM and
/// GKL enumerate with.
const GATED_KERNEL_KEYS: [&str; 5] = [
    "eta_nested_seconds",
    "eta_csr_seconds",
    "eta_profiled_seconds",
    "move_gains_profiled_seconds",
    "swap_gains_profiled_seconds",
];

/// Regression check against the committed snapshot named by `QBP_BASELINE`:
/// prints a GitHub `::warning::` annotation for every kernel that slowed
/// more than [`KERNEL_REGRESSION_THRESHOLD`], escalates to `::error::` when
/// a gated hot kernel (see [`GATED_KERNEL_KEYS`]) slowed past
/// [`ETA_REGRESSION_HARD_THRESHOLD`], and returns the number of such hard
/// failures (the caller exits non-zero). Absent/unreadable baselines (or
/// ones predating `kernel_bench`) are skipped silently — the first snapshot
/// in a fresh checkout has nothing to diff against.
fn diff_against_baseline(baseline_path: &str, fresh: &[KernelBench]) -> usize {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("kernel regression check: baseline {baseline_path} unreadable, skipping");
        return 0;
    };
    let Some(start) = text.find("\"kernel_bench\"") else {
        eprintln!("kernel regression check: baseline has no kernel_bench block, skipping");
        return 0;
    };
    // One `{...}` object per scale inside the kernel_bench array.
    let mut annotated = 0usize;
    let mut hard_failures = 0usize;
    for chunk in text[start..].split('{').skip(1) {
        let chunk = chunk.split('}').next().unwrap_or("");
        let Some(scale) = extract_number(chunk, "scale") else {
            continue;
        };
        let Some(kb) = fresh.iter().find(|kb| (kb.scale - scale).abs() < 1e-9) else {
            continue;
        };
        for key in KERNEL_TIMING_KEYS {
            let (Some(base), Some(now)) = (
                extract_number(chunk, key),
                extract_number(&kb.to_json(), key),
            ) else {
                continue;
            };
            if base <= 0.0 {
                continue;
            }
            let gated = GATED_KERNEL_KEYS.contains(&key)
                && now > base * (1.0 + ETA_REGRESSION_HARD_THRESHOLD);
            if gated {
                let pct = 100.0 * (now / base - 1.0);
                println!(
                    "::error::kernel_bench regression: {key} at scale {scale} \
                     slowed {pct:+.1}% (baseline {base:.6}s, fresh {now:.6}s), \
                     past the {:.0}% hard limit",
                    100.0 * ETA_REGRESSION_HARD_THRESHOLD
                );
                hard_failures += 1;
            } else if now > base * (1.0 + KERNEL_REGRESSION_THRESHOLD) {
                let pct = 100.0 * (now / base - 1.0);
                println!(
                    "::warning::kernel_bench regression: {key} at scale {scale} \
                     slowed {pct:+.1}% (baseline {base:.6}s, fresh {now:.6}s)"
                );
                annotated += 1;
            }
        }
    }
    eprintln!(
        "kernel regression check vs {baseline_path}: {annotated} kernel(s) slower than the \
         {:.0}% threshold, {hard_failures} gated kernel(s) past the {:.0}% hard limit",
        100.0 * KERNEL_REGRESSION_THRESHOLD,
        100.0 * ETA_REGRESSION_HARD_THRESHOLD
    );
    hard_failures
}

/// Thread-scaling probe on one circuit: the parallel η batch kernel plus one
/// full solve per engine — flat QBP, GFM, GKL, and the multilevel V-cycle —
/// each at 1/2/4 threads. Every run must be bit-identical to the
/// single-threaded one (the determinism contract of `qbp_core::par` and the
/// speculative-batch sweep layer); speedups are informational — a
/// single-core runner reports ratios near 1.
struct ThreadScaling {
    threads: Vec<usize>,
    eta_seconds: Vec<f64>,
    solve_seconds: Vec<f64>,
    gfm_seconds: Vec<f64>,
    gkl_seconds: Vec<f64>,
    ml_seconds: Vec<f64>,
    padded_partitions: usize,
    bit_identical: bool,
}

fn thread_scaling(problem: &Problem, witness: &Assignment, seed: u64) -> ThreadScaling {
    let q = QMatrix::with_auto_penalty(problem).expect("auto penalty");
    let embedded = PartitionProfile::embedded(&q, witness);
    let threads = vec![1usize, 2, 4];
    let mut eta_seconds = Vec::new();
    let mut solve_seconds = Vec::new();
    let mut gfm_seconds = Vec::new();
    let mut gkl_seconds = Vec::new();
    let mut ml_seconds = Vec::new();
    let mut bit_identical = true;
    let mut eta_ref: Option<Vec<i64>> = None;
    let mut solve_ref: Option<(i64, Assignment, usize)> = None;
    let mut gfm_ref: Option<(i64, Assignment, usize, usize)> = None;
    let mut gkl_ref: Option<(i64, Assignment, usize, usize)> = None;
    let mut ml_ref: Option<(i64, Assignment, usize)> = None;
    for &t in &threads {
        let mut eta = Vec::new();
        eta_seconds.push(min_time(|| {
            q.eta_profiled_par(witness, &embedded, &mut eta, t);
        }));
        match &eta_ref {
            None => eta_ref = Some(eta),
            Some(reference) => bit_identical &= *reference == eta,
        }
        let solver = QbpSolver::new(QbpConfig {
            seed,
            threads: t,
            ..QbpConfig::default()
        });
        let t0 = Instant::now();
        let report = Solver::solve(&solver, problem, Some(witness), &mut NoopObserver)
            .expect("thread-scaling solve");
        solve_seconds.push(t0.elapsed().as_secs_f64());
        match &solve_ref {
            None => solve_ref = Some((report.objective, report.assignment, report.iterations)),
            Some((objective, assignment, iterations)) => {
                bit_identical &= *objective == report.objective
                    && *assignment == report.assignment
                    && *iterations == report.iterations;
            }
        }
        let t0 = Instant::now();
        let gfm = GfmSolver::new(GfmConfig {
            threads: t,
            ..GfmConfig::default()
        })
        .solve(problem, witness)
        .expect("thread-scaling gfm solve");
        gfm_seconds.push(t0.elapsed().as_secs_f64());
        match &gfm_ref {
            None => gfm_ref = Some((gfm.cost, gfm.assignment, gfm.passes, gfm.moves_applied)),
            Some((cost, assignment, passes, moves)) => {
                bit_identical &= *cost == gfm.cost
                    && *assignment == gfm.assignment
                    && *passes == gfm.passes
                    && *moves == gfm.moves_applied;
            }
        }
        let t0 = Instant::now();
        let gkl = GklSolver::new(GklConfig {
            threads: t,
            ..GklConfig::default()
        })
        .solve(problem, witness)
        .expect("thread-scaling gkl solve");
        gkl_seconds.push(t0.elapsed().as_secs_f64());
        match &gkl_ref {
            None => gkl_ref = Some((gkl.cost, gkl.assignment, gkl.passes, gkl.moves_applied)),
            Some((cost, assignment, passes, moves)) => {
                bit_identical &= *cost == gkl.cost
                    && *assignment == gkl.assignment
                    && *passes == gkl.passes
                    && *moves == gkl.moves_applied;
            }
        }
        let ml_solver = MlqbpSolver::new(MlqbpConfig {
            qbp: QbpConfig {
                seed,
                threads: t,
                ..QbpConfig::default()
            },
            ..MlqbpConfig::default()
        });
        let t0 = Instant::now();
        let ml = Solver::solve(&ml_solver, problem, Some(witness), &mut NoopObserver)
            .expect("thread-scaling mlqbp solve");
        ml_seconds.push(t0.elapsed().as_secs_f64());
        match &ml_ref {
            None => ml_ref = Some((ml.objective, ml.assignment, ml.iterations)),
            Some((objective, assignment, iterations)) => {
                bit_identical &= *objective == ml.objective
                    && *assignment == ml.assignment
                    && *iterations == ml.iterations;
            }
        }
    }
    ThreadScaling {
        threads,
        eta_seconds,
        solve_seconds,
        gfm_seconds,
        gkl_seconds,
        ml_seconds,
        padded_partitions: qbp_core::padded_partitions(problem.m()),
        bit_identical,
    }
}

impl ThreadScaling {
    fn speedups(seconds: &[f64]) -> Vec<f64> {
        seconds.iter().map(|&s| seconds[0] / s.max(1e-12)).collect()
    }

    fn to_json(&self) -> String {
        let fmt_f64 = |v: &[f64], digits: usize| {
            v.iter()
                .map(|x| format!("{x:.digits$}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let threads = self
            .threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n    \"circuit\": \"{}\",\n    \"threads\": [{}],\n    \
             \"simd_lane_width\": {},\n    \"padded_partitions\": {},\n    \
             \"eta_seconds\": [{}],\n    \"eta_speedups\": [{}],\n    \
             \"solve_seconds\": [{}],\n    \"solve_speedups\": [{}],\n    \
             \"gfm_seconds\": [{}],\n    \"gfm_speedups\": [{}],\n    \
             \"gkl_seconds\": [{}],\n    \"gkl_speedups\": [{}],\n    \
             \"ml_seconds\": [{}],\n    \"ml_speedups\": [{}],\n    \
             \"bit_identical\": {}\n  }}",
            MULTISTART_CIRCUIT,
            threads,
            qbp_core::SIMD_LANES,
            self.padded_partitions,
            fmt_f64(&self.eta_seconds, 6),
            fmt_f64(&Self::speedups(&self.eta_seconds), 3),
            fmt_f64(&self.solve_seconds, 6),
            fmt_f64(&Self::speedups(&self.solve_seconds), 3),
            fmt_f64(&self.gfm_seconds, 6),
            fmt_f64(&Self::speedups(&self.gfm_seconds), 3),
            fmt_f64(&self.gkl_seconds, 6),
            fmt_f64(&Self::speedups(&self.gkl_seconds), 3),
            fmt_f64(&self.ml_seconds, 6),
            fmt_f64(&Self::speedups(&self.ml_seconds), 3),
            self.bit_identical
        )
    }
}

/// How many threads the parallel arm of [`refine_bench`] runs with.
const REFINE_PAR_THREADS: usize = 4;
/// Relative slowdown of a `refine_bench` wall against `QBP_BASELINE` that
/// fails the snapshot outright (same contract as the gated hot kernels).
const REFINE_REGRESSION_HARD_THRESHOLD: f64 = 0.25;
/// Outer-loop cap for the GKL arm of [`refine_bench`]. GKL rebuilds an
/// O(N²) cross-pair gain table per outer loop, so the full six-loop budget
/// on a 4×-scale circuit would dominate the snapshot's wall clock; both
/// arms run the same cap, so the serial-vs-parallel ratio and the
/// bit-identity audit are unaffected.
const REFINE_GKL_OUTER_LOOPS: usize = 2;

/// One engine's serial-vs-parallel sweep wall on the synthetic suite.
struct RefineMethodBench {
    name: &'static str,
    /// Circuits this engine ran (GKL covers only the smallest, see
    /// [`REFINE_GKL_OUTER_LOOPS`]).
    circuits: usize,
    serial_seconds: f64,
    par_seconds: f64,
    /// Parallel outcome bit-identical to serial on every circuit (gating).
    bit_identical: bool,
}

impl RefineMethodBench {
    fn speedup(&self) -> f64 {
        self.serial_seconds / self.par_seconds.max(1e-12)
    }
}

/// The gating parallel-refinement benchmark: full solves on the 4× synthetic
/// suite, serial (threads = 1) vs [`REFINE_PAR_THREADS`], for the three
/// refinement engines — GFM, GKL, and the multilevel V-cycle (parallel
/// gain/pair-table builds and η/GAP lanes; the speculative-batch sweeps
/// additionally engage past their spawn-amortization work gate, see
/// ALGORITHM.md §14). Bit-identity across the two arms is gated;
/// walls are diffed against `QBP_BASELINE` with a hard
/// [`REFINE_REGRESSION_HARD_THRESHOLD`] limit.
struct RefineBench {
    scale: f64,
    par_threads: usize,
    methods: Vec<RefineMethodBench>,
}

impl RefineBench {
    fn bit_identical(&self) -> bool {
        self.methods.iter().all(|m| m.bit_identical)
    }

    fn to_json(&self) -> String {
        let methods = self
            .methods
            .iter()
            .map(|m| {
                format!(
                    "\n      {{\"name\": \"{}\", \"circuits\": {}, \
                     \"serial_seconds\": {:.6}, \"par_seconds\": {:.6}, \
                     \"speedup\": {:.3}, \"bit_identical\": {}}}",
                    m.name,
                    m.circuits,
                    m.serial_seconds,
                    m.par_seconds,
                    m.speedup(),
                    m.bit_identical
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\n    \"scale\": {},\n    \"par_threads\": {},\n    \
             \"gkl_outer_loops\": {},\n    \"methods\": [{}\n    ]\n  }}",
            self.scale, self.par_threads, REFINE_GKL_OUTER_LOOPS, methods
        )
    }
}

fn refine_bench(scale: f64, circuits: &[(&str, &Problem, &Assignment)], seed: u64) -> RefineBench {
    let mut gfm = RefineMethodBench {
        name: "gfm",
        circuits: circuits.len(),
        serial_seconds: 0.0,
        par_seconds: 0.0,
        bit_identical: true,
    };
    for &(_, problem, witness) in circuits {
        let run = |threads: usize| {
            let t0 = Instant::now();
            let out = GfmSolver::new(GfmConfig {
                threads,
                ..GfmConfig::default()
            })
            .solve(problem, witness)
            .expect("refine_bench gfm solve");
            (t0.elapsed().as_secs_f64(), out)
        };
        let (serial_dt, serial) = run(1);
        let (par_dt, par) = run(REFINE_PAR_THREADS);
        gfm.serial_seconds += serial_dt;
        gfm.par_seconds += par_dt;
        gfm.bit_identical &= serial.cost == par.cost
            && serial.assignment == par.assignment
            && serial.passes == par.passes
            && serial.moves_applied == par.moves_applied;
    }

    let mut ml = RefineMethodBench {
        name: "mlqbp",
        circuits: circuits.len(),
        serial_seconds: 0.0,
        par_seconds: 0.0,
        bit_identical: true,
    };
    for &(_, problem, witness) in circuits {
        let run = |threads: usize| {
            let solver = MlqbpSolver::new(MlqbpConfig {
                qbp: QbpConfig {
                    seed,
                    threads,
                    ..QbpConfig::default()
                },
                ..MlqbpConfig::default()
            });
            let t0 = Instant::now();
            let out = Solver::solve(&solver, problem, Some(witness), &mut NoopObserver)
                .expect("refine_bench mlqbp solve");
            (t0.elapsed().as_secs_f64(), out)
        };
        let (serial_dt, serial) = run(1);
        let (par_dt, par) = run(REFINE_PAR_THREADS);
        ml.serial_seconds += serial_dt;
        ml.par_seconds += par_dt;
        ml.bit_identical &= serial.objective == par.objective
            && serial.assignment == par.assignment
            && serial.iterations == par.iterations;
    }

    // GKL: O(N²) gain tables make the full suite at 4× scale prohibitively
    // slow, so the probe covers the smallest circuit under a reduced
    // outer-loop cap — logged, never silent.
    let &(gkl_name, gkl_problem, gkl_witness) = circuits
        .iter()
        .min_by_key(|(_, p, _)| p.n())
        .expect("refine_bench needs at least one circuit");
    eprintln!(
        "refine_bench: gkl arm limited to {gkl_name} (smallest circuit, {} components) \
         at {REFINE_GKL_OUTER_LOOPS} outer loops",
        gkl_problem.n()
    );
    let mut gkl = RefineMethodBench {
        name: "gkl",
        circuits: 1,
        serial_seconds: 0.0,
        par_seconds: 0.0,
        bit_identical: true,
    };
    {
        let run = |threads: usize| {
            let t0 = Instant::now();
            let out = GklSolver::new(GklConfig {
                threads,
                max_outer_loops: REFINE_GKL_OUTER_LOOPS,
                ..GklConfig::default()
            })
            .solve(gkl_problem, gkl_witness)
            .expect("refine_bench gkl solve");
            (t0.elapsed().as_secs_f64(), out)
        };
        let (serial_dt, serial) = run(1);
        let (par_dt, par) = run(REFINE_PAR_THREADS);
        gkl.serial_seconds += serial_dt;
        gkl.par_seconds += par_dt;
        gkl.bit_identical &= serial.cost == par.cost
            && serial.assignment == par.assignment
            && serial.passes == par.passes
            && serial.moves_applied == par.moves_applied;
    }

    RefineBench {
        scale,
        par_threads: REFINE_PAR_THREADS,
        methods: vec![gfm, gkl, ml],
    }
}

/// Regression check of the `refine_bench` walls against the committed
/// snapshot named by `QBP_BASELINE`: a serial or parallel wall more than
/// [`REFINE_REGRESSION_HARD_THRESHOLD`] slower than the baseline prints a
/// GitHub `::error::` annotation and counts as a hard failure (the caller
/// exits non-zero). Baselines predating the block are skipped silently.
fn diff_refine_against_baseline(baseline_path: &str, fresh: &RefineBench) -> usize {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("refine regression check: baseline {baseline_path} unreadable, skipping");
        return 0;
    };
    let Some(start) = text.find("\"refine_bench\"") else {
        eprintln!("refine regression check: baseline has no refine_bench block, skipping");
        return 0;
    };
    let block = &text[start..];
    let mut hard_failures = 0usize;
    for m in &fresh.methods {
        let pat = format!("\"name\": \"{}\"", m.name);
        let Some(at) = block.find(&pat) else {
            continue;
        };
        let frag = block[at..].split('}').next().unwrap_or("");
        for (key, now) in [
            ("serial_seconds", m.serial_seconds),
            ("par_seconds", m.par_seconds),
        ] {
            let Some(base) = extract_number(frag, key) else {
                continue;
            };
            if base <= 0.0 {
                continue;
            }
            if now > base * (1.0 + REFINE_REGRESSION_HARD_THRESHOLD) {
                let pct = 100.0 * (now / base - 1.0);
                println!(
                    "::error::refine_bench regression: {} {key} slowed {pct:+.1}% \
                     (baseline {base:.6}s, fresh {now:.6}s), past the {:.0}% hard limit",
                    m.name,
                    100.0 * REFINE_REGRESSION_HARD_THRESHOLD
                );
                hard_failures += 1;
            }
        }
    }
    eprintln!(
        "refine regression check vs {baseline_path}: {hard_failures} wall(s) past the \
         {:.0}% hard limit",
        100.0 * REFINE_REGRESSION_HARD_THRESHOLD
    );
    hard_failures
}

/// One circuit's flat-QBP-vs-multilevel comparison row.
struct MlRow {
    name: String,
    components: usize,
    flat_seconds: f64,
    flat_cost: i64,
    flat_feasible: bool,
    ml_seconds: f64,
    ml_cost: i64,
    ml_feasible: bool,
    /// `mlqbp` final cost relative to flat QBP (positive = mlqbp worse).
    cost_delta_pct: f64,
    /// Coarsening levels the V-cycle built (0 = flat fallback).
    levels: u64,
}

/// One suite's aggregate flat-vs-multilevel comparison.
struct MlSuite {
    scale: f64,
    rows: Vec<MlRow>,
    flat_seconds: f64,
    ml_seconds: f64,
    speedup: f64,
    max_cost_delta_pct: f64,
    all_feasible: bool,
}

/// Times flat QBP (one full-budget run) against the multilevel V-cycle on
/// every circuit, both single-threaded and started from the instance's
/// planted feasible witness so the comparison is start-for-start fair.
fn multilevel_suite(
    scale: f64,
    circuits: &[(&str, &Problem, &Assignment)],
    seed: u64,
) -> MlSuite {
    let qbp_config = QbpConfig {
        seed,
        threads: 1,
        ..QbpConfig::default()
    };
    let ml_config = MlqbpConfig {
        qbp: qbp_config,
        ..MlqbpConfig::default()
    };
    let mut rows = Vec::with_capacity(circuits.len());
    for &(name, problem, witness) in circuits {
        let t0 = Instant::now();
        let flat = Solver::solve(
            &QbpSolver::new(qbp_config),
            problem,
            Some(witness),
            &mut NoopObserver,
        )
        .expect("flat qbp solve");
        let flat_seconds = t0.elapsed().as_secs_f64();
        let mut counters = CountersObserver::new();
        let t0 = Instant::now();
        let ml = MlqbpSolver::new(ml_config)
            .solve(problem, Some(witness), &mut counters)
            .expect("mlqbp solve");
        let ml_seconds = t0.elapsed().as_secs_f64();
        let cost_delta_pct = if flat.objective != 0 {
            100.0 * (ml.objective - flat.objective) as f64 / flat.objective as f64
        } else {
            0.0
        };
        rows.push(MlRow {
            name: name.to_string(),
            components: problem.n(),
            flat_seconds,
            flat_cost: flat.objective,
            flat_feasible: flat.feasible,
            ml_seconds,
            ml_cost: ml.objective,
            ml_feasible: ml.feasible,
            cost_delta_pct,
            levels: counters.snapshot().levels_coarsened,
        });
    }
    let flat_seconds: f64 = rows.iter().map(|r| r.flat_seconds).sum();
    let ml_seconds: f64 = rows.iter().map(|r| r.ml_seconds).sum();
    MlSuite {
        scale,
        flat_seconds,
        ml_seconds,
        speedup: flat_seconds / ml_seconds.max(1e-12),
        max_cost_delta_pct: rows
            .iter()
            .map(|r| r.cost_delta_pct)
            .fold(f64::NEG_INFINITY, f64::max),
        all_feasible: rows.iter().all(|r| r.flat_feasible && r.ml_feasible),
        rows,
    }
}

impl MlSuite {
    fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "\n      {{\"circuit\": \"{}\", \"components\": {}, \
                     \"flat_seconds\": {:.6}, \"flat_cost\": {}, \"flat_feasible\": {}, \
                     \"ml_seconds\": {:.6}, \"ml_cost\": {}, \"ml_feasible\": {}, \
                     \"cost_delta_pct\": {:.3}, \"levels\": {}}}",
                    json_escape(&r.name),
                    r.components,
                    r.flat_seconds,
                    r.flat_cost,
                    r.flat_feasible,
                    r.ml_seconds,
                    r.ml_cost,
                    r.ml_feasible,
                    r.cost_delta_pct,
                    r.levels
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"scale\": {}, \"threads_used\": 1, \"flat_seconds\": {:.6}, \
             \"ml_seconds\": {:.6}, \"speedup\": {:.3}, \"max_cost_delta_pct\": {:.3}, \
             \"all_feasible\": {}, \"rows\": [{}\n    ]}}",
            self.scale,
            self.flat_seconds,
            self.ml_seconds,
            self.speedup,
            self.max_cost_delta_pct,
            self.all_feasible,
            rows
        )
    }
}

/// The incremental-re-partitioning benchmark: one seeded ECO edit stream
/// replayed through an [`EcoSession`] (apply + warm re-solve per edit,
/// timed) against cold-solving every mutated problem from scratch with the
/// same config and frozen penalty (timed), plus an *untimed* per-edit audit
/// that the patched `Q̂`/profile state is bit-identical to from-scratch
/// construction ([`EcoSession::state_matches_fresh`]).
struct EcoBench {
    scale: f64,
    edits: usize,
    components: usize,
    warm_seconds: f64,
    cold_seconds: f64,
    /// Every patched state matched fresh construction bit-for-bit (gating).
    state_identical: bool,
    /// Every warm re-solve ended feasible (gating).
    all_feasible: bool,
    rebuilds: u64,
    patched_rows: u64,
    escalations: usize,
    /// Worst warm-vs-cold embedded-value gap, percent of the cold value.
    max_quality_gap_pct: f64,
    /// Edits whose warm value exceeded cold by more than
    /// [`ECO_QUALITY_BUDGET`].
    quality_violations: usize,
    /// Cold reference solves that themselves ended infeasible (excluded
    /// from the quality comparison).
    cold_infeasible: usize,
}

/// Counts warm solves that escalated past the localized pass.
#[derive(Default)]
struct EscalationProbe {
    escalations: usize,
}

impl SolveObserver for EscalationProbe {
    fn on_event(&mut self, event: &qbp_observe::SolveEvent) {
        if matches!(
            event,
            qbp_observe::SolveEvent::WarmSolve {
                escalated: true,
                ..
            }
        ) {
            self.escalations += 1;
        }
    }
}

fn eco_bench(scale: f64, suite_options: &SuiteOptions, seed: u64, edits: usize) -> EcoBench {
    let spec = PAPER_SUITE
        .iter()
        .find(|s| s.name == ECO_CIRCUIT)
        .expect("eco circuit in suite");
    let spec = scaled_spec(spec, scale);
    let (problem, witness) =
        build_instance_with_witness(&spec, suite_options).expect("eco instance");
    let stream = eco_edit_stream(
        &problem,
        &EcoStreamOptions {
            edits,
            seed,
            structural: true,
        },
    );
    let components = problem.n();
    let config = EcoConfig {
        solver: QbpConfig {
            seed,
            threads: 1,
            ..QbpConfig::default()
        },
        ..EcoConfig::default()
    };
    // ECO mode edits an already-accepted placement, so the session must
    // open on a feasible baseline — the warm-feasibility gate below then
    // measures whether the *edits* ever cost us feasibility. Prefer a
    // from-scratch cold solve (the same reference the per-edit quality
    // comparison uses); when the single cold run cannot find feasibility,
    // fall back to the instance's planted witness polished by a full-budget
    // reanchor. All of this setup stays untimed: a batch flow pays it too
    // before its first ECO lands.
    let mut session = EcoSession::with_assignment(problem.clone(), witness, config.clone())
        .expect("eco session");
    let baseline = session.cold_solve().expect("baseline cold solve");
    if baseline.feasible {
        session = EcoSession::with_assignment(problem, baseline.assignment, config)
            .expect("eco session rebase");
    } else {
        let _ = session
            .reanchor(&mut NoopObserver)
            .expect("initial reanchor solve");
    }

    let mut out = EcoBench {
        scale,
        edits: stream.len(),
        components,
        warm_seconds: 0.0,
        cold_seconds: 0.0,
        state_identical: true,
        all_feasible: true,
        rebuilds: 0,
        patched_rows: 0,
        escalations: 0,
        max_quality_gap_pct: f64::NEG_INFINITY,
        quality_violations: 0,
        cold_infeasible: 0,
    };
    let mut probe = EscalationProbe::default();
    for op in &stream {
        let mut delta = NetlistDelta::new();
        delta.push(op.clone());
        let t0 = Instant::now();
        let (apply, solve) = session
            .apply_and_resolve(&delta, &mut probe)
            .expect("eco stream edits validate");
        out.warm_seconds += t0.elapsed().as_secs_f64();
        out.rebuilds += apply.rebuilt as u64;
        out.patched_rows += apply.patched_rows as u64;
        out.all_feasible &= solve.feasible;
        // Untimed audit: the patched state must be bit-identical to
        // from-scratch construction on the mutated problem.
        out.state_identical &= session.state_matches_fresh();
        // The cold reference: the same mutated problem, same config and
        // frozen penalty, solved from scratch.
        let t1 = Instant::now();
        let cold = session.cold_solve().expect("cold reference solve");
        out.cold_seconds += t1.elapsed().as_secs_f64();
        if !cold.feasible {
            out.cold_infeasible += 1;
            continue;
        }
        let warm_value = solve.embedded_value.unwrap_or(solve.objective);
        let gap_pct =
            100.0 * (warm_value - cold.embedded_value) as f64
                / cold.embedded_value.abs().max(1) as f64;
        out.max_quality_gap_pct = out.max_quality_gap_pct.max(gap_pct);
        if gap_pct > 100.0 * ECO_QUALITY_BUDGET {
            out.quality_violations += 1;
        }
    }
    out.escalations = probe.escalations;
    out
}

impl EcoBench {
    fn speedup(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-12)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n    \"circuit\": \"{ECO_CIRCUIT}\",\n    \"scale\": {},\n    \
             \"edits\": {},\n    \"components\": {},\n    \"threads_used\": 1,\n    \
             \"warm_seconds\": {:.6},\n    \"cold_seconds\": {:.6},\n    \
             \"speedup\": {:.3},\n    \"speedup_target\": {ECO_SPEEDUP_TARGET},\n    \
             \"state_identical\": {},\n    \"all_feasible\": {},\n    \
             \"rebuilds\": {},\n    \"patched_rows\": {},\n    \"escalations\": {},\n    \
             \"max_quality_gap_pct\": {:.3},\n    \"quality_budget_pct\": {},\n    \
             \"quality_violations\": {},\n    \"cold_infeasible\": {}\n  }}",
            self.scale,
            self.edits,
            self.components,
            self.warm_seconds,
            self.cold_seconds,
            self.speedup(),
            self.state_identical,
            self.all_feasible,
            self.rebuilds,
            self.patched_rows,
            self.escalations,
            self.max_quality_gap_pct,
            100.0 * ECO_QUALITY_BUDGET,
            self.quality_violations,
            self.cold_infeasible
        )
    }
}

/// Deadline-overshoot and cooperative-check-overhead probe (the `exec`
/// robustness layer's two measurable contracts).
struct RobustnessBench {
    components: usize,
    /// Wall time of the reference solve with no budget (checks on the
    /// single-load fast path).
    unbounded_seconds: f64,
    /// Wall time of the identical solve under a budget that never fires —
    /// the price of live deadline checks at every iteration boundary.
    armed_seconds: f64,
    /// `armed` vs `unbounded`, in percent (contract: ≤ 1%, informational —
    /// both timings sit well inside scheduler noise).
    check_overhead_pct: f64,
    /// The deadline the overshoot probe ran under.
    time_limit_ms: u64,
    /// Wall time of the deadline-bounded solve.
    bounded_seconds: f64,
    /// Time past the deadline before the solver returned (contract: one
    /// cooperative-check interval, i.e. one iteration).
    overshoot_ms: f64,
    /// `ExecStatus` of the bounded solve (gated: must be `timed_out`).
    status: &'static str,
    /// Whether the bounded solve's best-so-far assignment was feasible
    /// (gated: degrading must never cost feasibility on this instance).
    feasible: bool,
}

impl RobustnessBench {
    fn to_json(&self) -> String {
        format!(
            "{{\n    \"circuit\": \"{MULTISTART_CIRCUIT}\",\n    \
             \"components\": {},\n    \"threads_used\": 1,\n    \
             \"unbounded_seconds\": {:.6},\n    \"armed_seconds\": {:.6},\n    \
             \"check_overhead_pct\": {:.3},\n    \"time_limit_ms\": {},\n    \
             \"bounded_seconds\": {:.6},\n    \"overshoot_ms\": {:.3},\n    \
             \"status\": \"{}\",\n    \"feasible\": {}\n  }}",
            self.components,
            self.unbounded_seconds,
            self.armed_seconds,
            self.check_overhead_pct,
            self.time_limit_ms,
            self.bounded_seconds,
            self.overshoot_ms,
            self.status,
            self.feasible
        )
    }
}

fn robustness_bench(problem: &Problem, seed: u64) -> RobustnessBench {
    let solver = QbpSolver::new(QbpConfig {
        seed,
        threads: 1,
        ..QbpConfig::default()
    });
    let time_with = |exec: &ExecCtx| -> f64 {
        (0..OVERHEAD_REPS)
            .map(|_| {
                let mut ws = SolveWorkspace::new();
                let t0 = Instant::now();
                let out = solver
                    .solve_observed_exec(problem, None, &mut ws, exec, &mut NoopObserver)
                    .expect("robustness solve");
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let unbounded_seconds = time_with(&ExecCtx::unbounded());
    // A budget that cannot fire during the snapshot: the checks run live at
    // every iteration boundary, but the solve always completes.
    let armed_seconds = time_with(&ExecCtx::with_budget(Budget::with_time_limit(
        Duration::from_secs(3600),
    )));
    let check_overhead_pct = 100.0 * (armed_seconds / unbounded_seconds.max(1e-12) - 1.0);

    // Deadline overshoot: a limit of a quarter of the natural wall time is
    // guaranteed to expire mid-solve, so the run must wind down TimedOut;
    // the overshoot is how far past the deadline the cooperative check let
    // it drift (at most one iteration).
    let time_limit_ms = ((unbounded_seconds * 1000.0 / 4.0) as u64).clamp(1, 50);
    let exec = ExecCtx::with_budget(Budget::with_time_limit(Duration::from_millis(
        time_limit_ms,
    )));
    let t0 = Instant::now();
    let out = solver
        .solve_observed_exec(problem, None, &mut SolveWorkspace::new(), &exec, &mut NoopObserver)
        .expect("bounded solve");
    let bounded_seconds = t0.elapsed().as_secs_f64();
    let feasible = out.feasible
        && qbp_core::check_feasibility(problem, &out.assignment).is_feasible();
    RobustnessBench {
        components: problem.n(),
        unbounded_seconds,
        armed_seconds,
        check_overhead_pct,
        time_limit_ms,
        bounded_seconds,
        overshoot_ms: (bounded_seconds * 1000.0 - time_limit_ms as f64).max(0.0),
        status: out.status.as_str(),
        feasible,
    }
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1), &[]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut opts = match TableOptions::from_env_and_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if std::env::var("QBP_SCALE").is_err() && args.get("scale").is_none() {
        opts.scale = 0.25;
    }
    let multistart_runs = match args.runs() {
        Ok(1) => MULTISTART_RUNS, // flag absent (or explicitly 1): default
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let out_path =
        std::env::var("QBP_BENCH_OUT").unwrap_or_else(|_| "BENCH_qbp.json".to_string());
    // One hardware probe for the whole snapshot: core detection here, and
    // the same `HostInfo` threaded through the embedded scale ladder, so
    // every block reports (and was configured by) the same numbers.
    let host = HostInfo::detect();
    let threads_available = host.cores;
    let host_json = format!(
        "{{\"cores\": {}, \"ram_mb\": {}}}",
        host.cores,
        host.available_ram
            .map_or("null".to_string(), |b| (b >> 20).to_string())
    );
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };

    eprintln!(
        "perf_snapshot: scale {}, seed {}, {} core(s)",
        opts.scale, opts.seed, threads_available
    );

    // Suite timings: every circuit (and within it, every method) runs
    // concurrently, exactly like the table binaries. Counters ride along in
    // each MethodResult.
    let instances: Vec<_> = PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, opts.scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &suite_options).expect("suite construction");
            (spec, problem, witness)
        })
        .collect();
    let circuits: Vec<_> = instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, Some(witness)))
        .collect();
    let methods = default_methods_with_threads(opts.threads);
    // One circuit worker per instance, each fanning out one worker per
    // method (see `run_rows`); the OS multiplexes them over the host cores.
    let suite_threads_used = threads_available.min(instances.len() * methods.len());
    let suite_t0 = Instant::now();
    let rows = run_rows(&circuits, &methods, opts.seed).expect("suite rows");
    let suite_seconds = suite_t0.elapsed().as_secs_f64();
    let qbp_totals = aggregate_counters(&rows, "QBP");
    // The profile-sync contract: with the profile patched forward every
    // iteration, the O(moved·deg) patch path must dominate full rebuilds
    // across the suite (one unavoidable rebuild per solve seeds the
    // profile).
    let profile_sync_effective = qbp_totals.profile_patches > qbp_totals.profile_rebuilds;
    eprintln!(
        "qbp phase totals: {} η patches / {} full recomputes \
         ({} profile rebuilds / {} profile patches), {} GAP calls, {} repairs",
        qbp_totals.eta_incremental,
        qbp_totals.eta_full,
        qbp_totals.profile_rebuilds,
        qbp_totals.profile_patches,
        qbp_totals.gap_calls,
        qbp_totals.repairs
    );

    // Kernel benchmark: old-vs-new η and gain kernels, small and full scale.
    let kernels: Vec<KernelBench> = KERNEL_SCALES
        .iter()
        .map(|&scale| {
            let kb = kernel_bench(scale, &suite_options);
            eprintln!(
                "kernel_bench (scale {scale}): η nested {:.4}s / csr {:.4}s / profiled {:.4}s \
                 ({:.2}x vs nested), move gains {:.4}s → {:.4}s, swap gains {:.4}s → {:.4}s",
                kb.eta_nested_seconds,
                kb.eta_csr_seconds,
                kb.eta_profiled_seconds,
                kb.eta_speedup_vs_nested(),
                kb.move_gains_walk_seconds,
                kb.move_gains_profiled_seconds,
                kb.swap_gains_walk_seconds,
                kb.swap_gains_profiled_seconds,
            );
            kb
        })
        .collect();
    let kernels_matched = kernels.iter().all(|kb| kb.matched);
    let eta_hard_failures = match std::env::var("QBP_BASELINE") {
        Ok(baseline) => diff_against_baseline(&baseline, &kernels),
        Err(_) => 0,
    };

    // Multilevel V-cycle vs flat QBP: at the default snapshot scale of 0.25
    // the factors below land exactly on the comparison the docs quote — the
    // paper suite at full size (scale 1.0) and a synthetic suite at 4× the
    // paper's circuit sizes, where coarsening pays most.  Scaled-down smoke
    // runs shrink both proportionally.
    let ml_paper_scale = opts.scale * ML_PAPER_FACTOR;
    let ml_paper_instances: Vec<_> = PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, ml_paper_scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &suite_options).expect("ml paper suite");
            (spec, problem, witness)
        })
        .collect();
    let ml_paper_circuits: Vec<_> = ml_paper_instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, witness))
        .collect();
    let ml_paper = multilevel_suite(ml_paper_scale, &ml_paper_circuits, opts.seed);
    eprintln!(
        "multilevel (paper suite, scale {}): flat {:.3}s vs mlqbp {:.3}s \
         ({:.2}x), max cost delta {:+.2}%, all feasible {}",
        ml_paper_scale,
        ml_paper.flat_seconds,
        ml_paper.ml_seconds,
        ml_paper.speedup,
        ml_paper.max_cost_delta_pct,
        ml_paper.all_feasible
    );
    let ml_synth_scale = opts.scale * ML_SYNTHETIC_FACTOR;
    let synth_instances: Vec<_> = PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, ml_synth_scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &suite_options).expect("synthetic suite");
            (spec, problem, witness)
        })
        .collect();
    let ml_synth_circuits: Vec<_> = synth_instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, witness))
        .collect();
    let ml_synth = multilevel_suite(ml_synth_scale, &ml_synth_circuits, opts.seed);
    eprintln!(
        "multilevel (synthetic suite, scale {}): flat {:.3}s vs mlqbp {:.3}s \
         ({:.2}x), max cost delta {:+.2}%, all feasible {}",
        ml_synth_scale,
        ml_synth.flat_seconds,
        ml_synth.ml_seconds,
        ml_synth.speedup,
        ml_synth.max_cost_delta_pct,
        ml_synth.all_feasible
    );

    // Parallel-refinement benchmark on the same 4× synthetic suite: full
    // GFM/GKL/mlqbp solves serial vs 4-thread, bit-identity gated, walls
    // diffed against the committed baseline with a 25% hard limit.
    let refine = refine_bench(ml_synth_scale, &ml_synth_circuits, opts.seed);
    for m in &refine.methods {
        eprintln!(
            "refine_bench ({}, scale {}, {} circuit(s)): serial {:.3}s vs \
             {}-thread {:.3}s ({:.2}x), bit_identical {}",
            m.name,
            refine.scale,
            m.circuits,
            m.serial_seconds,
            refine.par_threads,
            m.par_seconds,
            m.speedup(),
            m.bit_identical
        );
    }
    let refine_hard_failures = match std::env::var("QBP_BASELINE") {
        Ok(baseline) => diff_refine_against_baseline(&baseline, &refine),
        Err(_) => 0,
    };

    // ECO benchmark: a seeded 1000-edit stream warm-solved in place vs the
    // same 1000 mutated problems cold-solved from scratch, with a per-edit
    // bit-identity audit of the patched state (untimed).
    let eco_edits = std::env::var("QBP_ECO_EDITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(ECO_EDITS);
    let eco = eco_bench(opts.scale, &suite_options, opts.seed, eco_edits);
    eprintln!(
        "eco_bench ({ECO_CIRCUIT}, {} edits): warm {:.3}s vs cold {:.3}s ({:.1}x), \
         state_identical {}, all_feasible {}, {} rebuilds, {} escalations, \
         max quality gap {:+.2}%, {} cold reference(s) infeasible",
        eco.edits,
        eco.warm_seconds,
        eco.cold_seconds,
        eco.speedup(),
        eco.state_identical,
        eco.all_feasible,
        eco.rebuilds,
        eco.escalations,
        eco.max_quality_gap_pct,
        eco.cold_infeasible
    );
    if eco.speedup() < ECO_SPEEDUP_TARGET {
        println!(
            "::warning::eco_bench speedup {:.1}x below the {ECO_SPEEDUP_TARGET}x target",
            eco.speedup()
        );
    }
    if eco.quality_violations > 0 {
        println!(
            "::warning::eco_bench: {} warm solve(s) drifted past the {:.0}% \
             quality budget (max gap {:+.2}%)",
            eco.quality_violations,
            100.0 * ECO_QUALITY_BUDGET,
            eco.max_quality_gap_pct
        );
    }

    let (_, problem, witness) = instances
        .iter()
        .find(|(spec, _, _)| spec.name == MULTISTART_CIRCUIT)
        .expect("multistart circuit in suite");

    // Thread scaling: the η batch kernel and one full QBP solve at 1/2/4
    // threads; thread counts beyond the host's cores still fan out (the
    // determinism contract is exercised either way, the speedup just
    // flattens). On a single-core host every count exercises the same serial
    // path, so the probe is skipped with an explicit marker — downstream
    // tooling sees `"skipped": "single_core"` instead of a missing block —
    // and its determinism gate is vacuously satisfied.
    let scaling_json;
    let mut scaling_bit_identical = true;
    if threads_available == 1 {
        eprintln!("thread_scaling ({MULTISTART_CIRCUIT}): skipped (single core)");
        scaling_json = format!(
            "{{\n    \"circuit\": \"{MULTISTART_CIRCUIT}\",\n    \
             \"skipped\": \"single_core\"\n  }}"
        );
    } else {
        let scaling = thread_scaling(problem, witness, opts.seed);
        eprintln!(
            "thread_scaling ({MULTISTART_CIRCUIT}): η {:.4}s → {:.4}s at 4 threads \
             ({:.2}x), solve {:.3}s → {:.3}s ({:.2}x), bit_identical {}",
            scaling.eta_seconds[0],
            scaling.eta_seconds[2],
            scaling.eta_seconds[0] / scaling.eta_seconds[2].max(1e-12),
            scaling.solve_seconds[0],
            scaling.solve_seconds[2],
            scaling.solve_seconds[0] / scaling.solve_seconds[2].max(1e-12),
            scaling.bit_identical
        );
        scaling_bit_identical = scaling.bit_identical;
        scaling_json = scaling.to_json();
    }

    // Multistart speedup: the same restarts serially (threads = 1) and in
    // parallel (threads = 0 → all cores); the winners must be bit-identical.
    // On a single-core box both runs would exercise the same serial path, so
    // the whole pair is skipped instead of burning two timed solves on a
    // ratio that is pure noise.
    let solver_for = |threads: usize| {
        QbpSolver::new(QbpConfig {
            seed: opts.seed,
            threads,
            ..QbpConfig::default()
        })
    };
    let multistart_json;
    let mut bit_identical = true;
    if threads_available == 1 {
        eprintln!(
            "multistart ({MULTISTART_CIRCUIT}, {multistart_runs} runs): \
             skipped (single core)"
        );
        multistart_json = format!(
            "{{\n    \"circuit\": \"{MULTISTART_CIRCUIT}\",\n    \
             \"runs\": {multistart_runs},\n    \"skipped\": \"single_core\"\n  }}"
        );
    } else {
        let serial_threads_used = 1usize;
        let parallel_threads_used = threads_available.min(multistart_runs.max(1));
        let t0 = Instant::now();
        let serial = solver_for(1)
            .solve_multistart(problem, None, multistart_runs)
            .expect("serial multistart");
        let serial_seconds = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let parallel = solver_for(0)
            .solve_multistart(problem, None, multistart_runs)
            .expect("parallel multistart");
        let parallel_seconds = t0.elapsed().as_secs_f64();
        bit_identical = serial.assignment == parallel.assignment
            && serial.embedded_value == parallel.embedded_value
            && serial.objective == parallel.objective
            && serial.feasible == parallel.feasible
            && serial.iterations == parallel.iterations;
        let speedup = serial_seconds / parallel_seconds.max(1e-12);
        eprintln!(
            "multistart ({MULTISTART_CIRCUIT}, {multistart_runs} runs): \
             serial {serial_seconds:.3}s, parallel {parallel_seconds:.3}s \
             ({parallel_threads_used} thread(s)), speedup {speedup:.2}x, \
             bit_identical {bit_identical}"
        );
        multistart_json = format!(
            "{{\n    \"circuit\": \"{MULTISTART_CIRCUIT}\",\n    \
             \"runs\": {multistart_runs},\n    \"serial_seconds\": {serial_seconds:.6},\n    \
             \"serial_threads_used\": {serial_threads_used},\n    \
             \"parallel_seconds\": {parallel_seconds:.6},\n    \
             \"parallel_threads_used\": {parallel_threads_used},\n    \
             \"speedup\": {speedup:.3},\n    \"bit_identical\": {bit_identical}\n  }}"
        );
    }

    // Observer overhead: the identical solve with a no-op observer and with
    // live counters; the event layer's contract is that watching costs
    // (almost) nothing. Best-of-N to suppress scheduler noise.
    let solver = solver_for(1);
    let time_with = |obs: &mut dyn SolveObserver| -> f64 {
        (0..OVERHEAD_REPS)
            .map(|_| {
                let mut ws = SolveWorkspace::new();
                let t0 = Instant::now();
                let out = solver
                    .solve_observed(problem, None, &mut ws, obs)
                    .expect("overhead solve");
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let noop_seconds = time_with(&mut NoopObserver);
    let mut counters = CountersObserver::new();
    let counters_seconds = time_with(&mut counters);
    let overhead_pct = 100.0 * (counters_seconds / noop_seconds.max(1e-12) - 1.0);
    eprintln!(
        "observer overhead ({MULTISTART_CIRCUIT}): noop {noop_seconds:.4}s, \
         counters {counters_seconds:.4}s ({overhead_pct:+.2}%)"
    );
    if overhead_pct > 2.0 {
        eprintln!("warning: counters overhead above the 2% budget (informational)");
    }

    // Robustness layer: deadline overshoot and cooperative-check overhead
    // on the same representative circuit. Status and feasibility are gated
    // below; the timings are informational.
    let robustness = robustness_bench(problem, opts.seed);
    eprintln!(
        "robustness_bench ({MULTISTART_CIRCUIT}): checks {:+.2}% over unbounded \
         ({:.4}s vs {:.4}s), deadline {}ms → returned in {:.4}s \
         (overshoot {:.1}ms), status {}, feasible {}",
        robustness.check_overhead_pct,
        robustness.armed_seconds,
        robustness.unbounded_seconds,
        robustness.time_limit_ms,
        robustness.bounded_seconds,
        robustness.overshoot_ms,
        robustness.status,
        robustness.feasible
    );
    if robustness.check_overhead_pct > 1.0 {
        println!(
            "::warning::robustness_bench: cooperative checks cost {:+.2}%, above \
             the 1% budget",
            robustness.check_overhead_pct
        );
    }

    // Scale ladder: clustered instances at N ∈ {10³, 10⁴, 10⁵} (10⁶ behind
    // QBP_SCALE_FULL=1, one size via QBP_SCALE_N), multilevel vs flat at
    // every size plus the compact-vs-nested layout audit. Informational —
    // feasibility is gated by the standalone `scale_bench` binary, not here.
    let scale_opts = qbp_bench::scale::ScaleOptions::from_env();
    let scale_points = qbp_bench::scale::run_scale_bench(&scale_opts, &host);
    let scale_bench_json = qbp_bench::scale::scale_json(scale_opts.seed, &host, &scale_points)
        .replace('\n', "\n  ");

    let kernel_bench_json = kernels
        .iter()
        .map(|kb| format!("\n    {}", kb.to_json()))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads_available\": {},\n  \
         \"host\": {},\n  \
         \"suite_wall_seconds\": {:.6},\n  \"suite_threads_used\": {},\n  \"tables\": {},\n  \
         \"qbp_counter_totals\": {},\n  \"profile_sync_effective\": {},\n  \
         \"kernel_bench\": [{}\n  ],\n  \
         \"multilevel\": {{\n    \"paper_suite\": {},\n    \"synthetic_suite\": {}\n  }},\n  \
         \"refine_bench\": {},\n  \
         \"eco_bench\": {},\n  \
         \"thread_scaling\": {},\n  \
         \"multistart\": {},\n  \
         \"scale_bench\": {},\n  \
         \"robustness_bench\": {},\n  \
         \"observer_overhead\": {{\n    \"circuit\": \"{}\",\n    \"reps\": {},\n    \
         \"threads_used\": 1,\n    \
         \"noop_seconds\": {:.6},\n    \"counters_seconds\": {:.6},\n    \
         \"overhead_pct\": {:.3}\n  }}\n}}\n",
        opts.scale,
        opts.seed,
        threads_available,
        host_json,
        suite_seconds,
        suite_threads_used,
        rows_json(&rows),
        qbp_totals.to_json(),
        profile_sync_effective,
        kernel_bench_json,
        ml_paper.to_json(),
        ml_synth.to_json(),
        refine.to_json(),
        eco.to_json(),
        scaling_json,
        multistart_json,
        scale_bench_json,
        robustness.to_json(),
        MULTISTART_CIRCUIT,
        OVERHEAD_REPS,
        noop_seconds,
        counters_seconds,
        overhead_pct
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("perf_snapshot: wrote {out_path}");

    // Standalone thread-scaling artifact (`BENCH_threads.json`,
    // `QBP_THREADS_OUT` overrides): the thread-scaling probe and the gating
    // refine_bench block on their own, so CI can upload and trend the
    // parallel-refinement numbers without dragging the full snapshot along.
    let threads_out_path =
        std::env::var("QBP_THREADS_OUT").unwrap_or_else(|_| "BENCH_threads.json".to_string());
    let threads_json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads_available\": {},\n  \
         \"host\": {},\n  \"thread_scaling\": {},\n  \"refine_bench\": {}\n}}\n",
        opts.scale, opts.seed, threads_available, host_json, scaling_json, refine.to_json()
    );
    std::fs::write(&threads_out_path, &threads_json).expect("write thread-scaling artifact");
    eprintln!("perf_snapshot: wrote {threads_out_path}");

    if !bit_identical {
        eprintln!("error: parallel multistart diverged from serial (determinism bug)");
        std::process::exit(1);
    }
    if !scaling_bit_identical {
        eprintln!("error: thread-scaling runs diverged across thread counts (determinism bug)");
        std::process::exit(1);
    }
    if !refine.bit_identical() {
        eprintln!(
            "error: a refine_bench parallel solve diverged from its serial twin \
             (speculative-batch determinism bug)"
        );
        std::process::exit(1);
    }
    if refine_hard_failures > 0 {
        eprintln!(
            "error: {refine_hard_failures} refine_bench wall(s) regressed past the \
             {:.0}% hard limit",
            100.0 * REFINE_REGRESSION_HARD_THRESHOLD
        );
        std::process::exit(1);
    }
    if !kernels_matched {
        eprintln!("error: a profiled kernel diverged from its explicit-walk twin (correctness bug)");
        std::process::exit(1);
    }
    if robustness.status != "timed_out" {
        eprintln!(
            "error: robustness_bench deadline did not wind the solve down \
             (status {}, limit {}ms)",
            robustness.status, robustness.time_limit_ms
        );
        std::process::exit(1);
    }
    if !robustness.feasible {
        eprintln!("error: robustness_bench deadline degraded to an infeasible assignment");
        std::process::exit(1);
    }
    if !eco.state_identical {
        eprintln!(
            "error: an ECO delta left the patched Q̂/profile state diverged from \
             from-scratch construction (state-equivalence bug)"
        );
        std::process::exit(1);
    }
    if !eco.all_feasible {
        eprintln!("error: an ECO warm re-solve ended infeasible on a feasibility-preserving stream");
        std::process::exit(1);
    }
    if !profile_sync_effective {
        eprintln!(
            "error: profile patches ({}) did not exceed rebuilds ({}) on suite totals — \
             the per-iteration profile sync is not taking the patch path",
            qbp_totals.profile_patches, qbp_totals.profile_rebuilds
        );
        std::process::exit(1);
    }
    if eta_hard_failures > 0 {
        eprintln!(
            "error: {eta_hard_failures} gated kernel(s) regressed past the {:.0}% hard limit",
            100.0 * ETA_REGRESSION_HARD_THRESHOLD
        );
        std::process::exit(1);
    }
}
