//! Performance snapshot: runs the scaled paper suite once, times each
//! method, measures the serial-vs-parallel multistart speedup and the
//! observability layer's overhead on one representative circuit, and writes
//! everything (including per-method event counters) to `BENCH_qbp.json`.
//!
//! Usage: `QBP_SCALE=0.25 cargo run -p qbp-bench --release --bin perf_snapshot`
//! (or `--bin perf_snapshot -- --scale 0.25 --seed 7 --runs 8`; flags beat
//! environment variables).
//!
//! Environment:
//! * `QBP_SCALE` — instance scale (this binary defaults to 0.25, not 1.0).
//! * `QBP_SEED` — base seed (default 1993).
//! * `QBP_BENCH_OUT` — output path (default `BENCH_qbp.json`).
//!
//! The snapshot is informational (CI runs it non-gating), but the binary
//! does exit non-zero if the parallel multistart diverges from the serial
//! one — that would be a determinism bug, not a performance regression.

use qbp_bench::{default_methods, run_rows, CircuitRow, TableOptions};
use qbp_cli::args::Args;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_observe::{CounterSnapshot, CountersObserver, NoopObserver, SolveObserver};
use qbp_solver::{QbpConfig, QbpSolver, SolveWorkspace};
use std::time::Instant;

/// Default multistart restarts benchmarked below (`--runs` overrides).
const MULTISTART_RUNS: usize = 8;
/// Circuit used for the multistart-speedup and observer-overhead
/// measurements (mid-sized so the snapshot stays quick while each run is
/// long enough to amortize spawn cost).
const MULTISTART_CIRCUIT: &str = "cktd";
/// Repetitions per observer-overhead timing; the minimum is reported.
const OVERHEAD_REPS: usize = 3;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_json(rows: &[CircuitRow]) -> String {
    let mut out = String::from("[");
    for (ri, row) in rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"circuit\": \"{}\", \"start_cost\": {}, \"methods\": [",
            json_escape(&row.name),
            row.start_cost
        ));
        for (mi, r) in row.results.iter().enumerate() {
            if mi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"final_cost\": {}, \"improvement_pct\": {:.3}, \
                 \"cpu_seconds\": {:.6}, \"feasible\": {}, \"counters\": {}}}",
                r.name,
                r.final_cost,
                r.improvement_pct,
                r.cpu_seconds,
                r.feasible,
                r.counters.to_json()
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]");
    out
}

/// Sums one method's counters across all circuits of the suite — the
/// per-phase totals (η incremental vs. full, GAP calls, repairs, …) the
/// snapshot surfaces at top level.
fn aggregate_counters(rows: &[CircuitRow], method: &str) -> CounterSnapshot {
    let mut total = CounterSnapshot::default();
    for r in rows.iter().flat_map(|row| &row.results) {
        if r.name != method {
            continue;
        }
        let c = &r.counters;
        total.solves += c.solves;
        total.iterations += c.iterations;
        total.eta_full += c.eta_full;
        total.eta_incremental += c.eta_incremental;
        total.gap_calls += c.gap_calls;
        total.lap_calls += c.lap_calls;
        total.infeasible_subproblems += c.infeasible_subproblems;
        total.penalty_hits += c.penalty_hits;
        total.repairs += c.repairs;
        total.repairs_cleaned += c.repairs_cleaned;
        total.stall_resets += c.stall_resets;
        total.moves_accepted += c.moves_accepted;
        total.moves_rejected += c.moves_rejected;
        total.improvements += c.improvements;
        total.runs += c.runs;
    }
    total
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1), &[]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut opts = match TableOptions::from_env_and_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if std::env::var("QBP_SCALE").is_err() && args.get("scale").is_none() {
        opts.scale = 0.25;
    }
    let multistart_runs = match args.runs() {
        Ok(1) => MULTISTART_RUNS, // flag absent (or explicitly 1): default
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let out_path =
        std::env::var("QBP_BENCH_OUT").unwrap_or_else(|_| "BENCH_qbp.json".to_string());
    let threads_available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };

    eprintln!(
        "perf_snapshot: scale {}, seed {}, {} core(s)",
        opts.scale, opts.seed, threads_available
    );

    // Suite timings: every circuit (and within it, every method) runs
    // concurrently, exactly like the table binaries. Counters ride along in
    // each MethodResult.
    let instances: Vec<_> = PAPER_SUITE
        .iter()
        .map(|spec| {
            let spec = scaled_spec(spec, opts.scale);
            let (problem, witness) =
                build_instance_with_witness(&spec, &suite_options).expect("suite construction");
            (spec, problem, witness)
        })
        .collect();
    let circuits: Vec<_> = instances
        .iter()
        .map(|(spec, problem, witness)| (spec.name, problem, Some(witness)))
        .collect();
    let methods = default_methods();
    let suite_t0 = Instant::now();
    let rows = run_rows(&circuits, &methods, opts.seed).expect("suite rows");
    let suite_seconds = suite_t0.elapsed().as_secs_f64();
    let qbp_totals = aggregate_counters(&rows, "QBP");
    eprintln!(
        "qbp phase totals: {} η patches / {} full recomputes, {} GAP calls, {} repairs",
        qbp_totals.eta_incremental, qbp_totals.eta_full, qbp_totals.gap_calls, qbp_totals.repairs
    );

    // Multistart speedup: the same restarts serially (threads = 1) and in
    // parallel (threads = 0 → all cores); the winners must be bit-identical.
    let (_, problem, _) = instances
        .iter()
        .find(|(spec, _, _)| spec.name == MULTISTART_CIRCUIT)
        .expect("multistart circuit in suite");
    let solver_for = |threads: usize| {
        QbpSolver::new(QbpConfig {
            seed: opts.seed,
            threads,
            ..QbpConfig::default()
        })
    };
    let t0 = Instant::now();
    let serial = solver_for(1)
        .solve_multistart(problem, None, multistart_runs)
        .expect("serial multistart");
    let serial_seconds = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = solver_for(0)
        .solve_multistart(problem, None, multistart_runs)
        .expect("parallel multistart");
    let parallel_seconds = t0.elapsed().as_secs_f64();
    let bit_identical = serial.assignment == parallel.assignment
        && serial.embedded_value == parallel.embedded_value
        && serial.objective == parallel.objective
        && serial.feasible == parallel.feasible
        && serial.iterations == parallel.iterations;
    let speedup = serial_seconds / parallel_seconds.max(1e-12);
    eprintln!(
        "multistart ({MULTISTART_CIRCUIT}, {multistart_runs} runs): \
         serial {serial_seconds:.3}s, parallel {parallel_seconds:.3}s, \
         speedup {speedup:.2}x, bit_identical {bit_identical}"
    );

    // Observer overhead: the identical solve with a no-op observer and with
    // live counters; the event layer's contract is that watching costs
    // (almost) nothing. Best-of-N to suppress scheduler noise.
    let solver = solver_for(1);
    let time_with = |obs: &mut dyn SolveObserver| -> f64 {
        (0..OVERHEAD_REPS)
            .map(|_| {
                let mut ws = SolveWorkspace::new();
                let t0 = Instant::now();
                let out = solver
                    .solve_observed(problem, None, &mut ws, obs)
                    .expect("overhead solve");
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(out);
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let noop_seconds = time_with(&mut NoopObserver);
    let mut counters = CountersObserver::new();
    let counters_seconds = time_with(&mut counters);
    let overhead_pct = 100.0 * (counters_seconds / noop_seconds.max(1e-12) - 1.0);
    eprintln!(
        "observer overhead ({MULTISTART_CIRCUIT}): noop {noop_seconds:.4}s, \
         counters {counters_seconds:.4}s ({overhead_pct:+.2}%)"
    );
    if overhead_pct > 2.0 {
        eprintln!("warning: counters overhead above the 2% budget (informational)");
    }

    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads_available\": {},\n  \
         \"suite_wall_seconds\": {:.6},\n  \"tables\": {},\n  \
         \"qbp_counter_totals\": {},\n  \"multistart\": {{\n    \
         \"circuit\": \"{}\",\n    \"runs\": {},\n    \"serial_seconds\": {:.6},\n    \
         \"parallel_seconds\": {:.6},\n    \"speedup\": {:.3},\n    \"bit_identical\": {}\n  }},\n  \
         \"observer_overhead\": {{\n    \"circuit\": \"{}\",\n    \"reps\": {},\n    \
         \"noop_seconds\": {:.6},\n    \"counters_seconds\": {:.6},\n    \
         \"overhead_pct\": {:.3}\n  }}\n}}\n",
        opts.scale,
        opts.seed,
        threads_available,
        suite_seconds,
        rows_json(&rows),
        qbp_totals.to_json(),
        MULTISTART_CIRCUIT,
        multistart_runs,
        serial_seconds,
        parallel_seconds,
        speedup,
        bit_identical,
        MULTISTART_CIRCUIT,
        OVERHEAD_REPS,
        noop_seconds,
        counters_seconds,
        overhead_pct
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("perf_snapshot: wrote {out_path}");

    if !bit_identical {
        eprintln!("error: parallel multistart diverged from serial (determinism bug)");
        std::process::exit(1);
    }
}
