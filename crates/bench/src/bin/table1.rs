//! TABLE-I: regenerates the paper's circuit-description table from the
//! synthetic suite, so the reader can verify the instances match the
//! published statistics.
//!
//! Usage: `cargo run -p qbp-bench --release --bin table1`
//! (set `QBP_SCALE=0.25` to shrink the instances proportionally).

use qbp_bench::TableOptions;
use qbp_gen::{build_instance, scaled_spec, SuiteOptions, PAPER_SUITE};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    println!("I. circuit descriptions (generated at scale {}):", opts.scale);
    println!(
        "{:<8}{:>16}{:>12}{:>26}",
        "ckt", "# of components", "# of wires", "# of Timing Constraints"
    );
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let problem = build_instance(&spec, &suite_options).expect("suite construction");
        println!(
            "{:<8}{:>16}{:>12}{:>26}",
            spec.name,
            problem.n(),
            problem.circuit().total_wire_weight() / 2,
            problem.timing().len()
        );
    }
}
