//! Extension study: QBP vs. a period-appropriate simulated-annealing
//! comparator on the suite (not in the paper; annealing was the dominant
//! alternative at the time and anchors the QBP results against a
//! general-purpose stochastic method given a comparable move set).
//!
//! Usage: `cargo run -p qbp-bench --release --bin ablation_anneal`

use qbp_bench::{initial_solution, TableOptions};
use qbp_core::Evaluator;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{AnnealConfig, AnnealSolver, QbpConfig, QbpSolver};
use std::time::Instant;

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    println!(
        "{:<10}{:>10}{:>10}{:>9}{:>10}{:>9}",
        "circuits", "start", "QBP", "cpu", "SA", "cpu"
    );
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        let initial =
            initial_solution(&problem, opts.seed, Some(&witness)).expect("feasible start");
        let start = Evaluator::new(&problem).cost(&initial);

        let t0 = Instant::now();
        let qbp = QbpSolver::new(QbpConfig::default())
            .solve(&problem, Some(&initial))
            .expect("qbp");
        let qbp_cpu = t0.elapsed().as_secs_f64();
        let qbp_cost = if qbp.feasible { qbp.objective.min(start) } else { start };

        let t0 = Instant::now();
        let sa = AnnealSolver::new(AnnealConfig::default())
            .solve(&problem, Some(&initial))
            .expect("sa");
        let sa_cpu = t0.elapsed().as_secs_f64();
        let sa_cost = if sa.feasible { sa.objective.min(start) } else { start };

        println!(
            "{:<10}{:>10}{:>10}{:>9.2}{:>10}{:>9.2}",
            spec.name, start, qbp_cost, qbp_cpu, sa_cost, sa_cpu
        );
    }
}
