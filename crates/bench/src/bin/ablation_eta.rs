//! ABL-ETA: the paper's eq. (3) includes an `ω_s·u_s` term that the STEP-3
//! pseudocode omits. Both are implemented; this sweep compares them.
//!
//! Usage: `cargo run -p qbp-bench --release --bin ablation_eta`

use qbp_bench::{initial_solution, TableOptions};
use qbp_core::Evaluator;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_solver::{EtaMode, QbpConfig, QbpSolver};

fn main() {
    let opts = TableOptions::from_env();
    let suite_options = SuiteOptions {
        seed: opts.seed,
        ..SuiteOptions::default()
    };
    println!(
        "{:<10}{:>10}{:>14}{:>14}",
        "circuits", "start", "pseudocode", "balas-mazzola"
    );
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, opts.scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &suite_options).expect("suite construction");
        let initial =
            initial_solution(&problem, opts.seed, Some(&witness)).expect("feasible start");
        let start = Evaluator::new(&problem).cost(&initial);
        print!("{:<10}{:>10}", spec.name, start);
        for mode in [EtaMode::Pseudocode, EtaMode::BalasMazzola] {
            let out = QbpSolver::new(QbpConfig {
                eta_mode: mode,
                ..QbpConfig::default()
            })
            .solve(&problem, Some(&initial))
            .expect("solve");
            let cost = if out.feasible { out.objective.min(start) } else { start };
            print!("{:>14}", cost);
        }
        println!();
    }
}
