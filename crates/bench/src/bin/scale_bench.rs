//! `scale_bench` — the million-component scale ladder as a standalone
//! binary: cost / wall / peak-RSS at N ∈ {10³, 10⁴, 10⁵} (10⁶ behind
//! `QBP_SCALE_FULL=1`; one size via `QBP_SCALE_N=<n>`), multilevel vs flat
//! at every size, plus the compact-vs-nested layout audit.
//!
//! Progress goes to stderr; the `scale_bench` JSON block goes to the path
//! in `QBP_SCALE_OUT` (default `BENCH_scale.json`), matching the block
//! `perf_snapshot` embeds in `BENCH_qbp.json`. With `QBP_BASELINE` set to a
//! committed snapshot, >25% regressions in multilevel wall or peak RSS emit
//! GitHub `::warning::` annotations (informational — the only gating check
//! here is multilevel feasibility at every size).

use qbp_bench::scale::{run_scale_bench, scale_json, warn_regressions, ScaleOptions};
use qbp_core::hw::HostInfo;

fn main() {
    let opts = ScaleOptions::from_env();
    // One hardware probe configures the whole run and the JSON header.
    let host = HostInfo::detect();
    eprintln!(
        "scale_bench: sizes {:?}, seed {:#x}, {} core(s)",
        opts.sizes, opts.seed, host.cores
    );
    let points = run_scale_bench(&opts, &host);
    let json = scale_json(opts.seed, &host, &points);
    let out_path =
        std::env::var("QBP_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&out_path, format!("{json}\n")).expect("write scale bench");
    eprintln!("scale_bench: wrote {out_path}");

    // Against QBP_BASELINE (a committed BENCH_qbp.json or a prior scale
    // run): annotate — never fail — when multilevel wall or peak RSS grew
    // more than 25% at a size the baseline carries.
    if let Ok(baseline_path) = std::env::var("QBP_BASELINE") {
        match std::fs::read_to_string(&baseline_path) {
            Ok(baseline) => {
                let warnings = warn_regressions(&baseline, &points);
                eprintln!(
                    "scale_bench: {warnings} regression warning(s) vs {baseline_path}"
                );
            }
            Err(e) => eprintln!("scale_bench: cannot read QBP_BASELINE {baseline_path}: {e}"),
        }
    }

    let infeasible = points.iter().filter(|p| !p.ml_feasible).count();
    if infeasible > 0 {
        eprintln!("error: {infeasible} mlqbp scale point(s) ended infeasible");
        std::process::exit(1);
    }
}
