//! Static-timing substrate: derives the paper's pairwise maximum-routing-
//! delay constraints `D_C(j1, j2)` from a cycle time, the way §2 describes —
//! "driven by system cycle time and ... derived from the delay equations and
//! intrinsic delay in combinational circuit components".
//!
//! The substrate is a classical block-level STA:
//!
//! 1. model the inter-register combinational logic as a DAG of components
//!    with intrinsic delays ([`CombinationalDag`], built via
//!    [`TimingGraphBuilder`]);
//! 2. compute arrival/required times and slacks by longest-path analysis
//!    ([`StaReport::zero_routing`]);
//! 3. allocate each signal's share of the path slack as a *routing budget*
//!    on the DAG edge ([`SlackBudgeter`]) — either the optimistic per-edge
//!    slack window, or a safe zero-slack-style distribution whose budgets
//!    can never overshoot the cycle time;
//! 4. emit the budgets as
//!    [`TimingConstraints`](qbp_core::TimingConstraints) in the delay units
//!    of the partition topology's `D` matrix.
//!
//! Sequential systems with feedback loops are handled by
//! [`SequentialGraphBuilder`], which splits registers into launch/capture
//! pseudo-nodes so that register-bounded paths become the analyzed DAG.
//!
//! # Example
//!
//! ```
//! use qbp_timing::{TimingGraphBuilder, SlackBudgeter, BudgetPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // in(1) → mid(2) → out(1), cycle time 8 → path slack 4.
//! let dag = TimingGraphBuilder::new(3)
//!     .delay(0, 1)?
//!     .delay(1, 2)?
//!     .delay(2, 1)?
//!     .edge(0, 1)?
//!     .edge(1, 2)?
//!     .build()?;
//! let constraints = SlackBudgeter::new(BudgetPolicy::ZeroSlack).derive(&dag, 8)?;
//! assert_eq!(constraints.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod graph;
mod sequential;
mod sta;

pub use budget::{BudgetPolicy, SlackBudgeter};
pub use graph::{CombinationalDag, TimingGraphBuilder};
pub use sequential::{SequentialDag, SequentialGraphBuilder};
pub use sta::StaReport;

use std::fmt;

/// Errors from the timing substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimingError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An intrinsic delay was negative.
    NegativeDelay {
        /// The node with the negative delay.
        node: usize,
        /// The offending value.
        delay: i64,
    },
    /// The graph contains a cycle — combinational timing graphs must be
    /// acyclic (registers cut sequential loops).
    Cyclic,
    /// An edge connects a node to itself.
    SelfEdge(usize),
    /// The cycle time is smaller than the critical (pure-logic) path delay:
    /// no routing budget can make timing close.
    InfeasibleCycleTime {
        /// Longest pure-logic path delay.
        critical_path: i64,
        /// The requested cycle time.
        cycle_time: i64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for graph with {len} nodes")
            }
            TimingError::NegativeDelay { node, delay } => {
                write!(f, "node {node} has negative intrinsic delay {delay}")
            }
            TimingError::Cyclic => write!(f, "timing graph contains a combinational cycle"),
            TimingError::SelfEdge(node) => write!(f, "self-edge on node {node}"),
            TimingError::InfeasibleCycleTime {
                critical_path,
                cycle_time,
            } => write!(
                f,
                "cycle time {cycle_time} is below the critical path delay {critical_path}"
            ),
        }
    }
}

impl std::error::Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            TimingError::NodeOutOfRange { node: 5, len: 3 },
            TimingError::NegativeDelay { node: 1, delay: -2 },
            TimingError::Cyclic,
            TimingError::SelfEdge(0),
            TimingError::InfeasibleCycleTime {
                critical_path: 10,
                cycle_time: 5,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TimingError>();
    }
}
