//! Sequential (register-bounded) timing graphs.
//!
//! Real systems have feedback: paths loop through registers. Classical STA
//! handles this by *cutting* every path at register boundaries — a register
//! launches its fanout at clk-to-Q after the clock edge and must capture its
//! fanin by `cycle − setup`. This module builds that view on top of the
//! combinational machinery: each register is split into a capture sink (its
//! fanin terminates there) and a launch source (its fanout starts there),
//! which turns any legal sequential graph into a DAG.
//!
//! Budgets derived from the expanded DAG map back to the original node
//! pairs, so they drop straight onto the partitioning problem — including
//! register-to-logic and logic-to-register wires.
//!
//! ```
//! use qbp_timing::{BudgetPolicy, SequentialGraphBuilder, SlackBudgeter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // reg0 → logic(3) → reg1 → logic2(2) → reg0 (a feedback loop).
//! let dag = SequentialGraphBuilder::new(4)
//!     .register(0, 1, 1)?  // clk-to-Q 1, setup 1
//!     .delay(1, 3)?
//!     .register(2, 1, 1)?
//!     .delay(3, 2)?
//!     .edge(0, 1)?
//!     .edge(1, 2)?
//!     .edge(2, 3)?
//!     .edge(3, 0)?
//!     .build()?;
//! let constraints = SlackBudgeter::new(BudgetPolicy::ZeroSlack)
//!     .derive(&dag.expanded(), 8)?;
//! assert!(!constraints.is_empty());
//! # Ok(())
//! # }
//! ```

use crate::{CombinationalDag, TimingError, TimingGraphBuilder};
use qbp_core::{ComponentId, Delay, TimingConstraints};

/// A sequential timing graph: combinational blocks plus registers, with
/// feedback permitted through registers.
#[derive(Debug, Clone)]
pub struct SequentialDag {
    /// The register-split expanded DAG. Node `k < n` is the original node
    /// (capture side for registers); node `n + r` is the launch side of the
    /// `r`-th register.
    expanded: CombinationalDag,
    /// Original node count.
    n: usize,
    /// For each expanded node, the original node it represents.
    origin: Vec<u32>,
}

impl SequentialDag {
    /// The register-split expanded DAG (launch/capture pseudo-nodes split).
    pub fn expanded(&self) -> &CombinationalDag {
        &self.expanded
    }

    /// Number of original nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The original node an expanded node represents.
    pub fn origin(&self, expanded_node: usize) -> usize {
        self.origin[expanded_node] as usize
    }

    /// Derives partitioning timing constraints at `cycle_time` with the
    /// given budgeter, mapped back to *original* node pairs (register
    /// launch/capture pseudo-nodes collapse onto their register).
    ///
    /// # Errors
    ///
    /// Propagates [`TimingError::InfeasibleCycleTime`] from the budgeter.
    pub fn derive_constraints(
        &self,
        budgeter: &crate::SlackBudgeter,
        cycle_time: Delay,
    ) -> Result<TimingConstraints, TimingError> {
        let budgets = budgeter.budgets(&self.expanded, cycle_time)?;
        let mut tc = TimingConstraints::new(self.n);
        for (u, v, budget) in budgets {
            let (a, b) = (self.origin(u), self.origin(v));
            if a == b {
                continue; // launch/capture pair of one register
            }
            tc.add(ComponentId::new(a), ComponentId::new(b), budget)
                .expect("distinct original nodes");
        }
        Ok(tc)
    }
}

/// Builder for [`SequentialDag`]; cycles are allowed as long as every cycle
/// passes through at least one register.
#[derive(Debug, Clone)]
pub struct SequentialGraphBuilder {
    delays: Vec<Delay>,
    /// `Some((clk_to_q, setup))` marks a register.
    registers: Vec<Option<(Delay, Delay)>>,
    edges: Vec<(u32, u32)>,
}

impl SequentialGraphBuilder {
    /// Starts a graph over `n` nodes, all combinational with delay 0.
    pub fn new(n: usize) -> Self {
        SequentialGraphBuilder {
            delays: vec![0; n],
            registers: vec![None; n],
            edges: Vec::new(),
        }
    }

    /// Sets the intrinsic delay of a combinational node.
    ///
    /// # Errors
    ///
    /// Returns an error when the node is out of range or the delay negative.
    pub fn delay(mut self, node: usize, delay: Delay) -> Result<Self, TimingError> {
        if node >= self.delays.len() {
            return Err(TimingError::NodeOutOfRange {
                node,
                len: self.delays.len(),
            });
        }
        if delay < 0 {
            return Err(TimingError::NegativeDelay { node, delay });
        }
        self.delays[node] = delay;
        Ok(self)
    }

    /// Marks a node as a register with the given clk-to-Q and setup times.
    ///
    /// # Errors
    ///
    /// Returns an error when the node is out of range or either time is
    /// negative.
    pub fn register(
        mut self,
        node: usize,
        clk_to_q: Delay,
        setup: Delay,
    ) -> Result<Self, TimingError> {
        if node >= self.delays.len() {
            return Err(TimingError::NodeOutOfRange {
                node,
                len: self.delays.len(),
            });
        }
        for v in [clk_to_q, setup] {
            if v < 0 {
                return Err(TimingError::NegativeDelay { node, delay: v });
            }
        }
        self.registers[node] = Some((clk_to_q, setup));
        Ok(self)
    }

    /// Adds a signal edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns an error when either node is out of range or `from == to`.
    pub fn edge(mut self, from: usize, to: usize) -> Result<Self, TimingError> {
        let len = self.delays.len();
        for node in [from, to] {
            if node >= len {
                return Err(TimingError::NodeOutOfRange { node, len });
            }
        }
        if from == to {
            return Err(TimingError::SelfEdge(from));
        }
        self.edges.push((from as u32, to as u32));
        Ok(self)
    }

    /// Splits registers and builds the expanded DAG.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::Cyclic`] when some cycle avoids every register
    /// (a combinational loop).
    pub fn build(self) -> Result<SequentialDag, TimingError> {
        let n = self.delays.len();
        // Launch-side pseudo-node ids for registers, in node order.
        let mut launch_of: Vec<Option<usize>> = vec![None; n];
        let mut origin: Vec<u32> = (0..n as u32).collect();
        let mut next = n;
        for (node, reg) in self.registers.iter().enumerate() {
            if reg.is_some() {
                launch_of[node] = Some(next);
                origin.push(node as u32);
                next += 1;
            }
        }
        let mut builder = TimingGraphBuilder::new(next);
        for (node, launch) in launch_of.iter().enumerate().take(n) {
            match self.registers[node] {
                // Capture side carries the setup time, launch side clk-to-Q.
                Some((clk_to_q, setup)) => {
                    builder = builder.delay(node, setup)?;
                    builder =
                        builder.delay(launch.expect("register has launch node"), clk_to_q)?;
                }
                None => {
                    builder = builder.delay(node, self.delays[node])?;
                }
            }
        }
        for &(from, to) in &self.edges {
            // Register fanout leaves the launch side; register fanin enters
            // the capture side (node id unchanged).
            let src = launch_of[from as usize].unwrap_or(from as usize);
            builder = builder.edge(src, to as usize)?;
        }
        let expanded = builder.build()?; // Cyclic ⇒ combinational loop.
        Ok(SequentialDag {
            expanded,
            n,
            origin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BudgetPolicy, SlackBudgeter, StaReport};

    /// reg0 → logic1(3) → reg2 → logic3(2) → reg0.
    fn loop_graph() -> SequentialDag {
        SequentialGraphBuilder::new(4)
            .register(0, 1, 1)
            .unwrap()
            .delay(1, 3)
            .unwrap()
            .register(2, 1, 1)
            .unwrap()
            .delay(3, 2)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(1, 2)
            .unwrap()
            .edge(2, 3)
            .unwrap()
            .edge(3, 0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn register_loop_becomes_a_dag() {
        let dag = loop_graph();
        assert_eq!(dag.len(), 4);
        // Expanded: 4 original + 2 launch nodes.
        assert_eq!(dag.expanded().len(), 6);
        assert_eq!(dag.origin(4), 0);
        assert_eq!(dag.origin(5), 2);
    }

    #[test]
    fn combinational_loop_rejected() {
        // 0 → 1 → 0 with no registers.
        let r = SequentialGraphBuilder::new(2)
            .delay(0, 1)
            .unwrap()
            .delay(1, 1)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(1, 0)
            .unwrap()
            .build();
        assert_eq!(r.unwrap_err(), TimingError::Cyclic);
    }

    #[test]
    fn critical_paths_are_register_to_register() {
        let dag = loop_graph();
        // Stage A: launch(reg0)=1 → logic1(3) → capture(reg2) setup 1: 5.
        // Stage B: launch(reg2)=1 → logic3(2) → capture(reg0) setup 1: 4.
        let sta = StaReport::zero_routing(dag.expanded(), 10).unwrap();
        assert_eq!(sta.critical_path, 5);
        assert!(StaReport::zero_routing(dag.expanded(), 4).is_err());
    }

    #[test]
    fn constraints_map_back_to_original_nodes() {
        let dag = loop_graph();
        let tc = dag
            .derive_constraints(&SlackBudgeter::new(BudgetPolicy::ZeroSlack), 9)
            .unwrap();
        // Four wires: reg0→logic1, logic1→reg2, reg2→logic3, logic3→reg0.
        assert_eq!(tc.len(), 4);
        assert_eq!(tc.component_count(), 4);
        // Stage A slack = 9−5 = 4 over two wires; stage B slack 5 over two.
        let a1 = tc.get(ComponentId::new(0), ComponentId::new(1)).unwrap();
        let a2 = tc.get(ComponentId::new(1), ComponentId::new(2)).unwrap();
        assert_eq!(a1 + a2, 4);
        let b1 = tc.get(ComponentId::new(2), ComponentId::new(3)).unwrap();
        let b2 = tc.get(ComponentId::new(3), ComponentId::new(0)).unwrap();
        assert_eq!(b1 + b2, 5);
    }

    #[test]
    fn register_validation() {
        assert!(matches!(
            SequentialGraphBuilder::new(2).register(5, 1, 1),
            Err(TimingError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            SequentialGraphBuilder::new(2).register(0, -1, 1),
            Err(TimingError::NegativeDelay { .. })
        ));
    }

    #[test]
    fn pure_combinational_graph_unchanged() {
        // No registers: expanded == original shape.
        let dag = SequentialGraphBuilder::new(3)
            .delay(0, 1)
            .unwrap()
            .delay(1, 2)
            .unwrap()
            .delay(2, 3)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(1, 2)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(dag.expanded().len(), 3);
        assert_eq!(dag.expanded().edge_count(), 2);
        let sta = StaReport::zero_routing(dag.expanded(), 10).unwrap();
        assert_eq!(sta.critical_path, 6);
    }
}
