//! The combinational timing DAG and its builder.

use crate::TimingError;
use qbp_core::{Circuit, ComponentId, Delay};
use serde::{Deserialize, Serialize};

/// A directed acyclic graph of combinational components with intrinsic
/// delays. Node indices are the circuit's component indices, so constraints
/// derived here drop straight onto the partitioning problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CombinationalDag {
    delays: Vec<Delay>,
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    topo: Vec<u32>,
}

/// Builder for [`CombinationalDag`]; validates acyclicity at
/// [`TimingGraphBuilder::build`].
#[derive(Debug, Clone)]
pub struct TimingGraphBuilder {
    delays: Vec<Delay>,
    edges: Vec<(u32, u32)>,
}

impl TimingGraphBuilder {
    /// Starts a graph over `n` nodes, all with intrinsic delay 0.
    pub fn new(n: usize) -> Self {
        TimingGraphBuilder {
            delays: vec![0; n],
            edges: Vec::new(),
        }
    }

    /// Sets the intrinsic delay of `node`.
    ///
    /// # Errors
    ///
    /// Returns an error when the node is out of range or the delay negative.
    pub fn delay(mut self, node: usize, delay: Delay) -> Result<Self, TimingError> {
        if node >= self.delays.len() {
            return Err(TimingError::NodeOutOfRange {
                node,
                len: self.delays.len(),
            });
        }
        if delay < 0 {
            return Err(TimingError::NegativeDelay { node, delay });
        }
        self.delays[node] = delay;
        Ok(self)
    }

    /// Adds a signal edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns an error when either node is out of range or `from == to`.
    pub fn edge(mut self, from: usize, to: usize) -> Result<Self, TimingError> {
        let len = self.delays.len();
        for node in [from, to] {
            if node >= len {
                return Err(TimingError::NodeOutOfRange { node, len });
            }
        }
        if from == to {
            return Err(TimingError::SelfEdge(from));
        }
        self.edges.push((from as u32, to as u32));
        Ok(self)
    }

    /// Validates acyclicity (Kahn topological sort) and builds the DAG.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::Cyclic`] when the edge set contains a cycle.
    pub fn build(self) -> Result<CombinationalDag, TimingError> {
        let n = self.delays.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            // Duplicate edges collapse: timing budgets are per ordered pair.
            if !succs[a as usize].contains(&b) {
                succs[a as usize].push(b);
                preds[b as usize].push(a);
            }
        }
        // Kahn.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            topo.push(v);
            for &s in &succs[v as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err(TimingError::Cyclic);
        }
        Ok(CombinationalDag {
            delays: self.delays,
            succs,
            preds,
            topo,
        })
    }
}

impl CombinationalDag {
    /// Builds a timing DAG from a circuit's connection structure, orienting
    /// each directed connection as a signal edge, with the given intrinsic
    /// delays (one per component).
    ///
    /// # Errors
    ///
    /// Returns an error when `delays` has the wrong length, any delay is
    /// negative, or the connection structure is cyclic (partition a
    /// register-bounded subcircuit instead).
    pub fn from_circuit(circuit: &Circuit, delays: &[Delay]) -> Result<Self, TimingError> {
        if delays.len() != circuit.len() {
            return Err(TimingError::NodeOutOfRange {
                node: delays.len(),
                len: circuit.len(),
            });
        }
        let mut builder = TimingGraphBuilder::new(circuit.len());
        for (node, &d) in delays.iter().enumerate() {
            builder = builder.delay(node, d)?;
        }
        for (from, to, _) in circuit.edges() {
            builder = builder.edge(from.index(), to.index())?;
        }
        builder.build()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Intrinsic delay of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn delay(&self, node: usize) -> Delay {
        self.delays[node]
    }

    /// Successors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn successors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.succs[node].iter().map(|&v| v as usize)
    }

    /// Predecessors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn predecessors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.preds[node].iter().map(|&v| v as usize)
    }

    /// Nodes in topological order.
    pub fn topo_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.topo.iter().map(|&v| v as usize)
    }

    /// All edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(a, ss)| ss.iter().map(move |&b| (a, b as usize)))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The component id corresponding to a node (identity mapping — nodes
    /// *are* circuit component indices).
    pub fn component(&self, node: usize) -> ComponentId {
        ComponentId::new(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_diamond() {
        //   0 → 1 → 3
        //   0 → 2 → 3
        let dag = TimingGraphBuilder::new(4)
            .delay(0, 1)
            .unwrap()
            .delay(1, 5)
            .unwrap()
            .delay(2, 2)
            .unwrap()
            .delay(3, 1)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(0, 2)
            .unwrap()
            .edge(1, 3)
            .unwrap()
            .edge(2, 3)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.edge_count(), 4);
        let topo: Vec<usize> = dag.topo_order().collect();
        let pos = |v: usize| topo.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn cycle_detected() {
        let r = TimingGraphBuilder::new(3)
            .edge(0, 1)
            .unwrap()
            .edge(1, 2)
            .unwrap()
            .edge(2, 0)
            .unwrap()
            .build();
        assert_eq!(r.unwrap_err(), TimingError::Cyclic);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let dag = TimingGraphBuilder::new(2)
            .edge(0, 1)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            TimingGraphBuilder::new(2).delay(5, 1),
            Err(TimingError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            TimingGraphBuilder::new(2).delay(0, -1),
            Err(TimingError::NegativeDelay { .. })
        ));
        assert!(matches!(
            TimingGraphBuilder::new(2).edge(0, 0),
            Err(TimingError::SelfEdge(0))
        ));
        assert!(matches!(
            TimingGraphBuilder::new(2).edge(0, 7),
            Err(TimingError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn from_circuit_orients_connections() {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        c.add_connection(a, b, 2).unwrap();
        let dag = CombinationalDag::from_circuit(&c, &[3, 4]).unwrap();
        assert_eq!(dag.delay(0), 3);
        assert_eq!(dag.edges().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn from_circuit_rejects_symmetric_wires() {
        // add_wires creates a 2-cycle, which is not a combinational DAG.
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        c.add_wires(a, b, 1).unwrap();
        assert_eq!(
            CombinationalDag::from_circuit(&c, &[0, 0]).unwrap_err(),
            TimingError::Cyclic
        );
    }

    #[test]
    fn from_circuit_validates_delay_length() {
        let mut c = Circuit::new();
        c.add_component("a", 1);
        assert!(CombinationalDag::from_circuit(&c, &[1, 2]).is_err());
    }
}
