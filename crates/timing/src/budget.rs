//! Routing-delay budgeting: turns path slack into the per-edge maximum
//! routing delays that become the partitioning problem's `D_C` constraints.

use crate::{CombinationalDag, StaReport, TimingError};
use qbp_core::{ComponentId, Delay, TimingConstraints};

/// How path slack is shared among the edges of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Each edge gets its full isolated slack window
    /// `required[v] − delay[v] − arrival[u]`. **Optimistic**: two critical
    /// wires on one path can both claim the same slack, so an assignment
    /// meeting all windows may still miss cycle time. Matches how loose,
    /// per-wire constraints are often specified in practice.
    Window,
    /// Zero-slack-style distribution: slack is divided across path edges so
    /// that the budgets are *simultaneously* achievable — routing every wire
    /// at exactly its budget still meets the cycle time (safe). This is the
    /// default and the policy used by the table harness.
    #[default]
    ZeroSlack,
}

/// Derives per-edge routing budgets and emits them as
/// [`TimingConstraints`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SlackBudgeter {
    policy: BudgetPolicy,
}

impl SlackBudgeter {
    /// Creates a budgeter with the given policy.
    pub fn new(policy: BudgetPolicy) -> Self {
        SlackBudgeter { policy }
    }

    /// Computes per-edge budgets for the given cycle time.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::InfeasibleCycleTime`] when the pure-logic
    /// critical path already exceeds `cycle_time`.
    pub fn budgets(
        &self,
        dag: &CombinationalDag,
        cycle_time: Delay,
    ) -> Result<Vec<(usize, usize, Delay)>, TimingError> {
        match self.policy {
            BudgetPolicy::Window => {
                let sta = StaReport::zero_routing(dag, cycle_time)?;
                Ok(dag
                    .edges()
                    .map(|(u, v)| (u, v, sta.edge_slack(dag, u, v)))
                    .collect())
            }
            BudgetPolicy::ZeroSlack => zero_slack_budgets(dag, cycle_time),
        }
    }

    /// Derives the partitioning timing constraints `D_C(u, v) = budget(u, v)`
    /// for every DAG edge, in the same delay units as the topology's `D`
    /// matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SlackBudgeter::budgets`].
    pub fn derive(
        &self,
        dag: &CombinationalDag,
        cycle_time: Delay,
    ) -> Result<TimingConstraints, TimingError> {
        let mut tc = TimingConstraints::new(dag.len());
        for (u, v, budget) in self.budgets(dag, cycle_time)? {
            tc.add(ComponentId::new(u), ComponentId::new(v), budget)
                .expect("DAG edges are valid, distinct component pairs");
        }
        Ok(tc)
    }
}

/// Zero-slack-style simultaneous distribution.
///
/// Iteratively adds `⌊slack(e) / L(e)⌋` to every edge budget, where
/// `slack(e)` is recomputed with the current budgets as routing delays and
/// `L(e)` is the maximum number of edges on any path through `e`. For any
/// path `P` with shared slack `S`, each of its `k ≤ L(e)` edges receives at
/// most `S/k`, so a round adds at most `S` along `P` — budgets never
/// overshoot. A final greedy pass sweeps up integer remainders one edge at a
/// time.
fn zero_slack_budgets(
    dag: &CombinationalDag,
    cycle_time: Delay,
) -> Result<Vec<(usize, usize, Delay)>, TimingError> {
    // Validate feasibility up front.
    StaReport::zero_routing(dag, cycle_time)?;
    let edges: Vec<(usize, usize)> = dag.edges().collect();
    if edges.is_empty() {
        return Ok(Vec::new());
    }
    let n = dag.len();
    // L(e) = fwd_edges(u) + bwd_edges(v) + 1, where fwd/bwd count the longest
    // edge-chains reaching u / leaving v.
    let topo: Vec<usize> = dag.topo_order().collect();
    let mut fwd = vec![0i64; n]; // longest #edges on a path ending at node
    for &v in &topo {
        for u in dag.predecessors(v) {
            fwd[v] = fwd[v].max(fwd[u] + 1);
        }
    }
    let mut bwd = vec![0i64; n]; // longest #edges on a path starting at node
    for &v in topo.iter().rev() {
        for s in dag.successors(v) {
            bwd[v] = bwd[v].max(bwd[s] + 1);
        }
    }
    let mut budget: std::collections::HashMap<(usize, usize), Delay> =
        edges.iter().map(|&e| (e, 0)).collect();

    // Simultaneous rounds: geometric convergence; 2·log₂(cycle) rounds are
    // plenty, cap for safety.
    for _ in 0..64 {
        let sta = StaReport::with_edge_delays(dag, cycle_time, |u, v| budget[&(u, v)])
            .expect("budgets never overshoot by construction");
        let mut any = false;
        let mut adds = Vec::with_capacity(edges.len());
        for &(u, v) in &edges {
            let slack = sta.required[v] - dag.delay(v) - budget[&(u, v)] - sta.arrival[u];
            let l = fwd[u] + bwd[v] + 1;
            let add = slack / l.max(1);
            if add > 0 {
                any = true;
            }
            adds.push(add);
        }
        if !any {
            break;
        }
        for (&(u, v), add) in edges.iter().zip(adds) {
            *budget.get_mut(&(u, v)).expect("seeded") += add;
        }
    }
    // Greedy remainder sweep: one edge at a time, take whatever slack is
    // left (recomputing after each).
    for &(u, v) in &edges {
        let sta = StaReport::with_edge_delays(dag, cycle_time, |a, b| budget[&(a, b)])
            .expect("budgets never overshoot by construction");
        let slack = sta.required[v] - dag.delay(v) - budget[&(u, v)] - sta.arrival[u];
        if slack > 0 {
            *budget.get_mut(&(u, v)).expect("seeded") += slack;
        }
    }
    Ok(edges.into_iter().map(|(u, v)| (u, v, budget[&(u, v)])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingGraphBuilder;

    fn chain() -> CombinationalDag {
        // 0(1) → 1(2) → 2(1); cycle 8 → slack 4 shared by two edges.
        TimingGraphBuilder::new(3)
            .delay(0, 1)
            .unwrap()
            .delay(1, 2)
            .unwrap()
            .delay(2, 1)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(1, 2)
            .unwrap()
            .build()
            .unwrap()
    }

    fn diamond() -> CombinationalDag {
        TimingGraphBuilder::new(4)
            .delay(0, 1)
            .unwrap()
            .delay(1, 5)
            .unwrap()
            .delay(2, 2)
            .unwrap()
            .delay(3, 1)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(0, 2)
            .unwrap()
            .edge(1, 3)
            .unwrap()
            .edge(2, 3)
            .unwrap()
            .build()
            .unwrap()
    }

    /// Budgets are "safe" when routing every edge at exactly its budget
    /// still meets the cycle time.
    fn assert_safe(dag: &CombinationalDag, budgets: &[(usize, usize, Delay)], cycle: Delay) {
        let map: std::collections::HashMap<(usize, usize), Delay> =
            budgets.iter().map(|&(u, v, b)| ((u, v), b)).collect();
        let sta = StaReport::with_edge_delays(dag, cycle, |u, v| map[&(u, v)]);
        assert!(sta.is_ok(), "budgets overshoot the cycle time");
    }

    #[test]
    fn window_budgets_match_edge_slack() {
        let dag = chain();
        let budgets = SlackBudgeter::new(BudgetPolicy::Window).budgets(&dag, 8).unwrap();
        // Both edges see the full path slack of 4.
        for &(_, _, b) in &budgets {
            assert_eq!(b, 4);
        }
    }

    #[test]
    fn zero_slack_budgets_are_safe_and_exhaustive_on_chain() {
        let dag = chain();
        let budgets = SlackBudgeter::new(BudgetPolicy::ZeroSlack).budgets(&dag, 8).unwrap();
        assert_safe(&dag, &budgets, 8);
        // All 4 units of slack distributed: total budget = 4.
        let total: Delay = budgets.iter().map(|&(_, _, b)| b).sum();
        assert_eq!(total, 4);
        // Shared fairly: 2 + 2.
        for &(_, _, b) in &budgets {
            assert_eq!(b, 2);
        }
    }

    #[test]
    fn zero_slack_budgets_safe_on_diamond() {
        let dag = diamond();
        let cycle = 12;
        let budgets = SlackBudgeter::new(BudgetPolicy::ZeroSlack)
            .budgets(&dag, cycle)
            .unwrap();
        assert_safe(&dag, &budgets, cycle);
        // The slow branch (through node 1) shares 5 units over 2 edges; the
        // fast branch gets strictly more per edge.
        let get = |u: usize, v: usize| {
            budgets
                .iter()
                .find(|&&(a, b, _)| (a, b) == (u, v))
                .map(|&(_, _, x)| x)
                .unwrap()
        };
        assert!(get(0, 2) >= get(0, 1));
        // After budgeting, the critical path consumes the entire cycle: the
        // remainder sweep leaves no distributable slack on critical edges.
        let map: std::collections::HashMap<(usize, usize), Delay> =
            budgets.iter().map(|&(u, v, b)| ((u, v), b)).collect();
        let sta = StaReport::with_edge_delays(&dag, cycle, |u, v| map[&(u, v)]).unwrap();
        assert_eq!(sta.critical_path, cycle);
    }

    #[test]
    fn derive_produces_constraints_per_edge() {
        let dag = chain();
        let tc = SlackBudgeter::default().derive(&dag, 8).unwrap();
        assert_eq!(tc.len(), 2);
        assert_eq!(tc.get(ComponentId::new(0), ComponentId::new(1)), Some(2));
        assert_eq!(tc.get(ComponentId::new(1), ComponentId::new(2)), Some(2));
    }

    #[test]
    fn zero_cycle_slack_gives_zero_budgets() {
        let dag = chain();
        // Cycle equals critical path: every budget must be 0.
        let tc = SlackBudgeter::default().derive(&dag, 4).unwrap();
        for (_, _, dc) in tc.iter() {
            assert_eq!(dc, 0);
        }
    }

    #[test]
    fn infeasible_cycle_propagates() {
        let dag = chain();
        assert!(matches!(
            SlackBudgeter::default().derive(&dag, 3),
            Err(TimingError::InfeasibleCycleTime { .. })
        ));
    }

    #[test]
    fn empty_edge_set_is_fine() {
        let dag = TimingGraphBuilder::new(2)
            .delay(0, 1)
            .unwrap()
            .delay(1, 1)
            .unwrap()
            .build()
            .unwrap();
        let tc = SlackBudgeter::default().derive(&dag, 10).unwrap();
        assert!(tc.is_empty());
    }
}
