//! Longest-path static timing analysis over a [`CombinationalDag`].

use crate::{CombinationalDag, TimingError};
use qbp_core::Delay;
use serde::{Deserialize, Serialize};

/// Arrival/required/slack report for one cycle-time target.
///
/// Conventions (block-level, edge-triggered boundary at both ends):
///
/// * `arrival[v]` — earliest time the *output* of `v` is stable, assuming
///   primary inputs launch at 0 and routing takes the per-edge delay supplied
///   to [`StaReport::with_edge_delays`] (zero for
///   [`StaReport::zero_routing`]);
/// * `required[v]` — latest time the output of `v` may stabilize such that
///   all downstream logic still meets the cycle time;
/// * edge slack of `(u, v)` — `required[v] − delay[v] − routing(u,v) −
///   arrival[u]`: how much *additional* routing delay the wire `u → v` could
///   absorb in isolation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaReport {
    /// Arrival time at each node's output.
    pub arrival: Vec<Delay>,
    /// Required time at each node's output.
    pub required: Vec<Delay>,
    /// The analyzed cycle time.
    pub cycle_time: Delay,
    /// Length of the longest pure-logic path (the critical path under the
    /// analyzed routing delays).
    pub critical_path: Delay,
}

impl StaReport {
    /// Analyzes the DAG with zero routing delay on every edge — the
    /// pure-logic view used to derive initial budgets.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::InfeasibleCycleTime`] when even zero routing
    /// cannot meet `cycle_time`.
    pub fn zero_routing(dag: &CombinationalDag, cycle_time: Delay) -> Result<Self, TimingError> {
        StaReport::with_edge_delays(dag, cycle_time, |_, _| 0)
    }

    /// Analyzes the DAG with the given per-edge routing delays.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::InfeasibleCycleTime`] when the longest path
    /// (logic + routing) exceeds `cycle_time`.
    pub fn with_edge_delays(
        dag: &CombinationalDag,
        cycle_time: Delay,
        mut routing: impl FnMut(usize, usize) -> Delay,
    ) -> Result<Self, TimingError> {
        let n = dag.len();
        let mut arrival = vec![0; n];
        for v in dag.topo_order() {
            let mut best = 0;
            for u in dag.predecessors(v) {
                best = best.max(arrival[u] + routing(u, v));
            }
            arrival[v] = best + dag.delay(v);
        }
        let critical_path = arrival.iter().copied().max().unwrap_or(0);
        if critical_path > cycle_time {
            return Err(TimingError::InfeasibleCycleTime {
                critical_path,
                cycle_time,
            });
        }
        let mut required = vec![cycle_time; n];
        let topo: Vec<usize> = dag.topo_order().collect();
        for &v in topo.iter().rev() {
            let mut best = cycle_time;
            for s in dag.successors(v) {
                best = best.min(required[s] - dag.delay(s) - routing(v, s));
            }
            required[v] = best;
        }
        Ok(StaReport {
            arrival,
            required,
            cycle_time,
            critical_path,
        })
    }

    /// Slack of the edge `(u, v)` under zero extra routing: the largest
    /// additional delay the wire could absorb in isolation.
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range for the report.
    pub fn edge_slack(&self, dag: &CombinationalDag, u: usize, v: usize) -> Delay {
        self.required[v] - dag.delay(v) - self.arrival[u]
    }

    /// Worst (smallest) node slack `required − arrival`.
    pub fn worst_slack(&self) -> Delay {
        self.required
            .iter()
            .zip(&self.arrival)
            .map(|(r, a)| r - a)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingGraphBuilder;

    /// 0(1) → 1(5) → 3(1) and 0(1) → 2(2) → 3(1); cycle 10.
    fn diamond() -> CombinationalDag {
        TimingGraphBuilder::new(4)
            .delay(0, 1)
            .unwrap()
            .delay(1, 5)
            .unwrap()
            .delay(2, 2)
            .unwrap()
            .delay(3, 1)
            .unwrap()
            .edge(0, 1)
            .unwrap()
            .edge(0, 2)
            .unwrap()
            .edge(1, 3)
            .unwrap()
            .edge(2, 3)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn arrival_and_required_on_diamond() {
        let dag = diamond();
        let sta = StaReport::zero_routing(&dag, 10).unwrap();
        assert_eq!(sta.arrival, vec![1, 6, 3, 7]);
        assert_eq!(sta.critical_path, 7);
        // required[3] = 10; required[1] = 10-1=9; required[2] = 9;
        // required[0] = min(9-5, 9-2) = 4.
        assert_eq!(sta.required, vec![4, 9, 9, 10]);
        assert_eq!(sta.worst_slack(), 3);
    }

    #[test]
    fn edge_slack_reflects_path_slack() {
        let dag = diamond();
        let sta = StaReport::zero_routing(&dag, 10).unwrap();
        // Critical path 0-1-3 has slack 3 total; edge (0,1): 9-5-1 = 3.
        assert_eq!(sta.edge_slack(&dag, 0, 1), 3);
        // Off-critical edge (0,2): 9-2-1 = 6.
        assert_eq!(sta.edge_slack(&dag, 0, 2), 6);
        assert_eq!(sta.edge_slack(&dag, 1, 3), 3);
        assert_eq!(sta.edge_slack(&dag, 2, 3), 6);
    }

    #[test]
    fn infeasible_cycle_time_detected() {
        let dag = diamond();
        assert!(matches!(
            StaReport::zero_routing(&dag, 6),
            Err(TimingError::InfeasibleCycleTime {
                critical_path: 7,
                cycle_time: 6
            })
        ));
    }

    #[test]
    fn routing_delays_shift_arrivals() {
        let dag = diamond();
        // Put 2 units of routing on (0,1).
        let sta =
            StaReport::with_edge_delays(&dag, 10, |u, v| if (u, v) == (0, 1) { 2 } else { 0 })
                .unwrap();
        assert_eq!(sta.arrival, vec![1, 8, 3, 9]);
        assert_eq!(sta.worst_slack(), 1);
    }

    #[test]
    fn single_node_graph() {
        let dag = TimingGraphBuilder::new(1).delay(0, 4).unwrap().build().unwrap();
        let sta = StaReport::zero_routing(&dag, 5).unwrap();
        assert_eq!(sta.arrival, vec![4]);
        assert_eq!(sta.required, vec![5]);
        assert_eq!(sta.worst_slack(), 1);
    }
}
