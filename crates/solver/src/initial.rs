//! Initial-solution generators: random assignments (QBP can start anywhere),
//! greedy first-fit (a fast feasible start for the GFM/GKL baselines), and
//! the QBP `B = 0` feasibility phase lives on
//! [`QbpSolver::find_feasible`](crate::QbpSolver::find_feasible).

use qbp_core::{
    check_feasibility, move_is_timing_feasible, Assignment, ComponentId, PartitionId, Problem,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A uniformly random assignment — not necessarily feasible. §5 observes QBP
/// "maintained the same kind of good results from any arbitrary initial
/// solution"; this is the arbitrary start.
pub fn random_assignment(n: usize, m: usize, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    Assignment::from_fn(n, |_| PartitionId::new(rng.random_range(0..m)))
}

/// Randomized greedy first-fit-decreasing: components big-to-small, each to
/// the *feasible* partition (capacity and timing against already-placed
/// components) with the most remaining capacity. Retries with reshuffled
/// tie-breaking up to `attempts` times.
///
/// Returns `None` when no attempt produces a fully feasible assignment —
/// fall back to [`QbpSolver::find_feasible`](crate::QbpSolver::find_feasible),
/// which searches much harder.
pub fn greedy_first_fit(problem: &Problem, seed: u64, attempts: usize) -> Option<Assignment> {
    let n = problem.n();
    let m = problem.m();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        problem
            .circuit()
            .size(ComponentId::new(b))
            .cmp(&problem.circuit().size(ComponentId::new(a)))
    });
    for _ in 0..attempts.max(1) {
        let mut remaining: Vec<u64> = problem.topology().capacities().to_vec();
        // Partial assignment: u32::MAX marks "not yet placed". Timing checks
        // only consider placed partners.
        let mut parts = vec![u32::MAX; n];
        let mut ok = true;
        'place: for &j in &order {
            let size = problem.circuit().size(ComponentId::new(j));
            // Candidate partitions in random order, then by remaining space.
            let mut cands: Vec<usize> = (0..m).collect();
            cands.shuffle(&mut rng);
            cands.sort_by_key(|&i| std::cmp::Reverse(remaining[i]));
            for i in cands {
                if remaining[i] < size {
                    continue;
                }
                if !partial_timing_ok(problem, &parts, j, i) {
                    continue;
                }
                parts[j] = i as u32;
                remaining[i] -= size;
                continue 'place;
            }
            ok = false;
            break;
        }
        if ok {
            let asg = Assignment::from_parts(parts).expect("n > 0");
            debug_assert!(check_feasibility(problem, &asg).is_feasible());
            return Some(asg);
        }
    }
    None
}

/// Timing feasibility of placing `j` in partition `i` against already-placed
/// partners (entries `!= u32::MAX`).
fn partial_timing_ok(problem: &Problem, parts: &[u32], j: usize, i: usize) -> bool {
    let d = problem.topology().delay();
    let cj = ComponentId::new(j);
    for (k, limit) in problem.timing().constraints_from(cj) {
        let pk = parts[k.index()];
        if pk != u32::MAX && d[(i, pk as usize)] > limit {
            return false;
        }
    }
    for (k, limit) in problem.timing().constraints_into(cj) {
        let pk = parts[k.index()];
        if pk != u32::MAX && d[(pk as usize, i)] > limit {
            return false;
        }
    }
    true
}

/// Scrambles a feasible assignment by a cost-blind random walk of
/// feasibility-preserving moves and swaps. The result is exactly as feasible
/// as the input but (for any nontrivial instance) far from wire-length
/// optimized — the "designer's unoptimized assignment" used as the common
/// starting point of the method comparison when the `B = 0` feasibility
/// search cannot reach a feasible solution on its own.
///
/// `steps` counts *accepted* perturbations; the walk gives up after
/// `20 × steps` attempts (rigid instances may accept few moves).
///
/// # Panics
///
/// Panics if `start` does not match the problem's dimensions.
pub fn scramble_feasible(
    problem: &Problem,
    start: &Assignment,
    steps: usize,
    seed: u64,
) -> Assignment {
    use qbp_core::{swap_is_timing_feasible, UsageTracker};
    let mut asg = start.clone();
    let mut usage = UsageTracker::new(problem, &asg);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = problem.n();
    let m = problem.m();
    let mut accepted = 0;
    let mut attempts = 0;
    while accepted < steps && attempts < steps.saturating_mul(20) {
        attempts += 1;
        if rng.random::<f64>() < 0.5 {
            // Random move.
            let j = ComponentId::new(rng.random_range(0..n));
            let to = PartitionId::new(rng.random_range(0..m));
            if asg.partition_of(j) == to {
                continue;
            }
            if usage.move_fits(problem, j, to) && move_is_timing_feasible(problem, &asg, j, to) {
                let from = asg.partition_of(j);
                usage.apply_move(problem, j, from, to);
                asg.move_to(j, to);
                accepted += 1;
            }
        } else {
            // Random swap.
            let j1 = ComponentId::new(rng.random_range(0..n));
            let j2 = ComponentId::new(rng.random_range(0..n));
            let (i1, i2) = (asg.partition_of(j1), asg.partition_of(j2));
            if j1 == j2 || i1 == i2 {
                continue;
            }
            if usage.swap_fits(problem, j1, i1, j2, i2)
                && swap_is_timing_feasible(problem, &asg, j1, j2)
            {
                usage.apply_move(problem, j1, i1, i2);
                usage.apply_move(problem, j2, i2, i1);
                asg.swap(j1, j2);
                accepted += 1;
            }
        }
    }
    debug_assert!(check_feasibility(problem, &asg).is_feasible());
    asg
}

/// Repairs capacity violations of an assignment by greedily relocating
/// components out of overfull partitions into feasible ones (useful for
/// turning a designer's manual assignment into a C1-clean starting point for
/// the MCM/TCM deviation workflow). Timing violations are *not* repaired.
///
/// Returns `true` when all capacity violations were resolved.
pub fn repair_capacity(problem: &Problem, assignment: &mut Assignment, seed: u64) -> bool {
    let m = problem.m();
    let n = problem.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used = vec![0u64; m];
    for j in 0..n {
        used[assignment.part_index(j)] += problem.circuit().size(ComponentId::new(j));
    }
    for i in 0..m {
        let cap = problem.topology().capacity(PartitionId::new(i));
        while used[i] > cap {
            // Pick the smallest member that resolves the least overflow
            // damage; randomized among members to avoid pathological loops.
            let mut members: Vec<usize> = (0..n)
                .filter(|&j| assignment.part_index(j) == i)
                .collect();
            members.shuffle(&mut rng);
            members.sort_by_key(|&j| problem.circuit().size(ComponentId::new(j)));
            let mut moved = false;
            'outer: for &j in members.iter().rev() {
                let size = problem.circuit().size(ComponentId::new(j));
                let mut targets: Vec<usize> = (0..m).filter(|&t| t != i).collect();
                targets.sort_by_key(|&t| {
                    std::cmp::Reverse(
                        problem
                            .topology()
                            .capacity(PartitionId::new(t))
                            .saturating_sub(used[t]),
                    )
                });
                for t in targets {
                    if used[t] + size <= problem.topology().capacity(PartitionId::new(t))
                        && move_is_timing_feasible(
                            problem,
                            assignment,
                            ComponentId::new(j),
                            PartitionId::new(t),
                        )
                    {
                        assignment.move_to(ComponentId::new(j), PartitionId::new(t));
                        used[i] -= size;
                        used[t] += size;
                        moved = true;
                        break 'outer;
                    }
                }
            }
            if !moved {
                return false;
            }
        }
    }
    (0..m).all(|i| used[i] <= problem.topology().capacity(PartitionId::new(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn problem(cap: u64) -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 3);
        let b = c.add_component("b", 4);
        let d = c.add_component("c", 5);
        let e = c.add_component("d", 2);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        c.add_wires(d, e, 1).unwrap();
        let mut tc = TimingConstraints::new(4);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, d, 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    #[test]
    fn random_assignment_is_deterministic_per_seed() {
        let a = random_assignment(10, 4, 7);
        let b = random_assignment(10, 4, 7);
        let c = random_assignment(10, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate(4).is_ok());
    }

    #[test]
    fn greedy_first_fit_produces_feasible_solution() {
        let p = problem(6);
        let asg = greedy_first_fit(&p, 1, 10).expect("feasible start exists");
        assert!(check_feasibility(&p, &asg).is_feasible());
    }

    #[test]
    fn greedy_first_fit_handles_tightest_capacity() {
        // Capacity 5: c (size 5) must be alone; a+b can't share either
        // (3+4=7 > 5) so all constrained pairs must sit in adjacent cells.
        let p = problem(5);
        if let Some(asg) = greedy_first_fit(&p, 3, 50) {
            assert!(check_feasibility(&p, &asg).is_feasible());
        }
    }

    #[test]
    fn greedy_first_fit_gives_up_on_impossible_timing() {
        // Constraint requiring distance ≤ 0 between a and b, but they cannot
        // share any partition (capacity below combined size).
        let mut c = Circuit::new();
        let a = c.add_component("a", 3);
        let b = c.add_component("b", 4);
        let mut tc = TimingConstraints::new(2);
        tc.add_symmetric(a, b, 0).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 5).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        assert!(greedy_first_fit(&p, 0, 20).is_none());
    }

    #[test]
    fn repair_capacity_fixes_overflow() {
        let p = problem(7);
        // Everything crammed into partition 0 (3+4+5+2 = 14 > 7).
        let mut asg = Assignment::all_in_first(4);
        let ok = repair_capacity(&p, &mut asg, 11);
        assert!(ok);
        assert!(check_feasibility(&p, &asg).capacity.is_empty());
    }

    #[test]
    fn repair_capacity_reports_failure_when_impossible() {
        let mut c = Circuit::new();
        let _a = c.add_component("a", 5);
        let _b = c.add_component("b", 5);
        // Total capacity 12 ≥ 10, but per-partition 6 can hold only one.
        let p = ProblemBuilder::new(c, PartitionTopology::grid(1, 2, 6).unwrap())
            .build()
            .unwrap();
        let mut asg = Assignment::all_in_first(2);
        assert!(repair_capacity(&p, &mut asg, 0));
        // Now an impossible one: capacity 4 < size 5 anywhere.
        let mut c2 = Circuit::new();
        let _ = c2.add_component("a", 5);
        let p2 = ProblemBuilder::new(c2, PartitionTopology::grid(1, 2, 6).unwrap())
            .build()
            .unwrap();
        let mut asg2 = Assignment::all_in_first(1);
        // Fits already; repair is a no-op success.
        assert!(repair_capacity(&p2, &mut asg2, 0));
    }
}
