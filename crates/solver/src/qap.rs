//! Burkard's *original* heuristic: the Quadratic Assignment Problem special
//! case (§2.2.3) where `M = N`, all sizes and capacities are equal, and the
//! solution space is the set of permutations — so the STEP 4/6 subproblems
//! are Linear Assignment Problems instead of GAPs.
//!
//! This module exists for three reasons: it reproduces the lineage the paper
//! generalizes from; it provides a second, independently implemented
//! instantiation of the Burkard loop to cross-check the GAP-based solver on
//! QAP instances; and it demonstrates §2.2.3's claim that the general
//! machinery subsumes the QAP.

use crate::api::{moved_from, CommonOpts, Configure, SolveReport, Solver};
use crate::lap::solve_lap_observed;
use qbp_core::exec::{ExecCtx, ExecStatus};
use qbp_core::{
    check_feasibility, Assignment, Cost, Error, Evaluator, PartitionProfile, Problem, QMatrix,
};
use qbp_observe::{BatchPhase, NoopObserver, SolveEvent, SolveObserver, SolverId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

use crate::qbp::{PenaltyMode, QbpOutcome};

/// Configuration of the QAP-mode Burkard solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QapConfig {
    /// Number of Burkard iterations.
    pub iterations: usize,
    /// Penalty selection for any embedded timing constraints.
    pub penalty: PenaltyMode,
    /// Seed for the random initial permutation.
    pub seed: u64,
    /// Length of the recent-permutation window used to detect fixed points
    /// and short cycles (default 8). On a hit the solver restarts from a
    /// fresh random permutation (resetting `h`, keeping the incumbent); `0`
    /// disables stall restarts entirely.
    pub stall_window: usize,
    /// Worker threads for the intra-solve η-row batches: `0` (default)
    /// resolves to one per available core, `1` forces the serial loop. The
    /// answer is bit-identical for every setting (see `qbp_core::par`).
    pub threads: usize,
}

impl Default for QapConfig {
    fn default() -> Self {
        QapConfig {
            iterations: 100,
            penalty: PenaltyMode::Auto,
            seed: 0xBADC_0DE5,
            stall_window: crate::qbp::STALL_WINDOW,
            threads: 0,
        }
    }
}

impl QapConfig {
    /// Whether stall restarts are active: the window must be non-zero.
    fn restarts_enabled(&self) -> bool {
        self.stall_window > 0
    }
}

impl Configure for QapConfig {
    fn apply_common(&mut self, opts: &CommonOpts) {
        self.seed = opts.seed;
        if let Some(iterations) = opts.iterations {
            self.iterations = iterations;
        }
        if let Some(stall_window) = opts.stall_window {
            self.stall_window = stall_window;
        }
        self.threads = opts.threads;
    }

    fn common(&self) -> CommonOpts {
        CommonOpts {
            seed: self.seed,
            iterations: Some(self.iterations),
            stall_window: Some(self.stall_window),
            threads: self.threads,
        }
    }
}

/// Burkard's heuristic with Linear Assignment subproblems.
///
/// Requires a problem with `M = N` where every component size equals every
/// partition capacity (so assignments are exactly permutations).
#[derive(Debug, Clone, Default)]
pub struct QapSolver {
    config: QapConfig,
}

impl QapSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: QapConfig) -> Self {
        QapSolver { config }
    }

    /// Checks the problem has QAP shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `M != N`, and
    /// [`Error::InvalidTopology`] when sizes and capacities are not all one
    /// common constant.
    pub fn validate(problem: &Problem) -> Result<(), Error> {
        let m = problem.m();
        let n = problem.n();
        if m != n {
            return Err(Error::DimensionMismatch {
                what: "QAP requires M = N",
                expected: (n, n),
                found: (m, n),
            });
        }
        let s0 = problem.circuit().size(qbp_core::ComponentId::new(0));
        let uniform_sizes = (0..n).all(|j| problem.circuit().size(qbp_core::ComponentId::new(j)) == s0);
        let uniform_caps = problem.topology().capacities().iter().all(|&c| c == s0);
        if !uniform_sizes || !uniform_caps {
            return Err(Error::InvalidTopology(
                "QAP requires uniform sizes equal to uniform capacities".into(),
            ));
        }
        Ok(())
    }

    /// Runs the heuristic; the result's assignment is always a permutation.
    ///
    /// # Errors
    ///
    /// Returns an error when the problem is not QAP-shaped (see
    /// [`QapSolver::validate`]) or the penalty configuration is invalid.
    pub fn solve(&self, problem: &Problem) -> Result<QbpOutcome, Error> {
        self.solve_observed(problem, None, &mut NoopObserver)
    }

    /// [`QapSolver::solve`] plus an optional initial permutation and
    /// observability: streams the iteration lifecycle (η computations, the
    /// STEP 4/6 LAP solves, stall restarts, incumbent improvements) to
    /// `obs`. The solve is bit-identical for every observer.
    ///
    /// # Errors
    ///
    /// Returns an error when the problem is not QAP-shaped, `initial` is not
    /// a permutation of the partitions, or the penalty configuration is
    /// invalid.
    pub fn solve_observed(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        self.solve_observed_exec(problem, initial, &ExecCtx::unbounded(), obs)
    }

    /// [`QapSolver::solve_observed`] under an execution context: the Burkard
    /// loop polls `exec` at each iteration boundary and winds down to the
    /// best permutation seen when the budget expires or the token fires
    /// (every QAP iterate is a permutation, hence capacity-feasible).
    /// Unbounded contexts are zero-cost and trace-identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QapSolver::solve_observed`].
    pub fn solve_observed_exec(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        Self::validate(problem)?;
        let start = Instant::now();
        let n = problem.n();
        let q = match self.config.penalty {
            PenaltyMode::Fixed(p) => QMatrix::new(problem, p)?,
            PenaltyMode::Auto => QMatrix::with_auto_penalty(problem)?,
            PenaltyMode::Theorem1 => QMatrix::new(problem, QMatrix::theorem1_penalty(problem))?,
        };
        let eval = Evaluator::new(problem);
        let omega = q.omega();
        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Qap,
            components: n,
            partitions: n,
        });

        // Initial permutation: the caller's, or a random one.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut u = match initial {
            Some(a) => {
                problem.validate_assignment(a)?;
                let mut seen = vec![false; n];
                for j in 0..n {
                    let i = a.part_index(j);
                    if seen[i] {
                        return Err(Error::InvalidTopology(
                            "QAP initial assignment must be a permutation".into(),
                        ));
                    }
                    seen[i] = true;
                }
                a.clone()
            }
            None => {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                perm.shuffle(&mut rng);
                Assignment::from_parts(perm).expect("n > 0")
            }
        };

        let mut best = (u.clone(), q.value(&u));
        let mut h = vec![0f64; n * n];
        let mut eta: Vec<Cost> = Vec::new();
        // Incremental partition profile backing the η recompute: the QAP loop
        // needs fresh η against every iterate, so it patches the profile
        // forward each iteration instead of re-walking the adjacency.
        let mut profile: Option<PartitionProfile> = None;
        let mut profile_source: Option<Assignment> = None;
        // LAP cost layout: rows = components, cols = partitions.
        let mut lap_costs = vec![0f64; n * n];
        let mut recent: std::collections::VecDeque<u64> =
            std::collections::VecDeque::with_capacity(self.config.stall_window.max(1));
        let intra_threads = qbp_core::par::effective_threads(self.config.threads);

        let mut status = ExecStatus::Completed;
        let mut executed = self.config.iterations;
        for k in 1..=self.config.iterations {
            if let Some(stop) = exec.check(k) {
                match stop {
                    ExecStatus::Cancelled => {
                        obs.on_event(&SolveEvent::Cancelled { iteration: k });
                    }
                    _ => obs.on_event(&SolveEvent::BudgetExhausted { iteration: k }),
                }
                status = stop;
                executed = k - 1;
                break;
            }
            obs.on_event(&SolveEvent::IterationStarted { iteration: k });
            let (rebuilt, moved) = match (profile.as_mut(), profile_source.as_ref()) {
                (Some(p), Some(prev)) => p.update(prev, &u),
                _ => {
                    profile = Some(PartitionProfile::embedded(&q, &u));
                    (true, n)
                }
            };
            profile_source = Some(u.clone());
            obs.on_event(&SolveEvent::ProfileUpdated {
                iteration: k,
                rebuilt,
                moved,
            });
            let tasks = q.eta_profiled_par(
                &u,
                profile.as_ref().expect("installed above"),
                &mut eta,
                intra_threads,
            );
            if tasks > 1 {
                obs.on_event(&SolveEvent::ParallelBatch {
                    iteration: k,
                    phase: BatchPhase::Eta,
                    tasks,
                    threads: intra_threads,
                });
            }
            obs.on_event(&SolveEvent::EtaComputed {
                iteration: k,
                incremental: false,
            });
            let xi = q.xi(&omega, &u);
            // STEP 4 over permutations: LAP on η (η[i + j*m] → row j, col i).
            for j in 0..n {
                for i in 0..n {
                    lap_costs[j * n + i] = eta[i + j * n] as f64;
                }
            }
            let z = solve_lap_observed(n, &lap_costs, k, obs).cost;
            let scale = (z - xi as f64).abs().max(1.0);
            for (hr, &e) in h.iter_mut().zip(eta.iter()) {
                *hr += e as f64 / scale;
            }
            // STEP 6 over permutations: LAP on h.
            for j in 0..n {
                for i in 0..n {
                    lap_costs[j * n + i] = h[i + j * n];
                }
            }
            let sol = solve_lap_observed(n, &lap_costs, k, obs);
            let next = Assignment::from_parts(sol.row_to_col.iter().map(|&c| c as u32).collect())
                .expect("n > 0");
            let value = q.value(&next);
            let violations = q.violation_count(&next);
            if violations > 0 {
                obs.on_event(&SolveEvent::PenaltyHits {
                    iteration: k,
                    violations,
                });
            }
            let improved = value < best.1;
            if improved {
                best = (next.clone(), value);
            }
            obs.on_event(&SolveEvent::IterationFinished {
                iteration: k,
                value,
                feasible: true,
                improved,
            });
            let fingerprint = crate::qbp::assignment_fingerprint(&next);
            if self.config.restarts_enabled() && recent.contains(&fingerprint) {
                obs.on_event(&SolveEvent::StallReset { iteration: k });
                h.fill(0.0);
                recent.clear();
                let mut perm: Vec<u32> = (0..n as u32).collect();
                perm.shuffle(&mut rng);
                u = Assignment::from_parts(perm).expect("n > 0");
                let v0 = q.value(&u);
                if v0 < best.1 {
                    best = (u.clone(), v0);
                }
            } else {
                if recent.len() >= self.config.stall_window.max(1) {
                    recent.pop_front();
                }
                recent.push_back(fingerprint);
                u = next;
            }
        }

        let (assignment, embedded_value) = best;
        let feasible = check_feasibility(problem, &assignment).is_feasible();
        obs.on_event(&SolveEvent::SolveFinished {
            iterations: executed,
            value: embedded_value,
            feasible,
        });
        Ok(QbpOutcome {
            objective: eval.cost(&assignment),
            embedded_value,
            assignment,
            feasible,
            iterations: executed,
            history: Vec::new(),
            elapsed: start.elapsed(),
            status,
        })
    }
}

impl Solver for QapSolver {
    fn name(&self) -> &'static str {
        "qap"
    }

    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let out = self.solve_observed_exec(problem, init, exec, obs)?;
        Ok(SolveReport {
            solver: "qap",
            moves_applied: moved_from(init, &out.assignment),
            objective: out.objective,
            embedded_value: Some(out.embedded_value),
            feasible: out.feasible,
            iterations: out.iterations,
            elapsed: out.elapsed,
            auto_profile: None,
            assignment: out.assignment,
            status: out.status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{Circuit, DenseMatrix, PartitionTopology, ProblemBuilder};

    /// A tiny QAP: 4 facilities on a 2×2 grid with a ring flow.
    fn qap_problem() -> Problem {
        let mut c = Circuit::new();
        let ids: Vec<_> = (0..4).map(|j| c.add_component(format!("f{j}"), 1)).collect();
        // Ring: heavy flows around 0-1-2-3-0.
        c.add_wires(ids[0], ids[1], 4).unwrap();
        c.add_wires(ids[1], ids[2], 4).unwrap();
        c.add_wires(ids[2], ids[3], 4).unwrap();
        c.add_wires(ids[3], ids[0], 4).unwrap();
        // Weak diagonals.
        c.add_wires(ids[0], ids[2], 1).unwrap();
        c.add_wires(ids[1], ids[3], 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 1).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn validate_accepts_qap_shape() {
        assert!(QapSolver::validate(&qap_problem()).is_ok());
    }

    #[test]
    fn validate_rejects_non_square() {
        let mut c = Circuit::new();
        c.add_component("a", 1);
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 1).unwrap())
            .build()
            .unwrap();
        assert!(matches!(
            QapSolver::validate(&p),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_nonuniform_sizes() {
        let mut c = Circuit::new();
        c.add_component("a", 1);
        c.add_component("b", 2);
        let topo = PartitionTopology::grid(1, 2, 2).unwrap();
        let p = ProblemBuilder::new(c, topo).build().unwrap();
        assert!(matches!(
            QapSolver::validate(&p),
            Err(Error::InvalidTopology(_))
        ));
    }

    #[test]
    fn result_is_permutation_and_optimal_on_ring() {
        let problem = qap_problem();
        let outcome = QapSolver::new(QapConfig {
            iterations: 60,
            ..QapConfig::default()
        })
        .solve(&problem)
        .unwrap();
        // Permutation check.
        let mut seen = [false; 4];
        for j in 0..4 {
            let i = outcome.assignment.part_index(j);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(outcome.feasible);
        // Optimum: place the ring around the grid so every heavy flow has
        // distance 1 and both light diagonals distance 2:
        // 2·(4·4·1 + 2·1·2) = 40.
        assert_eq!(outcome.objective, 40);
    }

    #[test]
    fn asymmetric_flow_matrix_is_respected() {
        // Directed flow 0→1 heavy; with an asymmetric B the orientation
        // matters and the solver must find the cheap orientation.
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        c.add_connection(a, b, 10).unwrap();
        let bmat = DenseMatrix::from_rows(vec![vec![0, 1], vec![5, 0]]).unwrap();
        let topo = PartitionTopology::new(vec![1, 1], bmat.clone(), bmat).unwrap();
        let problem = ProblemBuilder::new(c, topo).build().unwrap();
        let outcome = QapSolver::new(QapConfig {
            iterations: 20,
            ..QapConfig::default()
        })
        .solve(&problem)
        .unwrap();
        assert_eq!(outcome.objective, 10); // a→p0, b→p1
        assert_eq!(outcome.assignment.as_slice(), &[0, 1]);
    }
}
