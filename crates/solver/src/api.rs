//! The unified solver API: one [`Solver`] trait over every heuristic in the
//! workspace, one [`SolveReport`] result shape, and one [`CommonOpts`]
//! bundle for the knobs every solver shares.
//!
//! Before this layer, each solver exposed an ad-hoc entry point
//! (`QbpSolver::solve(problem, initial)`, `QapSolver::solve(problem)`,
//! `GfmSolver::solve(problem, &initial)`, …) and returned its own outcome
//! struct, so drivers — the CLI, the bench harness, comparison scripts —
//! special-cased every method. The trait collapses those to
//! `solve(problem, init, observer)`; observers (see [`qbp_observe`]) receive
//! the per-iteration event stream regardless of which solver runs.
//!
//! # Example
//!
//! ```
//! use qbp_core::{Circuit, PartitionTopology, ProblemBuilder};
//! use qbp_observe::CountersObserver;
//! use qbp_solver::{QbpSolver, Solver};
//!
//! # fn main() -> Result<(), qbp_core::Error> {
//! let mut circuit = Circuit::new();
//! let a = circuit.add_component("a", 10);
//! let b = circuit.add_component("b", 20);
//! circuit.add_wires(a, b, 3)?;
//! let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 30)?).build()?;
//!
//! let solver: &dyn Solver = &QbpSolver::default();
//! let mut counters = CountersObserver::new();
//! let report = solver.solve(&problem, None, &mut counters)?;
//! assert!(report.feasible);
//! assert!(counters.snapshot().iterations >= 1);
//! # Ok(())
//! # }
//! ```

use qbp_core::exec::{ExecCtx, ExecStatus};
use qbp_core::{Assignment, Cost, Error, Problem};
use qbp_observe::SolveObserver;
use std::time::Duration;

/// The knobs every solver shares, so drivers can configure any method from
/// one flag set. `None` keeps the solver's own default for that knob
/// (iteration budgets differ by an order of magnitude between, say, the
/// Burkard loop and an annealing schedule, so a single numeric default
/// would fit nobody).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonOpts {
    /// RNG seed (initial iterates, restarts, annealing chain).
    pub seed: u64,
    /// Iteration budget: Burkard iterations, FM passes, KL outer loops, or
    /// annealing temperature levels. `None` keeps the solver default.
    pub iterations: Option<usize>,
    /// Stall-detection window length; `0` disables stall restarts. `None`
    /// keeps the solver default. Only the Burkard solvers restart on stall;
    /// the others ignore this knob.
    pub stall_window: Option<usize>,
    /// Worker threads for multistart drivers (`0` = one per core).
    pub threads: usize,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts {
            seed: 0x5EED_CAFE,
            iterations: None,
            stall_window: None,
            threads: 0,
        }
    }
}

/// Config structs that embed the [`CommonOpts`] knobs. Implemented by
/// `QbpConfig`, `QapConfig`, `AnnealConfig` here and `GfmConfig`/`GklConfig`
/// in `qbp-baselines`, so one parsed flag set configures any method.
pub trait Configure {
    /// Overwrites this config's shared knobs with the set ones in `opts`.
    fn apply_common(&mut self, opts: &CommonOpts);

    /// Reads the shared knobs back out of this config.
    fn common(&self) -> CommonOpts;

    /// Builder-style [`Configure::apply_common`].
    #[must_use]
    fn with_common(mut self, opts: &CommonOpts) -> Self
    where
        Self: Sized,
    {
        self.apply_common(opts);
        self
    }
}

/// The unified result of any [`Solver::solve`]: the fields every one of the
/// divergent outcome structs (`QbpOutcome`, `BaselineOutcome`) could supply,
/// under one name each.
#[must_use = "a solve costs real CPU time; inspect the report (or at least `feasible`)"]
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Stable name of the solver that produced this report (`"qbp"`,
    /// `"qap"`, `"gfm"`, `"gkl"`, `"anneal"`).
    pub solver: &'static str,
    /// The best assignment found.
    pub assignment: Assignment,
    /// Plain (un-embedded) objective of that assignment: the weighted
    /// wire-distance cost.
    pub objective: Cost,
    /// `yᵀQ̂y` of the assignment for the penalty-embedding solvers; `None`
    /// for the baselines, which never form `Q̂`.
    pub embedded_value: Option<Cost>,
    /// Whether the assignment satisfies capacity (C1) and timing (C2).
    pub feasible: bool,
    /// Iterations executed (Burkard iterations, FM passes, KL outer loops,
    /// or annealing steps — the solver's native unit).
    pub iterations: usize,
    /// How many components ended in a different partition than they started
    /// in (`init`-relative; counted against the solver's own random start
    /// when `init` was `None` — then `0` for solvers that do not track it).
    pub moves_applied: usize,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// The hardware-adaptive profile that configured this solve, when the
    /// driver ran auto-configuration (CLI `--auto`); `None` for explicitly
    /// configured solves. Stamped by the driver, not the solver.
    pub auto_profile: Option<qbp_core::hw::AutoProfile>,
    /// How the solve finished: to natural termination (`Completed`), or
    /// wound down early by an expired budget (`TimedOut`) or a fired cancel
    /// token (`Cancelled`). In the latter two cases the report still carries
    /// the best feasible iterate found before the cooperative check fired.
    pub status: ExecStatus,
}

/// Components whose partition differs between `init` and `final_asg`; the
/// shared "moved count" definition used by the [`Solver`] impls (including
/// the ones in `qbp-baselines`). `0` when there is no `init` to compare
/// against.
pub fn moved_from(init: Option<&Assignment>, final_asg: &Assignment) -> usize {
    match init {
        Some(start) => start
            .as_slice()
            .iter()
            .zip(final_asg.as_slice())
            .filter(|(a, b)| a != b)
            .count(),
        None => 0,
    }
}

/// A partitioning heuristic behind the unified entry point. All five
/// workspace solvers implement this, so drivers hold a `&dyn Solver` (or a
/// `Box<dyn Solver>` from the `qbp-baselines` registry) and stay
/// method-agnostic.
pub trait Solver {
    /// Stable lower-case name (matches `qbp_observe::SolverId::as_str`).
    fn name(&self) -> &'static str;

    /// Runs the heuristic from `init` (or the solver's own starting point
    /// when `None`), streaming events to `obs`, under the budget and
    /// cancellation token of `exec`.
    ///
    /// Implementations poll `exec` at their iteration boundaries. When the
    /// budget expires or the token fires, the solver winds down and returns
    /// the best feasible iterate found so far, with
    /// [`SolveReport::status`] set to the firing [`ExecStatus`] — deriving a
    /// *first* feasible iterate (the bootstrap when `init` is `None`)
    /// counts as minimum work and is not interrupted. With
    /// [`ExecCtx::unbounded`] the checks are zero-cost and the solve is
    /// byte-identical to [`Solver::solve`].
    ///
    /// # Errors
    ///
    /// Returns an error when the problem or `init` fails the solver's
    /// validation (dimension mismatch, non-QAP shape, infeasible start for
    /// the interchange baselines) or the configuration is invalid.
    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error>;

    /// [`Solver::solve_exec`] with no budget and no cancellation: runs the
    /// heuristic to natural termination.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Solver::solve_exec`].
    fn solve(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        self.solve_exec(problem, init, &ExecCtx::unbounded(), obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moved_from_counts_differing_components() {
        let start = Assignment::from_parts(vec![0, 1, 2, 3]).unwrap();
        let end = Assignment::from_parts(vec![0, 2, 2, 0]).unwrap();
        assert_eq!(moved_from(Some(&start), &end), 2);
        assert_eq!(moved_from(None, &end), 0);
    }

    #[test]
    fn common_opts_default_keeps_solver_budgets() {
        let opts = CommonOpts::default();
        assert_eq!(opts.iterations, None);
        assert_eq!(opts.stall_window, None);
        assert_eq!(opts.threads, 0);
    }
}
