//! Simulated annealing on the embedded objective — an era-appropriate
//! comparator (annealing was *the* placement/partitioning workhorse of the
//! early 1990s) and a strong reference point for the ablation benches.
//!
//! The chain moves through capacity-feasible assignments by single moves and
//! pair swaps, accepting uphill steps with probability
//! `exp(-Δ/T)` under a geometric cooling schedule. Timing constraints are
//! handled the same way the QBP solver handles them: through the penalty
//! entries of [`QMatrix`], so the chain may traverse violating states and is
//! judged by its best *feasible* visit.

use qbp_core::exec::{ExecCtx, ExecStatus};
use qbp_core::{
    check_feasibility, Assignment, ComponentId, Cost, Error, Evaluator, PartitionId, Problem,
    QMatrix,
};
use qbp_observe::{MoveKind, NoopObserver, SolveEvent, SolveObserver, SolverId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

use crate::api::{moved_from, CommonOpts, Configure, SolveReport, Solver};
use crate::qbp::{PenaltyMode, QbpOutcome};

/// Configuration for [`AnnealSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Monte-Carlo steps per temperature level.
    pub steps_per_level: usize,
    /// Number of temperature levels.
    pub levels: usize,
    /// Geometric cooling factor in `(0, 1)`.
    pub cooling: f64,
    /// Starting temperature as a multiple of the mean |Δ| sampled during a
    /// short warm-up walk (auto-calibration).
    pub start_temp_factor: f64,
    /// Penalty selection for the timing embedding.
    pub penalty: PenaltyMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            steps_per_level: 2000,
            levels: 60,
            cooling: 0.88,
            start_temp_factor: 1.5,
            penalty: PenaltyMode::Auto,
            seed: 0xA11EA1,
        }
    }
}

/// Simulated-annealing solver over the embedded objective.
#[derive(Debug, Clone, Default)]
pub struct AnnealSolver {
    config: AnnealConfig,
}

impl AnnealSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: AnnealConfig) -> Self {
        AnnealSolver { config }
    }

    /// Runs the annealing chain from `initial` (or a random assignment).
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem or the penalty configuration is invalid.
    pub fn solve(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
    ) -> Result<QbpOutcome, Error> {
        self.solve_observed(problem, initial, &mut NoopObserver)
    }

    /// [`AnnealSolver::solve`] plus observability: each temperature level is
    /// one "iteration" (`IterationStarted`/`IterationFinished`), and every
    /// Monte-Carlo proposal whose delta was actually evaluated emits a
    /// [`MoveEvaluated`](SolveEvent::MoveEvaluated) — proposals rejected
    /// up-front on capacity or triviality are not events. The chain is
    /// bit-identical for every observer.
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem or the penalty configuration is invalid.
    pub fn solve_observed(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        self.solve_observed_exec(problem, initial, &ExecCtx::unbounded(), obs)
    }

    /// [`AnnealSolver::solve_observed`] under an execution context: the
    /// chain polls `exec` at each temperature-level boundary and winds down
    /// to its best capacity-feasible visit when the budget expires or the
    /// token fires. Unbounded contexts are zero-cost and trace-identical.
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem or the penalty configuration is invalid.
    pub fn solve_observed_exec(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        let start = Instant::now();
        let q = match self.config.penalty {
            PenaltyMode::Fixed(p) => QMatrix::new(problem, p)?,
            PenaltyMode::Auto => QMatrix::with_auto_penalty(problem)?,
            PenaltyMode::Theorem1 => QMatrix::new(problem, QMatrix::theorem1_penalty(problem))?,
        };
        let eval = Evaluator::new(problem);
        let m = problem.m();
        let n = problem.n();
        let sizes: Vec<u64> = (0..n)
            .map(|j| problem.circuit().size(ComponentId::new(j)))
            .collect();
        let capacities = problem.topology().capacities().to_vec();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut current = match initial {
            Some(a) => {
                problem.validate_assignment(a)?;
                a.clone()
            }
            None => Assignment::from_fn(n, |_| PartitionId::new(rng.random_range(0..m))),
        };
        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Anneal,
            components: n,
            partitions: m,
        });
        let mut used = vec![0u64; m];
        for j in 0..n {
            used[current.part_index(j)] += sizes[j];
        }
        let mut value = q.value(&current);
        let mut best: Option<(Assignment, Cost)> = None;
        fn track_best(
            best: &mut Option<(Assignment, Cost)>,
            asg: &Assignment,
            v: Cost,
            used: &[u64],
            caps: &[u64],
        ) {
            if used.iter().zip(caps).all(|(u, c)| u <= c)
                && best.as_ref().is_none_or(|(_, bv)| v < *bv)
            {
                *best = Some((asg.clone(), v));
            }
        }
        track_best(&mut best, &current, value, &used, &capacities);

        // Warm-up: sample |Δ| of the *plain* objective to calibrate the
        // starting temperature. (Embedded deltas include penalty jumps,
        // which would set the temperature so high that the chain happily
        // shreds timing feasibility for most of the schedule.)
        let mut sum_abs = 0f64;
        let mut samples = 0;
        for _ in 0..200.min(self.config.steps_per_level) {
            let j = ComponentId::new(rng.random_range(0..n));
            let to = PartitionId::new(rng.random_range(0..m));
            let delta = eval.move_delta(&current, j, to);
            sum_abs += delta.abs() as f64;
            samples += 1;
        }
        let mean_abs = if samples > 0 { sum_abs / samples as f64 } else { 1.0 };
        let mut temperature = (mean_abs * self.config.start_temp_factor).max(1.0);

        let mut status = ExecStatus::Completed;
        let mut executed_levels = self.config.levels;
        for level in 1..=self.config.levels {
            if let Some(stop) = exec.check(level) {
                match stop {
                    ExecStatus::Cancelled => {
                        obs.on_event(&SolveEvent::Cancelled { iteration: level });
                    }
                    _ => obs.on_event(&SolveEvent::BudgetExhausted { iteration: level }),
                }
                status = stop;
                executed_levels = level - 1;
                break;
            }
            obs.on_event(&SolveEvent::IterationStarted { iteration: level });
            let best_before = best.as_ref().map(|(_, v)| *v);
            for _ in 0..self.config.steps_per_level {
                // Half moves, half swaps.
                if rng.random::<f64>() < 0.5 {
                    let j = ComponentId::new(rng.random_range(0..n));
                    let to = rng.random_range(0..m);
                    let from = current.part_index(j.index());
                    if to == from || used[to] + sizes[j.index()] > capacities[to] {
                        continue;
                    }
                    let delta = q.move_delta(&current, j, PartitionId::new(to));
                    let accepted = accept(delta, temperature, &mut rng);
                    obs.on_event(&SolveEvent::MoveEvaluated {
                        iteration: level,
                        kind: MoveKind::Shift,
                        delta,
                        accepted,
                    });
                    if accepted {
                        used[from] -= sizes[j.index()];
                        used[to] += sizes[j.index()];
                        current.move_to(j, PartitionId::new(to));
                        value += delta;
                        track_best(&mut best, &current, value, &used, &capacities);
                    }
                } else {
                    let j1 = ComponentId::new(rng.random_range(0..n));
                    let j2 = ComponentId::new(rng.random_range(0..n));
                    let (i1, i2) = (current.part_index(j1.index()), current.part_index(j2.index()));
                    if j1 == j2 || i1 == i2 {
                        continue;
                    }
                    let (s1, s2) = (sizes[j1.index()], sizes[j2.index()]);
                    if used[i1] - s1 + s2 > capacities[i1] || used[i2] - s2 + s1 > capacities[i2] {
                        continue;
                    }
                    let delta = q.swap_delta(&current, j1, j2);
                    let accepted = accept(delta, temperature, &mut rng);
                    obs.on_event(&SolveEvent::MoveEvaluated {
                        iteration: level,
                        kind: MoveKind::Swap,
                        delta,
                        accepted,
                    });
                    if accepted {
                        used[i1] = used[i1] - s1 + s2;
                        used[i2] = used[i2] - s2 + s1;
                        current.swap(j1, j2);
                        value += delta;
                        track_best(&mut best, &current, value, &used, &capacities);
                    }
                }
            }
            let improved = match (best_before, best.as_ref()) {
                (None, Some(_)) => true,
                (Some(before), Some((_, now))) => *now < before,
                _ => false,
            };
            obs.on_event(&SolveEvent::IterationFinished {
                iteration: level,
                value,
                feasible: used.iter().zip(&capacities).all(|(u, c)| u <= c),
                improved,
            });
            temperature *= self.config.cooling;
        }

        let (assignment, embedded_value) = best.unwrap_or((current, value));
        let feasible = check_feasibility(problem, &assignment).is_feasible();
        obs.on_event(&SolveEvent::SolveFinished {
            iterations: executed_levels * self.config.steps_per_level,
            value: embedded_value,
            feasible,
        });
        Ok(QbpOutcome {
            objective: eval.cost(&assignment),
            embedded_value,
            assignment,
            feasible,
            iterations: executed_levels * self.config.steps_per_level,
            history: Vec::new(),
            elapsed: start.elapsed(),
            status,
        })
    }
}

impl Configure for AnnealConfig {
    fn apply_common(&mut self, opts: &CommonOpts) {
        self.seed = opts.seed;
        if let Some(iterations) = opts.iterations {
            // The shared iteration budget maps to temperature levels; the
            // per-level step count stays a solver-specific knob.
            self.levels = iterations;
        }
        // No stall window (the chain cannot stall — rejected moves keep it
        // in place by design) and no internal threading.
    }

    fn common(&self) -> CommonOpts {
        CommonOpts {
            seed: self.seed,
            iterations: Some(self.levels),
            stall_window: None,
            threads: 1,
        }
    }
}

impl Solver for AnnealSolver {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let out = self.solve_observed_exec(problem, init, exec, obs)?;
        Ok(SolveReport {
            solver: "anneal",
            moves_applied: moved_from(init, &out.assignment),
            objective: out.objective,
            embedded_value: Some(out.embedded_value),
            feasible: out.feasible,
            iterations: out.iterations,
            elapsed: out.elapsed,
            auto_profile: None,
            assignment: out.assignment,
            status: out.status,
        })
    }
}

fn accept(delta: Cost, temperature: f64, rng: &mut StdRng) -> bool {
    delta <= 0 || rng.random::<f64>() < (-(delta as f64) / temperature).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_constrained;
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn paper_problem(cap: u64) -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, d, 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    #[test]
    fn reaches_optimum_on_paper_example() {
        let problem = paper_problem(2);
        let out = AnnealSolver::new(AnnealConfig {
            steps_per_level: 300,
            levels: 30,
            ..AnnealConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert!(out.feasible);
        let (_, opt) = exhaustive_constrained(&problem).unwrap();
        assert_eq!(out.objective, opt);
    }

    #[test]
    fn incremental_value_bookkeeping_is_exact() {
        // The chain tracks `value` incrementally; the reported embedded
        // value must match a fresh evaluation.
        let problem = paper_problem(3);
        let q = QMatrix::with_auto_penalty(&problem).unwrap();
        let out = AnnealSolver::new(AnnealConfig {
            steps_per_level: 200,
            levels: 10,
            seed: 5,
            ..AnnealConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert_eq!(q.value(&out.assignment), out.embedded_value);
    }

    #[test]
    fn respects_capacity_throughout() {
        let problem = paper_problem(1);
        let out = AnnealSolver::new(AnnealConfig {
            steps_per_level: 300,
            levels: 20,
            seed: 9,
            ..AnnealConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        // Unit capacities: the best feasible visit is a permutation-like
        // spread.
        let mut counts = [0; 4];
        for j in 0..3 {
            counts[out.assignment.part_index(j)] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let problem = paper_problem(2);
        let config = AnnealConfig {
            steps_per_level: 100,
            levels: 10,
            seed: 42,
            ..AnnealConfig::default()
        };
        let a = AnnealSolver::new(config).solve(&problem, None).unwrap();
        let b = AnnealSolver::new(config).solve(&problem, None).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn accepts_initial_assignment() {
        let problem = paper_problem(3);
        let initial = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        let out = AnnealSolver::default().solve(&problem, Some(&initial)).unwrap();
        assert!(out.feasible);
        // Never worse than a feasible start.
        let eval = Evaluator::new(&problem);
        assert!(out.objective <= eval.cost(&initial));
    }
}
