//! Exact solvers for *small* instances, used as test oracles and for the
//! empirical validation of the paper's embedding theorems:
//!
//! * [`exact_gap`] — branch-and-bound for the Generalized Assignment
//!   subproblem;
//! * [`exhaustive_qbp`] — enumerates every capacity-feasible assignment and
//!   minimizes `yᵀQ̂y`;
//! * [`exhaustive_constrained`] — enumerates every C1+C2-feasible assignment
//!   and minimizes the original objective.
//!
//! Theorem 1 predicts that the last two agree when the penalty is at least
//! the `U` bound; the integration tests exercise exactly that.

use crate::gap::GapInstance;
use qbp_core::{
    check_feasibility, Assignment, ComponentId, Cost, Evaluator, PartitionId, Problem, QMatrix,
    UsageTracker,
};

/// Exact GAP via depth-first branch-and-bound. Components are explored
/// biggest-first; the lower bound is the sum of per-component minimum costs
/// ignoring capacity (admissible).
///
/// Returns `None` when no capacity-feasible assignment exists. Exponential —
/// keep `n` small (≤ ~14).
///
/// # Panics
///
/// Panics if the instance's array lengths are inconsistent.
pub fn exact_gap(inst: &GapInstance<'_>) -> Option<(Vec<u32>, f64)> {
    assert_eq!(inst.costs.len(), inst.m * inst.n);
    assert_eq!(inst.sizes.len(), inst.n);
    assert_eq!(inst.capacities.len(), inst.m);
    let n = inst.n;
    let m = inst.m;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| inst.sizes[b].cmp(&inst.sizes[a]));
    // Per-position optimistic remainder: min cost of this job over all
    // partitions, suffix-summed.
    let min_cost: Vec<f64> = order
        .iter()
        .map(|&j| {
            (0..m)
                .map(|i| inst.costs[i + j * m])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mut suffix = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + min_cost[k];
    }

    struct Dfs<'a, 'b> {
        inst: &'a GapInstance<'b>,
        order: &'a [usize],
        suffix: &'a [f64],
        best_cost: f64,
        best: Option<Vec<u32>>,
        current: Vec<u32>,
        remaining: Vec<u64>,
    }

    impl Dfs<'_, '_> {
        fn go(&mut self, k: usize, cost: f64) {
            if cost + self.suffix[k] >= self.best_cost {
                return;
            }
            if k == self.order.len() {
                self.best_cost = cost;
                self.best = Some(self.current.clone());
                return;
            }
            let j = self.order[k];
            let size = self.inst.sizes[j];
            // Try partitions cheapest-first for better pruning.
            let mut parts: Vec<usize> = (0..self.inst.m).collect();
            parts.sort_by(|&a, &b| {
                self.inst.costs[a + j * self.inst.m]
                    .total_cmp(&self.inst.costs[b + j * self.inst.m])
            });
            for i in parts {
                if self.remaining[i] < size {
                    continue;
                }
                self.remaining[i] -= size;
                self.current[j] = i as u32;
                self.go(k + 1, cost + self.inst.costs[i + j * self.inst.m]);
                self.remaining[i] += size;
            }
        }
    }

    let mut dfs = Dfs {
        inst,
        order: &order,
        suffix: &suffix,
        best_cost: f64::INFINITY,
        best: None,
        current: vec![0; n],
        remaining: inst.capacities.to_vec(),
    };
    dfs.go(0, 0.0);
    dfs.best.map(|b| (b, dfs.best_cost))
}

/// Enumerates every assignment of the problem, yielding the capacity-feasible
/// ones to `visit`. Exponential (`Mᴺ`) — test-oracle use only.
fn for_each_capacity_feasible(problem: &Problem, mut visit: impl FnMut(&Assignment)) {
    let m = problem.m() as u64;
    let n = problem.n();
    let total = m.checked_pow(n as u32).expect("instance too large to enumerate");
    for code in 0..total {
        let mut parts = Vec::with_capacity(n);
        let mut c = code;
        for _ in 0..n {
            parts.push((c % m) as u32);
            c /= m;
        }
        let asg = Assignment::from_parts(parts).expect("non-empty");
        let usage = UsageTracker::new(problem, &asg);
        let fits = (0..problem.m()).all(|i| {
            usage.used(PartitionId::new(i)) <= problem.topology().capacity(PartitionId::new(i))
        });
        if fits {
            visit(&asg);
        }
    }
}

/// Exhaustive minimum of the *embedded* quadratic boolean program
/// `min_{y ∈ S} yᵀQ̂y` (capacity-feasible assignments only; timing handled by
/// the penalty inside `Q̂`).
///
/// Returns `None` when no capacity-feasible assignment exists.
///
/// # Panics
///
/// Panics when `Mᴺ` overflows `u64` — keep instances tiny.
pub fn exhaustive_qbp(q: &QMatrix<'_>) -> Option<(Assignment, Cost)> {
    let mut best: Option<(Assignment, Cost)> = None;
    for_each_capacity_feasible(q.problem(), |asg| {
        let v = q.value(asg);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((asg.clone(), v));
        }
    });
    best
}

/// Exhaustive minimum of the *original constrained* problem: minimizes the
/// plain objective over assignments satisfying C1 **and** C2.
///
/// Returns `None` when no fully feasible assignment exists.
///
/// # Panics
///
/// Panics when `Mᴺ` overflows `u64` — keep instances tiny.
pub fn exhaustive_constrained(problem: &Problem) -> Option<(Assignment, Cost)> {
    let eval = Evaluator::new(problem);
    let mut best: Option<(Assignment, Cost)> = None;
    for_each_capacity_feasible(problem, |asg| {
        if !check_feasibility(problem, asg).timing.is_empty() {
            return;
        }
        let v = eval.cost(asg);
        if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
            best = Some((asg.clone(), v));
        }
    });
    best
}

/// Size of the largest component, a handy bound when constructing test
/// topologies that must admit feasible solutions.
pub fn max_component_size(problem: &Problem) -> u64 {
    (0..problem.n())
        .map(|j| problem.circuit().size(ComponentId::new(j)))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::{solve_gap, GapConfig};
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    #[test]
    fn exact_gap_finds_optimum() {
        // 3 jobs, 2 partitions, tight capacities force the expensive layout.
        let costs = [0.0, 9.0, 0.0, 9.0, 0.0, 9.0]; // all prefer partition 0
        let sizes = [2, 2, 2];
        let caps = [4, 4];
        let inst = GapInstance {
            m: 2,
            n: 3,
            costs: &costs,
            sizes: &sizes,
            capacities: &caps,
        };
        let (asg, cost) = exact_gap(&inst).unwrap();
        assert_eq!(cost, 9.0);
        let zero_count = asg.iter().filter(|&&i| i == 0).count();
        assert_eq!(zero_count, 2);
    }

    #[test]
    fn exact_gap_detects_infeasibility() {
        let costs = [0.0, 0.0];
        let sizes = [5, 5];
        let caps = [6];
        let inst = GapInstance {
            m: 1,
            n: 2,
            costs: &costs,
            sizes: &sizes,
            capacities: &caps,
        };
        assert!(exact_gap(&inst).is_none());
    }

    #[test]
    fn heuristic_gap_never_beats_exact() {
        let mut state = 42u64;
        let mut next = move |range: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % range
        };
        for _ in 0..20 {
            let m = 2 + (next(3) as usize);
            let n = 3 + (next(5) as usize);
            let costs: Vec<f64> = (0..m * n).map(|_| next(50) as f64).collect();
            let sizes: Vec<u64> = (0..n).map(|_| 1 + next(8)).collect();
            let capacities: Vec<u64> = (0..m).map(|_| 6 + next(20)).collect();
            let inst = GapInstance {
                m,
                n,
                costs: &costs,
                sizes: &sizes,
                capacities: &capacities,
            };
            if let Some((_, opt)) = exact_gap(&inst) {
                let h = solve_gap(&inst, &GapConfig::default());
                if h.feasible {
                    assert!(h.cost >= opt - 1e-9, "heuristic {} < optimal {opt}", h.cost);
                }
            }
        }
    }

    #[test]
    fn exhaustive_solvers_agree_with_theorem_1() {
        // The paper's worked example; U from the Theorem-1 bound.
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, d, 1).unwrap();
        let problem = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 2).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let u = QMatrix::theorem1_penalty(&problem);
        let q = QMatrix::new(&problem, u).unwrap();
        let (easg, ev) = exhaustive_qbp(&q).unwrap();
        let (_, cv) = exhaustive_constrained(&problem).unwrap();
        assert_eq!(ev, cv);
        assert!(check_feasibility(&problem, &easg).is_feasible());
    }
}
