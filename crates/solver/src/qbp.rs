//! The generalized Burkard heuristic (§4.2–4.3 of the paper) for the
//! timing-embedded Quadratic Boolean Program
//! `min_{y ∈ S} yᵀQ̂y`, where `S` is the set of capacity-feasible
//! assignments.
//!
//! Per iteration `k`:
//!
//! 1. **STEP 3** — compute `η⁽ᵏ⁾` (a linearization of `Q̂` at the current
//!    iterate `u⁽ᵏ⁾`) and `ξ⁽ᵏ⁾ = ω·u⁽ᵏ⁾`; our `η` kernel is sparse,
//!    `O((E+T)·M)`, never materializing `Q̂` (§4.3);
//! 2. **STEP 4** — solve the Generalized Assignment Problem
//!    `z = min_{u ∈ S} η·u` (Martello–Toth-style heuristic);
//! 3. **STEP 5** — accumulate the search direction
//!    `h ← h + η / max(1, |z − ξ|)`;
//! 4. **STEP 6** — solve the GAP `min_{u ∈ S} h·u` to obtain `u⁽ᵏ⁺¹⁾`;
//! 5. **STEP 7** — keep the best `yᵀQ̂y` seen.
//!
//! The paper runs 100 iterations per circuit; quality improves with more.

use crate::api::{moved_from, CommonOpts, Configure, SolveReport, Solver};
use crate::gap::{solve_gap_observed_par, solve_gap_par, GapConfig, GapInstance, GapScratch};
use qbp_core::exec::{catch_panic, ExecCtx, ExecStatus};
use qbp_core::{
    check_feasibility, Assignment, ComponentId, Cost, Error, Evaluator, PartitionProfile, Problem,
    QMatrix,
};
use qbp_observe::{
    BatchPhase, EtaFallbackReason, NoopObserver, SolveEvent, SolveObserver, SolverId,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How the timing-violation penalty embedded in `Q̂` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum PenaltyMode {
    /// A caller-supplied constant (the paper uses 50).
    Fixed(Cost),
    /// Slightly above twice the largest single-entry base cost (default):
    /// big enough to dominate any local trade-off, small enough to avoid the
    /// numerical-accuracy concern of §3.2.
    #[default]
    Auto,
    /// The provably sufficient Theorem-1 bound `U > 2·Σ|q|` — the embedding
    /// is then unconditionally exact, at the price of very large entries.
    Theorem1,
}


/// Which linearization coefficients STEP 3 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EtaMode {
    /// `η_s = Σ_r q̂[r][s]·u[r]` — the form printed in the paper's STEP-3
    /// pseudocode (default; this is what the paper ran).
    #[default]
    Pseudocode,
    /// `η_s = Σ_r q̂[r][s]·u[r] + ω_s·u_s` — the form of the paper's eq. (3),
    /// following Balas & Mazzola's linearization.
    BalasMazzola,
}

/// Configuration of the QBP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QbpConfig {
    /// Number of Burkard iterations (paper: 100). "The more CPU time spent,
    /// the better the results."
    pub iterations: usize,
    /// Penalty selection for the timing embedding.
    pub penalty: PenaltyMode,
    /// STEP-3 linearization variant.
    pub eta_mode: EtaMode,
    /// Seed for the random initial iterate used when none is supplied.
    pub seed: u64,
    /// Shift-improvement sweeps inside each GAP subproblem solve.
    pub gap_improvement_passes: usize,
    /// Enable pairwise-swap improvement inside GAP solves (slower, slightly
    /// better subproblem optima).
    pub gap_swap_improvement: bool,
    /// Length of the recent-iterate window used to detect fixed points and
    /// short cycles (default 8). Restarts (reset `h`, re-randomize the
    /// iterate, keep the incumbent) keep the deterministic loop from burning
    /// the remaining iterations at a fixed point, so "the more CPU time
    /// spent, the better the results" (§5) holds. `0` disables stall
    /// restarts entirely and runs the literal STEPs 1–8.
    pub stall_window: usize,
    /// Polish violated GAP candidates with sequential coordinate descent on
    /// the embedded objective `yᵀQ̂y` before incumbent comparison. GAP
    /// subproblems only see timing through the penalties frozen at the
    /// current iterate, so simultaneous reassignment leaves residual
    /// violations; the monotone descent closes them. An enhancement over the
    /// paper's pseudocode; disable for the literal loop.
    pub repair_candidates: bool,
    /// Record per-iteration statistics in [`QbpOutcome::history`].
    pub track_history: bool,
    /// Worker threads: `0` (default) resolves to one per available core,
    /// `1` forces every serial path, higher values cap the pools. The budget
    /// drives both [`QbpSolver::solve_multistart`]'s run fan-out and the
    /// intra-solve η-row batches of a single solve (multistart's parallel
    /// branch pins its inner solves to `threads: 1`, so the two levels never
    /// oversubscribe). The answer is bit-identical for every setting — runs
    /// are independent and reduced in run order, and the η fan-out writes
    /// disjoint columns via `qbp_core::par`.
    pub threads: usize,
}

impl Default for QbpConfig {
    fn default() -> Self {
        QbpConfig {
            iterations: 100,
            penalty: PenaltyMode::Auto,
            eta_mode: EtaMode::Pseudocode,
            seed: 0x5EED_CAFE,
            gap_improvement_passes: 2,
            gap_swap_improvement: false,
            stall_window: STALL_WINDOW,
            repair_candidates: true,
            track_history: false,
            threads: 0,
        }
    }
}

impl QbpConfig {
    /// Whether stall restarts are active: the window must be non-zero.
    pub(crate) fn restarts_enabled(&self) -> bool {
        self.stall_window > 0
    }
}

impl Configure for QbpConfig {
    fn apply_common(&mut self, opts: &CommonOpts) {
        self.seed = opts.seed;
        if let Some(iterations) = opts.iterations {
            self.iterations = iterations;
        }
        if let Some(stall_window) = opts.stall_window {
            self.stall_window = stall_window;
        }
        self.threads = opts.threads;
    }

    fn common(&self) -> CommonOpts {
        CommonOpts {
            seed: self.seed,
            iterations: Some(self.iterations),
            stall_window: Some(self.stall_window),
            threads: self.threads,
        }
    }
}

/// Reusable buffers for [`QbpSolver::solve_with`]: the η cache with the
/// assignment it linearizes (enabling [`QMatrix::eta_update`]'s incremental
/// patch), the `f64` mirror handed to the GAP solver, the accumulated
/// direction `h`, the stall-detection fingerprint window, and scratch for the
/// GAP and descent subroutines. After the first iteration warms the buffers,
/// the solver's inner loop performs no heap allocation beyond the `O(N)`
/// assignment clones it hands to the incumbent bookkeeping.
///
/// A workspace may be reused across solves (the multistart driver runs many
/// seeds through one workspace per worker); results are bit-identical to
/// solving with a fresh workspace because the η cache records exactly which
/// assignment it reflects and every other buffer is reinitialized per solve.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    eta: Vec<Cost>,
    /// The assignment `eta` currently linearizes; `None` when the cache is
    /// cold.
    eta_source: Option<Assignment>,
    /// Incremental per-partition neighbor-weight aggregates backing full η
    /// recomputes ([`QMatrix::eta_profiled`]); `None` until the first full
    /// recompute builds it.
    profile: Option<PartitionProfile>,
    /// The assignment `profile` currently aggregates; patched forward (or
    /// rebuilt) on the next full recompute.
    profile_source: Option<Assignment>,
    /// Balas–Mazzola variant scratch: raw η plus the ω diagonal. Kept apart
    /// so the incremental cache in `eta` stays pristine.
    eta_bm: Vec<Cost>,
    eta_f: Vec<f64>,
    h: Vec<f64>,
    recent: VecDeque<u64>,
    gap: GapScratch,
    descent: DescentScratch,
}

impl SolveWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-iteration record (STEP 7's bookkeeping), for convergence studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration number, starting at 1.
    pub iteration: usize,
    /// `yᵀQ̂y` of the iterate produced in STEP 6.
    pub embedded_value: Cost,
    /// Plain objective of that iterate.
    pub objective: Cost,
    /// Directed timing-constraint violations of that iterate.
    pub timing_violations: usize,
    /// Whether STEP 6's GAP solve was capacity-feasible.
    pub capacity_feasible: bool,
    /// Whether this iterate improved the incumbent.
    pub improved: bool,
}

/// Result of a QBP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct QbpOutcome {
    /// Best assignment found (by embedded value, among capacity-feasible
    /// iterates).
    pub assignment: Assignment,
    /// `yᵀQ̂y` of [`QbpOutcome::assignment`].
    pub embedded_value: Cost,
    /// Plain objective of the assignment.
    pub objective: Cost,
    /// Whether the assignment satisfies C1 **and** C2. Per Theorem 2, when
    /// this is `true` the penalty embedding was valid for this run
    /// regardless of the penalty's magnitude.
    pub feasible: bool,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-iteration statistics (only when
    /// [`QbpConfig::track_history`] is set).
    pub history: Vec<IterationStats>,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// How the solve finished: natural termination, or wound down early by
    /// an expired budget / fired cancel token (best-so-far kept).
    pub status: ExecStatus,
}

/// Result of a warm re-solve ([`QbpSolver::solve_warm`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmOutcome {
    /// Re-solved assignment.
    pub assignment: Assignment,
    /// `yᵀQ̂y` of [`WarmOutcome::assignment`].
    pub embedded_value: Cost,
    /// Plain objective of the assignment.
    pub objective: Cost,
    /// Whether the assignment satisfies C1 **and** C2.
    pub feasible: bool,
    /// Whether the localized pass had to escalate to a capped full solve.
    pub escalated: bool,
    /// Wall-clock time of the re-solve.
    pub elapsed: Duration,
    /// How the re-solve finished (escalation solves honor the caller's
    /// budget and cancellation token).
    pub status: ExecStatus,
}

/// Iteration cap of the first escalation rung of [`QbpSolver::solve_warm`]:
/// enough Burkard iterations to re-place a localized disturbance, far below
/// the paper's 100-iteration cold budget.
pub(crate) const WARM_ESCALATION_ITERATIONS: usize = 12;

/// The generalized Burkard heuristic solver.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder};
/// use qbp_solver::{QbpConfig, QbpSolver};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 10);
/// let b = circuit.add_component("b", 20);
/// let c = circuit.add_component("c", 15);
/// circuit.add_wires(a, b, 5)?;
/// circuit.add_wires(b, c, 2)?;
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 30)?).build()?;
///
/// let outcome = QbpSolver::new(QbpConfig::default()).solve(&problem, None)?;
/// assert!(outcome.feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct QbpSolver {
    config: QbpConfig,
}

impl QbpSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: QbpConfig) -> Self {
        QbpSolver { config }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &QbpConfig {
        &self.config
    }

    fn build_qmatrix<'p>(&self, problem: &'p Problem) -> Result<QMatrix<'p>, Error> {
        match self.config.penalty {
            PenaltyMode::Fixed(p) => QMatrix::new(problem, p),
            PenaltyMode::Auto => QMatrix::with_auto_penalty(problem),
            PenaltyMode::Theorem1 => QMatrix::new(problem, QMatrix::theorem1_penalty(problem)),
        }
    }

    /// Runs the heuristic. `initial` seeds the first iterate `u⁽¹⁾`; when
    /// `None`, a uniformly random assignment is used — §5 notes QBP
    /// "maintained the same kind of good results from any arbitrary initial
    /// solution" (the initial iterate need not be feasible).
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem's dimensions or the penalty configuration is invalid.
    pub fn solve(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
    ) -> Result<QbpOutcome, Error> {
        self.solve_with(problem, initial, &mut SolveWorkspace::new())
    }

    /// [`QbpSolver::solve`] with caller-owned scratch buffers — the
    /// allocation-free variant for drivers that solve many times (multistart,
    /// benchmarks). The outcome is bit-identical to [`QbpSolver::solve`]
    /// regardless of the workspace's prior contents.
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem's dimensions or the penalty configuration is invalid.
    pub fn solve_with(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        ws: &mut SolveWorkspace,
    ) -> Result<QbpOutcome, Error> {
        self.solve_observed(problem, initial, ws, &mut NoopObserver)
    }

    /// [`QbpSolver::solve_with`] plus observability: streams the iteration
    /// lifecycle (η recomputes vs. incremental patches, STEP 4/6 GAP solves,
    /// penalty hits, repair sweeps, stall restarts, incumbent improvements)
    /// to `obs`. The solve itself is bit-identical for every observer — the
    /// observer only watches.
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem's dimensions or the penalty configuration is invalid.
    pub fn solve_observed(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        ws: &mut SolveWorkspace,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        self.solve_observed_exec(problem, initial, ws, &ExecCtx::unbounded(), obs)
    }

    /// [`QbpSolver::solve_observed`] under an execution context: the
    /// Burkard loop polls `exec` at each iteration boundary and winds down
    /// to the best-so-far incumbent when the budget expires or the token
    /// fires. When the context is bounded and no feasible incumbent exists
    /// yet, the `B = 0` feasibility bootstrap ([`QbpSolver::find_feasible`])
    /// runs first as uninterruptible minimum work, so a budgeted solve on a
    /// feasible instance returns a *feasible* best-so-far even when the
    /// budget expires before the first improvement iteration. With
    /// [`ExecCtx::unbounded`] the checks short-circuit and the solve —
    /// including its event trace — is byte-identical to
    /// [`QbpSolver::solve_observed`].
    ///
    /// # Errors
    ///
    /// Returns an error when the initial assignment does not match the
    /// problem's dimensions or the penalty configuration is invalid.
    pub fn solve_observed_exec(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        ws: &mut SolveWorkspace,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        let start = Instant::now();
        let q = self.build_qmatrix(problem)?;
        let eval = Evaluator::new(problem);
        let m = problem.m();
        let n = problem.n();
        let sizes: Vec<u64> = (0..n)
            .map(|j| problem.circuit().size(ComponentId::new(j)))
            .collect();
        let capacities = problem.topology().capacities().to_vec();
        let gap_config = GapConfig {
            improvement_passes: self.config.gap_improvement_passes,
            swap_improvement: self.config.gap_swap_improvement,
        };

        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Qbp,
            components: n,
            partitions: m,
        });

        // STEP 1 & 2: bounds ω, initial iterate, incumbent.
        let omega = q.omega();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut u = match initial {
            Some(a) => {
                problem.validate_assignment(a)?;
                a.clone()
            }
            None => Assignment::from_fn(n, |_| {
                qbp_core::PartitionId::new(rng.random_range(0..m))
            }),
        };
        let mut best: Option<(Assignment, Cost)> = None;
        let consider = |asg: &Assignment,
                            value: Cost,
                            best: &mut Option<(Assignment, Cost)>|
         -> bool {
            if best.as_ref().is_none_or(|(_, bv)| value < *bv) {
                *best = Some((asg.clone(), value));
                true
            } else {
                false
            }
        };
        // Seed the incumbent only if u is capacity-feasible; a fully
        // feasible start also seeds the projection anchor.
        let mut anchor: Option<(Assignment, Cost)> = None;
        if capacity_feasible(&u, &sizes, &capacities, m) {
            let v = q.value(&u);
            consider(&u, v, &mut best);
            if q.violation_count(&u) == 0 {
                anchor = Some((u.clone(), v));
            }
        }
        // Bounded solves guarantee a feasible best-so-far before the budget
        // can fire: when nothing feasible seeds the incumbent, the B = 0
        // bootstrap runs to completion first as uninterruptible minimum
        // work (see `docs/ROBUSTNESS.md`).
        let mut status = ExecStatus::Completed;
        if !exec.is_unbounded() && anchor.is_none() {
            if let Some(feas) = self.find_feasible(problem)? {
                let v = q.value(&feas);
                consider(&feas, v, &mut best);
                anchor = Some((feas, v));
            }
        }

        let mn = m * n;
        ws.h.clear();
        ws.h.resize(mn, 0.0);
        ws.eta_f.clear();
        ws.eta_f.resize(mn, 0.0);
        ws.recent.clear();
        let mut history = Vec::new();
        // Intra-solve thread budget for the full-η fan-out. Multistart's
        // parallel branch hands each run `threads: 1`, so run-level and
        // η-level parallelism never oversubscribe each other.
        let intra_threads = qbp_core::par::effective_threads(self.config.threads);

        let mut executed = self.config.iterations;
        // Whether the previous iteration ended in a stall reset — the next
        // η fallback is then attributed to the reset, not to ordinary GAP
        // drift (the restart replaces the iterate wholesale by design).
        let mut after_reset = false;
        for k in 1..=self.config.iterations {
            if let Some(stop) = exec.check(k) {
                match stop {
                    ExecStatus::Cancelled => {
                        obs.on_event(&SolveEvent::Cancelled { iteration: k });
                    }
                    _ => obs.on_event(&SolveEvent::BudgetExhausted { iteration: k }),
                }
                status = stop;
                executed = k - 1;
                break;
            }
            obs.on_event(&SolveEvent::IterationStarted { iteration: k });
            // STEP 3: the η cache records which assignment it linearizes, so
            // successive iterates pay only for the components that moved
            // (bit-identical to a fresh computation; see
            // [`QMatrix::eta_update`]). Full recomputes go through the
            // embedded partition profile: O(M) aggregated axpys per column
            // instead of one walk per adjacency record.
            // When the patch path is skipped, attribute the full recompute
            // to one of three causes (surfaced as an `EtaFallback` event so
            // η regressions stay diagnosable): no usable cached surface
            // (cold), the iterate was just replaced by a stall reset (the
            // random restart relocates nearly every component by design),
            // or the GAP step genuinely moved more than half the
            // components.
            let fallback = match ws.eta_source.as_ref() {
                None => Some(EtaFallbackReason::Cold),
                Some(prev) => {
                    if ws.eta.len() != mn {
                        Some(EtaFallbackReason::Cold)
                    } else if count_moved(prev, &u) <= n / 2 {
                        None
                    } else if after_reset {
                        Some(EtaFallbackReason::Stall)
                    } else {
                        Some(EtaFallbackReason::MovedFraction)
                    }
                }
            };
            after_reset = false;
            let patchable = fallback.is_none();
            if let Some(reason) = fallback {
                obs.on_event(&SolveEvent::EtaFallback {
                    iteration: k,
                    reason,
                });
            }
            // Sync the embedded profile every iteration, not just when the
            // η cache misses: keeping it in lockstep with the iterate means
            // its source never drifts more than one iteration behind, so the
            // O(moved·deg) patch path stays under the N/2 rebuild threshold
            // whenever the iterates themselves are close.
            let (rebuilt, moved, sync_chunks) = sync_profile(&q, ws, &u, intra_threads);
            if sync_chunks > 1 {
                obs.on_event(&SolveEvent::ParallelBatch {
                    iteration: k,
                    phase: BatchPhase::ProfileSync,
                    tasks: sync_chunks,
                    threads: intra_threads,
                });
            }
            obs.on_event(&SolveEvent::ProfileUpdated {
                iteration: k,
                rebuilt,
                moved,
            });
            let incremental = if patchable {
                let prev = ws.eta_source.as_ref().expect("checked above");
                let patched = q.eta_update(prev, &u, &mut ws.eta);
                debug_assert!(patched, "eta_update must patch below the N/2 threshold");
                patched
            } else {
                let tasks = q.eta_profiled_par(
                    &u,
                    ws.profile.as_ref().expect("sync_profile installs a profile"),
                    &mut ws.eta,
                    intra_threads,
                );
                if tasks > 1 {
                    obs.on_event(&SolveEvent::ParallelBatch {
                        iteration: k,
                        phase: BatchPhase::Eta,
                        tasks,
                        threads: intra_threads,
                    });
                }
                false
            };
            obs.on_event(&SolveEvent::EtaComputed {
                iteration: k,
                incremental,
            });
            // Fault-injection point: a corrupted η surface misguides the
            // subproblem (search quality degrades) but can never produce a
            // silent wrong answer — every candidate's objective is
            // recomputed from `q` itself, never read off η.
            if qbp_core::fault::fault_point(qbp_core::fault::POINT_ETA_KERNEL).is_corrupt() {
                for v in ws.eta.iter_mut() {
                    *v = v.wrapping_mul(3).wrapping_add(1);
                }
            }
            let eta_k: &[Cost] = if self.config.eta_mode == EtaMode::BalasMazzola {
                // The ω diagonal is iterate-dependent; add it on a scratch
                // copy so the incremental cache stays the raw η.
                ws.eta_bm.clear();
                ws.eta_bm.extend_from_slice(&ws.eta);
                for j in 0..n {
                    let r = u.part_index(j) + j * m;
                    ws.eta_bm[r] += omega[r];
                }
                &ws.eta_bm
            } else {
                &ws.eta
            };
            let xi = q.xi(&omega, &u);
            for (dst, &src) in ws.eta_f.iter_mut().zip(eta_k.iter()) {
                *dst = src as f64;
            }
            let inst = GapInstance {
                m,
                n,
                costs: &ws.eta_f,
                sizes: &sizes,
                capacities: &capacities,
            };
            // STEP 4: z = min_{u ∈ S} η·u. Besides providing z, the
            // minimizer is the Gauss–Seidel candidate "place every component
            // optimally against the current iterate" — evaluating it for the
            // incumbent is nearly free and often catches consistent
            // (timing-clean) solutions the h-driven STEP 6 skips past.
            let step4 =
                solve_gap_observed_par(&inst, &gap_config, &mut ws.gap, k, intra_threads, obs);
            let z = step4.cost;
            if step4.feasible {
                let mut step4_asg = Assignment::from_parts(step4.assignment)
                    .expect("GAP returns one entry per component");
                if self.config.repair_candidates && q.violation_count(&step4_asg) > 0 {
                    let cleaned = embedded_descent(
                        &q, &mut step4_asg, &sizes, &capacities, 4, intra_threads,
                        &mut ws.descent,
                    );
                    if ws.descent.par_tasks > 1 {
                        obs.on_event(&SolveEvent::ParallelBatch {
                            iteration: k,
                            phase: BatchPhase::Repair,
                            tasks: ws.descent.par_tasks,
                            threads: intra_threads,
                        });
                    }
                    obs.on_event(&SolveEvent::RepairApplied {
                        iteration: k,
                        cleaned,
                    });
                }
                let v4 = q.value(&step4_asg);
                consider(&step4_asg, v4, &mut best);
                if self.config.repair_candidates {
                    promote_candidate(
                        &q, &step4_asg, v4, &sizes, &capacities, &mut anchor, &mut best,
                        intra_threads, &mut ws.descent,
                    );
                }
            }
            // STEP 5: accumulate direction.
            let scale = (z - xi as f64).abs().max(1.0);
            for (hr, &e) in ws.h.iter_mut().zip(eta_k.iter()) {
                *hr += e as f64 / scale;
            }
            // STEP 6: next iterate from the accumulated direction.
            let h_inst = GapInstance {
                m,
                n,
                costs: &ws.h,
                sizes: &sizes,
                capacities: &capacities,
            };
            let next =
                solve_gap_observed_par(&h_inst, &gap_config, &mut ws.gap, k, intra_threads, obs);
            let next_asg = Assignment::from_parts(next.assignment.clone())
                .expect("GAP returns one entry per component");
            // STEP 7: track the best capacity-feasible iterate by yᵀQ̂y
            // (after an optional repair polish on a *copy* — the raw iterate
            // drives the next iteration, as in the paper).
            let value = q.value(&next_asg);
            let violations = q.violation_count(&next_asg);
            if violations > 0 {
                obs.on_event(&SolveEvent::PenaltyHits {
                    iteration: k,
                    violations,
                });
            }
            let improved = if next.feasible {
                let mut improved = consider(&next_asg, value, &mut best);
                if self.config.repair_candidates {
                    if violations > 0 {
                        let mut polished = next_asg.clone();
                        let cleaned = embedded_descent(
                            &q, &mut polished, &sizes, &capacities, 4, intra_threads,
                            &mut ws.descent,
                        );
                        if ws.descent.par_tasks > 1 {
                            obs.on_event(&SolveEvent::ParallelBatch {
                                iteration: k,
                                phase: BatchPhase::Repair,
                                tasks: ws.descent.par_tasks,
                                threads: intra_threads,
                            });
                        }
                        obs.on_event(&SolveEvent::RepairApplied {
                            iteration: k,
                            cleaned,
                        });
                        improved |= consider(&polished, q.value(&polished), &mut best);
                        let pv = q.value(&polished);
                        improved |= promote_candidate(
                            &q, &polished, pv, &sizes, &capacities, &mut anchor, &mut best,
                            intra_threads, &mut ws.descent,
                        );
                    } else {
                        improved |= promote_candidate(
                            &q, &next_asg, value, &sizes, &capacities, &mut anchor, &mut best,
                            intra_threads, &mut ws.descent,
                        );
                    }
                }
                improved
            } else {
                false
            };
            if self.config.track_history {
                history.push(IterationStats {
                    iteration: k,
                    embedded_value: value,
                    objective: eval.cost(&next_asg),
                    timing_violations: violations,
                    capacity_feasible: next.feasible,
                    improved,
                });
            }
            obs.on_event(&SolveEvent::IterationFinished {
                iteration: k,
                value,
                feasible: next.feasible,
                improved,
            });
            let fingerprint = assignment_fingerprint(&next_asg);
            if self.config.restarts_enabled() && ws.recent.contains(&fingerprint) {
                // Fixed point or short cycle: η, h and the GAP answers would
                // repeat. Diversify from a fresh random iterate; the
                // incumbent is kept by STEP 7's bookkeeping.
                obs.on_event(&SolveEvent::StallReset { iteration: k });
                after_reset = true;
                ws.h.fill(0.0);
                ws.recent.clear();
                let fresh = Assignment::from_fn(n, |_| {
                    qbp_core::PartitionId::new(rng.random_range(0..m))
                });
                ws.eta_source = Some(std::mem::replace(&mut u, fresh));
            } else {
                if ws.recent.len() >= self.config.stall_window.max(1) {
                    ws.recent.pop_front();
                }
                ws.recent.push_back(fingerprint);
                ws.eta_source = Some(std::mem::replace(&mut u, next_asg));
            }
        }

        let (assignment, embedded_value) = best.unwrap_or_else(|| {
            let v = q.value(&u);
            (u.clone(), v)
        });
        let feasible = check_feasibility(problem, &assignment).is_feasible();
        obs.on_event(&SolveEvent::SolveFinished {
            iterations: executed,
            value: embedded_value,
            feasible,
        });
        Ok(QbpOutcome {
            objective: eval.cost(&assignment),
            embedded_value,
            assignment,
            feasible,
            iterations: executed,
            history,
            elapsed: start.elapsed(),
            status,
        })
    }

    /// Runs [`QbpSolver::solve`] from `runs` different seeds and returns the
    /// best outcome (feasible outcomes strictly preferred; ties broken by
    /// embedded value, then by lowest run index). The iteration budget of
    /// each run is the configured one — total work scales linearly with
    /// `runs`.
    ///
    /// Runs are fanned across a [`std::thread::scope`] worker pool sized by
    /// [`QbpConfig::threads`] (`0` = one worker per available core, capped at
    /// `runs`). Each run is an independent deterministic solve of its derived
    /// seed, workers claim run indices from a shared counter, and the winner
    /// is reduced **in run order** after all runs complete — so the returned
    /// outcome is bit-identical to the serial execution (`threads == 1`)
    /// for any thread count, differing only in wall-clock `elapsed`.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-run-index solver error; `runs == 0` is an
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (which the solver itself never
    /// does for validated inputs).
    pub fn solve_multistart(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        runs: usize,
    ) -> Result<QbpOutcome, Error> {
        self.solve_multistart_observed(problem, initial, runs, &mut NoopObserver)
    }

    /// [`QbpSolver::solve_multistart`] plus observability. Per-iteration
    /// events of the individual runs are **not** streamed (workers race, and
    /// interleaving their streams would make traces scheduling-dependent);
    /// instead one [`SolveEvent::RunCompleted`] per run is emitted in run
    /// order after all runs finish, bracketed by `SolveStarted` /
    /// `SolveFinished`. The trace is therefore bit-identical for every
    /// thread count, like the answer itself.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-run-index solver error; `runs == 0` is an
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (which the solver itself never
    /// does for validated inputs).
    pub fn solve_multistart_observed(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        runs: usize,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        self.solve_multistart_exec(problem, initial, runs, &ExecCtx::unbounded(), obs)
    }

    /// [`QbpSolver::solve_multistart_observed`] under an execution context,
    /// with worker-panic isolation. Each run is wrapped in
    /// [`catch_panic`], so one poisoned run surfaces as a typed
    /// [`Error::Internal`] — reported as a [`SolveEvent::WorkerPanicked`] in
    /// run order — while the surviving runs' results are reduced normally;
    /// the error is only propagated when *no* run survives. Run 0 always
    /// executes (minimum work); before each later run the deadline and
    /// token are re-checked and remaining runs are skipped once either
    /// fires. The returned outcome's status is the merge of the stop cause
    /// and every surviving run's own status.
    ///
    /// # Errors
    ///
    /// `runs == 0` is an error; validation errors propagate at the lowest
    /// failing run index; [`Error::Internal`] only when every run panicked.
    pub fn solve_multistart_exec(
        &self,
        problem: &Problem,
        initial: Option<&Assignment>,
        runs: usize,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<QbpOutcome, Error> {
        if runs == 0 {
            return Err(Error::NegativeValue {
                what: "multistart run count",
                value: 0,
            });
        }
        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Qbp,
            components: problem.n(),
            partitions: problem.m(),
        });
        let threads = self.effective_threads(runs);
        // Gate for *starting* new runs: deadline and token only — the
        // iteration cap belongs to the runs' own Burkard loops.
        let run_gate = exec.uncapped();
        let mut slots: Vec<Option<Result<QbpOutcome, Error>>> = Vec::new();
        slots.resize_with(runs, || None);
        let mut stopped = ExecStatus::Completed;
        if threads <= 1 {
            let mut ws = SolveWorkspace::new();
            for (r, slot) in slots.iter_mut().enumerate() {
                if r > 0 {
                    if let Some(stop) = run_gate.check(1) {
                        stopped = stop;
                        break;
                    }
                }
                let solver = QbpSolver::new(self.run_config(r));
                let out = catch_panic(|| {
                    solver.solve_observed_exec(problem, initial, &mut ws, exec, &mut NoopObserver)
                })
                .and_then(|r| r);
                let abort = matches!(out, Err(ref e) if !matches!(e, Error::Internal { .. }));
                *slot = Some(out);
                if abort {
                    break;
                }
            }
        } else {
            let counter = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let counter = &counter;
                let run_gate = &run_gate;
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut ws = SolveWorkspace::new();
                            let mut local = Vec::new();
                            let mut stop_seen = None;
                            loop {
                                let r = counter.fetch_add(1, Ordering::Relaxed);
                                if r >= runs {
                                    break;
                                }
                                if r > 0 {
                                    if let Some(stop) = run_gate.check(1) {
                                        stop_seen = Some(stop);
                                        break;
                                    }
                                }
                                // Inner solves run strictly serial: the run
                                // fan-out already owns the thread budget.
                                let solver = QbpSolver::new(QbpConfig {
                                    threads: 1,
                                    ..self.run_config(r)
                                });
                                let out = catch_panic(|| {
                                    solver.solve_observed_exec(
                                        problem,
                                        initial,
                                        &mut ws,
                                        exec,
                                        &mut NoopObserver,
                                    )
                                })
                                .and_then(|r| r);
                                local.push((r, out));
                            }
                            (local, stop_seen)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (local, stop_seen) =
                        handle.join().expect("multistart worker panicked");
                    for (r, out) in local {
                        slots[r] = Some(out);
                    }
                    if let Some(stop) = stop_seen {
                        stopped = stopped.merge(stop);
                    }
                }
            });
        }
        let mut best: Option<QbpOutcome> = None;
        let mut status = stopped;
        let mut first_panic: Option<Error> = None;
        for (r, slot) in slots.into_iter().enumerate() {
            match slot {
                // Run never started: the budget fired first.
                None => {}
                Some(Ok(out)) => {
                    status = status.merge(out.status);
                    obs.on_event(&SolveEvent::RunCompleted {
                        run: r,
                        value: out.embedded_value,
                        feasible: out.feasible,
                    });
                    if Self::outcome_improves(&out, best.as_ref()) {
                        best = Some(out);
                    }
                }
                Some(Err(e @ Error::Internal { .. })) => {
                    obs.on_event(&SolveEvent::WorkerPanicked { run: r });
                    if first_panic.is_none() {
                        first_panic = Some(e);
                    }
                }
                Some(Err(e)) => return Err(e),
            }
        }
        let Some(mut best) = best else {
            return Err(first_panic.unwrap_or(Error::Internal {
                message: "no multistart run produced an outcome".into(),
            }));
        };
        best.status = status;
        obs.on_event(&SolveEvent::SolveFinished {
            iterations: self.config.iterations * runs,
            value: best.embedded_value,
            feasible: best.feasible,
        });
        Ok(best)
    }

    /// The per-run config of multistart run `r`: the same knobs under a
    /// deterministically derived seed.
    fn run_config(&self, r: usize) -> QbpConfig {
        QbpConfig {
            seed: self.config.seed.wrapping_add(r as u64).wrapping_mul(0x9E37_79B9),
            ..self.config
        }
    }

    /// The serial incumbent rule: feasible beats infeasible, then lower
    /// embedded value wins; on full ties the earlier run is kept (callers
    /// iterate in run order).
    fn outcome_improves(out: &QbpOutcome, best: Option<&QbpOutcome>) -> bool {
        match best {
            None => true,
            Some(b) => {
                (out.feasible, std::cmp::Reverse(out.embedded_value))
                    > (b.feasible, std::cmp::Reverse(b.embedded_value))
            }
        }
    }

    /// Resolves [`QbpConfig::threads`] against the machine and the run
    /// count.
    fn effective_threads(&self, runs: usize) -> usize {
        let hw = match self.config.threads {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            t => t,
        };
        hw.min(runs).max(1)
    }

    /// Produces an initial *feasible* solution by solving the `B = 0`
    /// feasibility problem (§5: "the fastest way to obtain an initial
    /// feasible solution is to use QBP algorithm with matrix B set to all
    /// zeros. This will generate an initial feasible solution in a few
    /// iterations"). With `B = 0` the accumulated direction `h` adds
    /// nothing, so the loop degenerates to the pure alternation
    /// `u ← GAP(η(u))` — each round re-places every component against its
    /// partners' frozen positions, driving the penalty count down — plus the
    /// repair sweep and cycle-detected random restarts. Returns `None` when
    /// the iteration budget ends without a fully feasible assignment.
    ///
    /// The result is deliberately *wire-length-blind*: it is the paper's
    /// "initial solution" for the method comparison, not an optimized one.
    ///
    /// # Errors
    ///
    /// Propagates penalty-configuration errors.
    pub fn find_feasible(&self, problem: &Problem) -> Result<Option<Assignment>, Error> {
        let feas = problem.feasibility_problem();
        let q = match self.config.penalty {
            PenaltyMode::Fixed(p) => QMatrix::new(&feas, p)?,
            PenaltyMode::Auto => QMatrix::with_auto_penalty(&feas)?,
            PenaltyMode::Theorem1 => QMatrix::new(&feas, QMatrix::theorem1_penalty(&feas))?,
        };
        let _eval = Evaluator::new(&feas);
        let m = feas.m();
        let n = feas.n();
        let sizes: Vec<u64> = (0..n)
            .map(|j| feas.circuit().size(ComponentId::new(j)))
            .collect();
        let capacities = feas.topology().capacities().to_vec();
        let gap_config = GapConfig {
            improvement_passes: self.config.gap_improvement_passes,
            swap_improvement: false,
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xB0);
        let mut u = Assignment::from_fn(n, |_| {
            qbp_core::PartitionId::new(rng.random_range(0..m))
        });
        let mut ws = SolveWorkspace::new();
        ws.eta_f.resize(m * n, 0.0);
        let intra_threads = qbp_core::par::effective_threads(self.config.threads);
        let budget = self.config.iterations.max(30);
        for _ in 0..budget {
            match ws.eta_source.as_ref() {
                Some(prev) => {
                    q.eta_update(prev, &u, &mut ws.eta);
                }
                None => q.eta(&u, &mut ws.eta),
            }
            for (dst, &src) in ws.eta_f.iter_mut().zip(ws.eta.iter()) {
                *dst = src as f64;
            }
            let inst = GapInstance {
                m,
                n,
                costs: &ws.eta_f,
                sizes: &sizes,
                capacities: &capacities,
            };
            let (sol, _) = solve_gap_par(&inst, &gap_config, &mut ws.gap, intra_threads);
            let mut next = Assignment::from_parts(sol.assignment)
                .expect("GAP returns one entry per component");
            if sol.feasible
                && (q.violation_count(&next) == 0
                    || embedded_descent(
                        &q,
                        &mut next,
                        &sizes,
                        &capacities,
                        12,
                        intra_threads,
                        &mut ws.descent,
                    ))
            {
                debug_assert!(check_feasibility(problem, &next).is_feasible());
                return Ok(Some(next));
            }
            let fp = assignment_fingerprint(&next);
            if ws.recent.contains(&fp) {
                ws.recent.clear();
                let fresh = Assignment::from_fn(n, |_| {
                    qbp_core::PartitionId::new(rng.random_range(0..m))
                });
                ws.eta_source = Some(std::mem::replace(&mut u, fresh));
            } else {
                if ws.recent.len() >= STALL_WINDOW {
                    ws.recent.pop_front();
                }
                ws.recent.push_back(fp);
                ws.eta_source = Some(std::mem::replace(&mut u, next));
            }
        }
        Ok(None)
    }

    /// Warm re-solve for incremental (ECO) flows: repairs `initial` around
    /// the `dirty` component set instead of solving from scratch.
    ///
    /// The ladder has three rungs, each only climbed when the previous one
    /// leaves the assignment infeasible:
    ///
    /// 1. **Localized descent** — sequential coordinate descent on `yᵀQ̂y`
    ///    restricted to the dirty components and their one-hop neighborhood
    ///    (wires *and* timing constraints). Most small deltas resolve here in
    ///    O(dirty·deg·M), which is what makes an ECO edit stream orders of
    ///    magnitude cheaper than cold solves.
    /// 2. **Capped full solve** — the regular Burkard loop seeded from the
    ///    polished assignment, capped at [`WARM_ESCALATION_ITERATIONS`]
    ///    iterations.
    /// 3. **Full-budget solve** — the configured cold budget, as a last
    ///    resort.
    ///
    /// The result of the highest rung climbed is returned (a later rung's
    /// answer is only preferred when it is feasible or strictly better), with
    /// [`WarmOutcome::escalated`] reporting whether rung 2 or 3 ran. `dirty`
    /// may contain duplicates and out-of-range indices are ignored; an empty
    /// `dirty` set still verifies (and if needed repairs) the assignment.
    ///
    /// # Errors
    ///
    /// Returns an error when `initial` does not match the problem's
    /// dimensions or the penalty configuration is invalid.
    pub fn solve_warm(
        &self,
        problem: &Problem,
        initial: &Assignment,
        dirty: &[usize],
        obs: &mut dyn SolveObserver,
    ) -> Result<WarmOutcome, Error> {
        self.solve_warm_exec(problem, initial, dirty, &ExecCtx::unbounded(), obs)
    }

    /// [`QbpSolver::solve_warm`] under an execution context. Rung 1 (the
    /// localized descent) is bounded work and always runs to completion;
    /// the rung-2/3 escalation solves poll `exec` like any other Burkard
    /// solve and wind down to their best-so-far when it fires.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QbpSolver::solve_warm`].
    pub fn solve_warm_exec(
        &self,
        problem: &Problem,
        initial: &Assignment,
        dirty: &[usize],
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<WarmOutcome, Error> {
        let start = Instant::now();
        problem.validate_assignment(initial)?;
        let q = self.build_qmatrix(problem)?;
        let eval = Evaluator::new(problem);
        let n = problem.n();
        let sizes: Vec<u64> = (0..n)
            .map(|j| problem.circuit().size(ComponentId::new(j)))
            .collect();
        let capacities = problem.topology().capacities().to_vec();
        let mut asg = initial.clone();
        let mut scratch = DescentScratch::default();

        // Rung 1: localized descent over dirty + one-hop frontier.
        let circuit = problem.circuit();
        let timing = problem.timing();
        let mut active = vec![false; n];
        for &j in dirty {
            if j >= n {
                continue;
            }
            active[j] = true;
            let cj = ComponentId::new(j);
            for (o, _) in circuit.out_connections(cj) {
                active[o.index()] = true;
            }
            for (o, _) in circuit.in_connections(cj) {
                active[o.index()] = true;
            }
            for (o, _) in timing.constraints_from(cj) {
                active[o.index()] = true;
            }
            for (o, _) in timing.constraints_into(cj) {
                active[o.index()] = true;
            }
        }
        let intra_threads = qbp_core::par::effective_threads(self.config.threads);
        localized_descent(
            &q,
            &mut asg,
            &sizes,
            &capacities,
            &active,
            6,
            intra_threads,
            &mut scratch,
        );
        if check_feasibility(problem, &asg).is_feasible() {
            // The disturbance is repaired; a short global timing-clean
            // polish catches improving moves just beyond the dirty frontier
            // (two O(N·deg·M) sweeps — still a small fraction of one cold
            // Burkard iteration's GAP solves).
            clean_descent(&q, &mut asg, &sizes, &capacities, 2, intra_threads, &mut scratch);
            let embedded_value = q.value(&asg);
            return Ok(WarmOutcome {
                embedded_value,
                objective: eval.cost(&asg),
                assignment: asg,
                feasible: true,
                escalated: false,
                elapsed: start.elapsed(),
                status: ExecStatus::Completed,
            });
        }

        // Rung 2: capped full solve seeded from the polished assignment.
        let capped = QbpConfig {
            iterations: WARM_ESCALATION_ITERATIONS.min(self.config.iterations.max(1)),
            ..self.config
        };
        let mut out = QbpSolver::new(capped).solve_observed_exec(
            problem,
            Some(&asg),
            &mut SolveWorkspace::new(),
            exec,
            obs,
        )?;

        // Rung 3: full-budget solve, only when the capped one stays
        // infeasible, there is budget beyond the cap, and the context has
        // not already wound rung 2 down.
        if !out.feasible
            && self.config.iterations > capped.iterations
            && out.status.is_completed()
        {
            let full = self.solve_observed_exec(
                problem,
                Some(&asg),
                &mut SolveWorkspace::new(),
                exec,
                obs,
            )?;
            if full.feasible || full.embedded_value < out.embedded_value {
                out = full;
            }
        }
        Ok(WarmOutcome {
            assignment: out.assignment,
            embedded_value: out.embedded_value,
            objective: out.objective,
            feasible: out.feasible,
            escalated: true,
            elapsed: start.elapsed(),
            status: out.status,
        })
    }
}

impl Solver for QbpSolver {
    fn name(&self) -> &'static str {
        "qbp"
    }

    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let out =
            self.solve_observed_exec(problem, init, &mut SolveWorkspace::new(), exec, obs)?;
        Ok(SolveReport {
            solver: "qbp",
            moves_applied: moved_from(init, &out.assignment),
            objective: out.objective,
            embedded_value: Some(out.embedded_value),
            feasible: out.feasible,
            iterations: out.iterations,
            elapsed: out.elapsed,
            auto_profile: None,
            assignment: out.assignment,
            status: out.status,
        })
    }
}

/// Scratch buffers for the descent and projection helpers, reused across the
/// hundreds of polish calls a solve makes. Every buffer is reinitialized on
/// entry, so reuse never changes results.
#[derive(Debug, Clone, Default)]
pub(crate) struct DescentScratch {
    used: Vec<u64>,
    blocked: Vec<bool>,
    hot: Vec<bool>,
    deltas: Vec<Cost>,
    timing_ok: Vec<bool>,
    hot_list: Vec<usize>,
    touch: qbp_core::moves::TouchLog,
    /// Largest worker fan used by the last descent call (`1` = fully
    /// serial); read by callers to emit repair-phase `ParallelBatch` events.
    pub(crate) par_tasks: usize,
}

/// Minimum move-phase workload (`N·M` delta cells) before [`descent_impl`]
/// fans its evaluation across worker threads; below this the spawn overhead
/// dwarfs the scan. Depends only on the instance, never on the thread
/// budget — and the fan cannot change results either way.
const DESCENT_PAR_MIN_CELLS: usize = 4096;

/// Marks `j` and every component whose move delta depends on `j`'s position
/// (wire neighbors plus timing partners) as touched. After committing a move
/// of `j`, exactly these components' frozen speculative deltas are stale.
fn touch_dependents(touch: &mut qbp_core::moves::TouchLog, problem: &Problem, j: usize) {
    touch.touch(j);
    let cj = ComponentId::new(j);
    let circuit = problem.circuit();
    for (o, _) in circuit.out_connections(cj) {
        touch.touch(o.index());
    }
    for (o, _) in circuit.in_connections(cj) {
        touch.touch(o.index());
    }
    let timing = problem.timing();
    for (o, _) in timing.constraints_from(cj) {
        touch.touch(o.index());
    }
    for (o, _) in timing.constraints_into(cj) {
        touch.touch(o.index());
    }
}

/// The swap phase's partner scan for one hot component: the best
/// (most negative) capacity- and (in clean mode) timing-feasible swap
/// partner under the current state. Pure in its inputs, so speculative
/// evaluations against a frozen state equal the serial scan exactly as long
/// as nothing committed since the freeze.
fn best_swap_partner(
    q: &QMatrix<'_>,
    asg: &Assignment,
    used: &[u64],
    sizes: &[u64],
    capacities: &[u64],
    clean_only: bool,
    j: usize,
) -> (Cost, usize) {
    let n = sizes.len();
    let cj = ComponentId::new(j);
    let mut best: (Cost, usize) = (0, j);
    for l in 0..n {
        if l == j || asg.part_index(l) == asg.part_index(j) {
            continue;
        }
        let (ij, il) = (asg.part_index(j), asg.part_index(l));
        // Capacity after trading places.
        if used[ij] - sizes[j] + sizes[l] > capacities[ij]
            || used[il] - sizes[l] + sizes[j] > capacities[il]
        {
            continue;
        }
        let cl = ComponentId::new(l);
        if clean_only && !qbp_core::swap_is_timing_feasible(q.problem(), asg, cj, cl) {
            continue;
        }
        let delta = q.swap_delta(asg, cj, cl);
        if delta < best.0 {
            best = (delta, l);
        }
    }
    best
}

/// Sequential coordinate descent on the embedded objective `yᵀQ̂y`:
/// sweeps the components in index order, moving each to the
/// capacity-feasible partition with the most negative embedded delta. Every
/// accepted move strictly decreases `yᵀQ̂y`, so the descent is monotone and
/// terminates at a local minimum; because the penalty dominates the base
/// costs, it removes timing violations before polishing wire length.
/// Returns `true` when the assignment ends fully timing-clean.
pub(crate) fn embedded_descent(
    q: &QMatrix<'_>,
    asg: &mut Assignment,
    sizes: &[u64],
    capacities: &[u64],
    max_sweeps: usize,
    threads: usize,
    scratch: &mut DescentScratch,
) -> bool {
    descent_impl(
        q, asg, sizes, capacities, max_sweeps, false, None, threads, scratch,
    )
}

/// [`embedded_descent`] restricted to an *active* component set: only
/// components with `active[j]` are considered for moves and swap initiation
/// (swap partners may be any component). This is the localized repair pass of
/// [`QbpSolver::solve_warm`] — after a netlist delta, only the dirty
/// components and their immediate neighbors need re-placement, so the sweep
/// cost is O(active·deg·M) instead of O(N·deg·M).
#[allow(clippy::too_many_arguments)]
pub(crate) fn localized_descent(
    q: &QMatrix<'_>,
    asg: &mut Assignment,
    sizes: &[u64],
    capacities: &[u64],
    active: &[bool],
    max_sweeps: usize,
    threads: usize,
    scratch: &mut DescentScratch,
) -> bool {
    descent_impl(
        q,
        asg,
        sizes,
        capacities,
        max_sweeps,
        false,
        Some(active),
        threads,
        scratch,
    )
}

/// [`embedded_descent`] restricted to timing-clean transitions: every
/// accepted move or swap must keep all timing constraints satisfied, so a
/// feasible input stays feasible throughout. (The unrestricted descent can
/// profitably *introduce* a violation when a hub component's wire savings
/// exceed one penalty.)
pub(crate) fn clean_descent(
    q: &QMatrix<'_>,
    asg: &mut Assignment,
    sizes: &[u64],
    capacities: &[u64],
    max_sweeps: usize,
    threads: usize,
    scratch: &mut DescentScratch,
) -> bool {
    descent_impl(
        q, asg, sizes, capacities, max_sweeps, true, None, threads, scratch,
    )
}

/// The shared descent engine. With `threads > 1` and enough work, each
/// sweep's move phase precomputes every component's per-partition deltas
/// (and, in clean mode, timing-feasibility mask) against the frozen
/// pre-sweep state on worker threads; the commit scan then walks components
/// in index order exactly like the serial loop, reading the frozen values
/// while valid. A [`TouchLog`](qbp_core::moves::TouchLog) invalidates a
/// component as soon as any committed move could change its deltas (the
/// mover and its wire/timing dependents), and invalidated components fall
/// back to the serial recomputation — so every decision equals the serial
/// sweep's and the result is bit-identical for any thread count. The swap
/// phase speculates the same way, with the coarser rule that any committed
/// swap invalidates all later frozen scans (swap commits are rare).
#[allow(clippy::too_many_arguments)]
fn descent_impl(
    q: &QMatrix<'_>,
    asg: &mut Assignment,
    sizes: &[u64],
    capacities: &[u64],
    max_sweeps: usize,
    clean_only: bool,
    active: Option<&[bool]>,
    threads: usize,
    scratch: &mut DescentScratch,
) -> bool {
    let problem = q.problem();
    let m = problem.m();
    let n = problem.n();
    let DescentScratch {
        used,
        blocked,
        hot,
        deltas,
        timing_ok,
        hot_list,
        touch,
        par_tasks,
    } = scratch;
    *par_tasks = 1;
    let fan = threads > 1 && n * m >= DESCENT_PAR_MIN_CELLS;
    used.clear();
    used.resize(m, 0);
    for (j, &s) in sizes.iter().enumerate() {
        used[asg.part_index(j)] += s;
    }
    if fan {
        touch.reset(n);
    }
    let d = problem.topology().delay();
    for _ in 0..max_sweeps {
        let mut changed = false;
        // Move phase. `blocked[j]` records an improving move that failed
        // only on capacity — those components are the swap candidates in
        // clean mode.
        blocked.clear();
        blocked.resize(n, false);
        if fan {
            // Speculative evaluation against the frozen pre-sweep state.
            touch.begin_round();
            deltas.clear();
            deltas.resize(n * m, 0);
            let frozen = &*asg;
            let chunks = qbp_core::par::for_each_row(threads, m, deltas, |j, row| {
                if active.is_some_and(|a| !a[j]) {
                    return;
                }
                let cj = ComponentId::new(j);
                let cur = frozen.part_index(j);
                for (i, slot) in row.iter_mut().enumerate() {
                    if i != cur {
                        *slot = q.move_delta(frozen, cj, qbp_core::PartitionId::new(i));
                    }
                }
            });
            *par_tasks = (*par_tasks).max(chunks);
            if clean_only {
                timing_ok.clear();
                timing_ok.resize(n * m, false);
                qbp_core::par::for_each_row(threads, m, timing_ok, |j, row| {
                    if active.is_some_and(|a| !a[j]) {
                        return;
                    }
                    let cj = ComponentId::new(j);
                    for (i, ok) in row.iter_mut().enumerate() {
                        *ok = qbp_core::move_is_timing_feasible(
                            problem,
                            frozen,
                            cj,
                            qbp_core::PartitionId::new(i),
                        );
                    }
                });
            }
        }
        for j in 0..n {
            if active.is_some_and(|a| !a[j]) {
                continue;
            }
            let cj = ComponentId::new(j);
            let cur = asg.part_index(j);
            let mut best: (Cost, usize) = (0, cur);
            if fan && !touch.touched(j) {
                // The frozen deltas (and timing mask) are exact: neither `j`
                // nor any component they depend on has moved this sweep.
                // Capacity is rechecked against the *current* usage, exactly
                // like the serial scan.
                let row = &deltas[j * m..(j + 1) * m];
                for (i, &delta) in row.iter().enumerate() {
                    if i == cur {
                        continue;
                    }
                    if clean_only && !timing_ok[j * m + i] {
                        continue;
                    }
                    if used[i] + sizes[j] > capacities[i] {
                        if clean_only && delta < 0 {
                            blocked[j] = true;
                        }
                        continue;
                    }
                    if delta < best.0 {
                        best = (delta, i);
                    }
                }
            } else {
                for i in 0..m {
                    if i == cur {
                        continue;
                    }
                    let pi = qbp_core::PartitionId::new(i);
                    if clean_only && !qbp_core::move_is_timing_feasible(q.problem(), asg, cj, pi)
                    {
                        continue;
                    }
                    let fits = used[i] + sizes[j] <= capacities[i];
                    if !fits {
                        if clean_only && q.move_delta(asg, cj, pi) < 0 {
                            blocked[j] = true;
                        }
                        continue;
                    }
                    let delta = q.move_delta(asg, cj, pi);
                    if delta < best.0 {
                        best = (delta, i);
                    }
                }
            }
            if best.1 != cur {
                used[cur] -= sizes[j];
                used[best.1] += sizes[j];
                asg.move_to(cj, qbp_core::PartitionId::new(best.1));
                if fan {
                    touch_dependents(touch, problem, j);
                }
                changed = true;
            }
        }
        // Swap phase: in penalty mode, components incident to a violated
        // constraint (single moves cannot realize "two components trade
        // places" under tight capacities); in clean mode, components whose
        // improving move was capacity-blocked.
        hot.clear();
        hot.extend_from_slice(blocked);
        if !clean_only {
            for (a, b, limit) in problem.timing().iter() {
                if d[(asg.part_index(a.index()), asg.part_index(b.index()))] > limit {
                    hot[a.index()] = true;
                    hot[b.index()] = true;
                }
            }
        }
        hot_list.clear();
        for (j, &h) in hot.iter().enumerate() {
            if h && active.is_none_or(|a| a[j]) {
                hot_list.push(j);
            }
        }
        // Each hot component's partner scan is O(N); speculate them all
        // against the post-move-phase state when the total is worth a fan.
        let par_swap = fan && hot_list.len() * n >= DESCENT_PAR_MIN_CELLS;
        let swap_best: Vec<(Cost, usize)> = if par_swap {
            let frozen = &*asg;
            let frozen_used = &*used;
            let list = &*hot_list;
            let out = qbp_core::par::map_collect(threads, list.len(), |idx| {
                best_swap_partner(
                    q,
                    frozen,
                    frozen_used,
                    sizes,
                    capacities,
                    clean_only,
                    list[idx],
                )
            });
            *par_tasks = (*par_tasks).max(qbp_core::par::workers_for(threads, list.len()));
            out
        } else {
            Vec::new()
        };
        // `stale` flips on the first committed swap: every later frozen
        // result could have been computed against outdated positions, so
        // the remaining hot components rescan serially (matching the serial
        // loop, which always sees current state).
        let mut stale = false;
        for (idx, &j) in hot_list.iter().enumerate() {
            let cj = ComponentId::new(j);
            let best = if par_swap && !stale {
                swap_best[idx]
            } else {
                best_swap_partner(q, asg, used, sizes, capacities, clean_only, j)
            };
            if best.1 != j {
                let l = best.1;
                let (ij, il) = (asg.part_index(j), asg.part_index(l));
                used[ij] = used[ij] - sizes[j] + sizes[l];
                used[il] = used[il] - sizes[l] + sizes[j];
                asg.swap(cj, ComponentId::new(l));
                stale = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    q.violation_count(asg) == 0
}

/// Integrates a candidate into the feasible-anchor bookkeeping. A clean
/// candidate may become the new projection anchor; a violated candidate is
/// projected from the anchor onto the feasible region, polished by
/// [`clean_descent`], and offered to the incumbent. Returns whether the
/// incumbent improved.
#[allow(clippy::too_many_arguments)]
fn promote_candidate(
    q: &QMatrix<'_>,
    candidate: &Assignment,
    value: Cost,
    sizes: &[u64],
    capacities: &[u64],
    anchor: &mut Option<(Assignment, Cost)>,
    best: &mut Option<(Assignment, Cost)>,
    threads: usize,
    scratch: &mut DescentScratch,
) -> bool {
    if q.violation_count(candidate) == 0 {
        if anchor.as_ref().is_none_or(|(_, av)| value < *av) {
            *anchor = Some((candidate.clone(), value));
        }
        // Polish promising clean candidates with the timing-clean descent
        // (bounded to near-incumbent candidates to keep the per-iteration
        // cost proportionate).
        let near_incumbent = best
            .as_ref()
            .is_none_or(|(_, bv)| value <= bv.saturating_add(bv / 10));
        if near_incumbent {
            let mut polished = candidate.clone();
            clean_descent(q, &mut polished, sizes, capacities, 2, threads, scratch);
            let v = q.value(&polished);
            let mut improved = false;
            if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
                *best = Some((polished.clone(), v));
                improved = true;
            }
            if anchor.as_ref().is_none_or(|(_, av)| v < *av) {
                *anchor = Some((polished, v));
            }
            return improved;
        }
        return false; // the caller already offered the candidate itself
    }
    let Some((anchor_asg, _)) = anchor.clone() else {
        return false;
    };
    let mut projected = project_toward(q, &anchor_asg, candidate, sizes, capacities, scratch);
    clean_descent(q, &mut projected, sizes, capacities, 3, threads, scratch);
    let v = q.value(&projected);
    let mut improved = false;
    if best.as_ref().is_none_or(|(_, bv)| v < *bv) {
        *best = Some((projected.clone(), v));
        improved = true;
    }
    if anchor.as_ref().is_none_or(|(_, av)| v < *av) {
        *anchor = Some((projected, v));
    }
    improved
}

/// Projects `target` onto the feasible region reachable from `base` by
/// feasibility-preserving single moves: components are re-homed to their
/// `target` partitions one at a time, skipping any reassignment that would
/// break capacity or timing. The result realizes as much of the linearized
/// minimizer's global direction as feasibility permits while staying
/// violation-free (assuming `base` is violation-free).
pub(crate) fn project_toward(
    q: &QMatrix<'_>,
    base: &Assignment,
    target: &Assignment,
    sizes: &[u64],
    capacities: &[u64],
    scratch: &mut DescentScratch,
) -> Assignment {
    let problem = q.problem();
    let m = problem.m();
    let mut asg = base.clone();
    let used = &mut scratch.used;
    used.clear();
    used.resize(m, 0);
    for (j, &s) in sizes.iter().enumerate() {
        used[asg.part_index(j)] += s;
    }
    // Two passes: capacity freed by earlier moves lets later ones land.
    for _ in 0..2 {
        let mut changed = false;
        for (j, &size) in sizes.iter().enumerate() {
            let cj = ComponentId::new(j);
            let cur = asg.part_index(j);
            let want = target.part_index(j);
            if want == cur || used[want] + size > capacities[want] {
                continue;
            }
            let pw = qbp_core::PartitionId::new(want);
            if !qbp_core::move_is_timing_feasible(problem, &asg, cj, pw) {
                continue;
            }
            used[cur] -= size;
            used[want] += size;
            asg.move_to(cj, pw);
            changed = true;
        }
        if !changed {
            break;
        }
    }
    asg
}

/// Length of the recent-iterate window used to detect short cycles.
pub(crate) const STALL_WINDOW: usize = 8;

/// Number of components assigned to different partitions in `prev` vs.
/// `next` — the same threshold quantity [`QMatrix::eta_update`] uses to pick
/// between patching and a full recompute.
pub(crate) fn count_moved(prev: &Assignment, next: &Assignment) -> usize {
    (0..prev.len())
        .filter(|&j| prev.part_index(j) != next.part_index(j))
        .count()
}

/// Brings the workspace's embedded partition profile in sync with `u`:
/// patches it forward from its recorded source assignment when one exists
/// (and matches the problem's dimensions), otherwise rebuilds it from
/// scratch. Rebuilds fan across up to `threads` workers (bit-identical to
/// the serial rebuild; see [`PartitionProfile::rebuild_par`]). Returns
/// `(rebuilt, moved, chunks)` for observability — `chunks > 1` means worker
/// threads actually ran.
fn sync_profile(
    q: &QMatrix<'_>,
    ws: &mut SolveWorkspace,
    u: &Assignment,
    threads: usize,
) -> (bool, usize, usize) {
    let n = q.problem().n();
    let m = q.problem().m();
    // Fault-injection point: a corrupted profile cache is *detected* by
    // dropping it, which forces the rebuild branch below — the sync then
    // reconstructs ground truth from `q` and `u`, so the corruption costs a
    // rebuild, never a wrong profile.
    if qbp_core::fault::fault_point(qbp_core::fault::POINT_PROFILE_SYNC).is_corrupt() {
        ws.profile = None;
        ws.profile_source = None;
    }
    let result = match (ws.profile.as_mut(), ws.profile_source.as_ref()) {
        (Some(p), Some(prev)) if p.n() == n && p.m() == m => p.update_par(prev, u, threads),
        _ => {
            let (profile, chunks) = PartitionProfile::embedded_par(q, u, threads);
            ws.profile = Some(profile);
            (true, n, chunks)
        }
    };
    match ws.profile_source.as_mut() {
        Some(src) if src.len() == n => src.clone_from(u),
        _ => ws.profile_source = Some(u.clone()),
    }
    result
}

/// Cheap content hash of an assignment for cycle detection.
pub(crate) fn assignment_fingerprint(asg: &Assignment) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    asg.as_slice().hash(&mut hasher);
    hasher.finish()
}

fn capacity_feasible(asg: &Assignment, sizes: &[u64], capacities: &[u64], m: usize) -> bool {
    let mut used = vec![0u64; m];
    for j in 0..sizes.len() {
        used[asg.part_index(j)] += sizes[j];
    }
    used.iter().zip(capacities).all(|(u, c)| u <= c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exhaustive_constrained, exhaustive_qbp};
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn paper_problem(cap: u64) -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, d, 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    #[test]
    fn solves_paper_example_to_optimum() {
        let problem = paper_problem(3);
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 30,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert!(outcome.feasible);
        let (_, opt) = exhaustive_constrained(&problem).unwrap();
        assert_eq!(outcome.objective, opt, "heuristic should hit the optimum here");
    }

    #[test]
    fn tight_capacity_forces_spreading() {
        // Capacity 1 per partition: every component in its own partition.
        let problem = paper_problem(1);
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 50,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert!(outcome.feasible, "must satisfy capacity 1 everywhere");
        let (_, opt) = exhaustive_constrained(&problem).unwrap();
        assert_eq!(outcome.objective, opt);
    }

    #[test]
    fn respects_supplied_initial_assignment() {
        let problem = paper_problem(3);
        let initial = Assignment::from_parts(vec![3, 3, 3]).unwrap();
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 20,
            ..QbpConfig::default()
        })
        .solve(&problem, Some(&initial))
        .unwrap();
        assert!(outcome.feasible);
    }

    #[test]
    fn rejects_mismatched_initial() {
        let problem = paper_problem(3);
        let initial = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(QbpSolver::default().solve(&problem, Some(&initial)).is_err());
    }

    #[test]
    fn history_is_recorded_when_requested() {
        let problem = paper_problem(3);
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 7,
            track_history: true,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert_eq!(outcome.history.len(), 7);
        assert_eq!(outcome.history[0].iteration, 1);
        // Incumbent values along the run never go below the final answer.
        for s in &outcome.history {
            if s.capacity_feasible {
                assert!(s.embedded_value >= outcome.embedded_value);
            }
        }
    }

    #[test]
    fn penalty_modes_all_reach_feasibility() {
        let problem = paper_problem(2);
        for penalty in [
            PenaltyMode::Fixed(50),
            PenaltyMode::Auto,
            PenaltyMode::Theorem1,
        ] {
            let outcome = QbpSolver::new(QbpConfig {
                iterations: 30,
                penalty,
                ..QbpConfig::default()
            })
            .solve(&problem, None)
            .unwrap();
            assert!(outcome.feasible, "penalty mode {penalty:?}");
        }
    }

    #[test]
    fn eta_modes_both_work() {
        let problem = paper_problem(2);
        for eta_mode in [EtaMode::Pseudocode, EtaMode::BalasMazzola] {
            let outcome = QbpSolver::new(QbpConfig {
                iterations: 30,
                eta_mode,
                ..QbpConfig::default()
            })
            .solve(&problem, None)
            .unwrap();
            assert!(outcome.feasible, "eta mode {eta_mode:?}");
        }
    }

    #[test]
    fn matches_exhaustive_embedded_minimum_on_tiny_instance() {
        let problem = paper_problem(2);
        let q = QMatrix::with_auto_penalty(&problem).unwrap();
        let (_, opt) = exhaustive_qbp(&q).unwrap();
        let outcome = QbpSolver::new(QbpConfig {
            iterations: 60,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert_eq!(outcome.embedded_value, opt);
    }

    #[test]
    fn find_feasible_satisfies_all_constraints() {
        let problem = paper_problem(1);
        let asg = QbpSolver::default().find_feasible(&problem).unwrap().unwrap();
        assert!(check_feasibility(&problem, &asg).is_feasible());
    }

    #[test]
    fn multistart_never_worse_than_single() {
        let problem = paper_problem(2);
        let solver = QbpSolver::new(QbpConfig {
            iterations: 10,
            ..QbpConfig::default()
        });
        let single = solver.solve(&problem, None).unwrap();
        let multi = solver.solve_multistart(&problem, None, 5).unwrap();
        assert!(multi.feasible || !single.feasible);
        if multi.feasible && single.feasible {
            assert!(multi.embedded_value <= single.embedded_value);
        }
    }

    #[test]
    fn multistart_rejects_zero_runs() {
        let problem = paper_problem(2);
        assert!(QbpSolver::default()
            .solve_multistart(&problem, None, 0)
            .is_err());
    }

    /// Field-wise equality excluding the wall-clock `elapsed`.
    fn assert_same_outcome(a: &QbpOutcome, b: &QbpOutcome) {
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.embedded_value, b.embedded_value);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.feasible, b.feasible);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parallel_multistart_matches_serial_bit_for_bit() {
        let problem = paper_problem(2);
        let base = QbpConfig {
            iterations: 12,
            seed: 7,
            track_history: true,
            threads: 1,
            ..QbpConfig::default()
        };
        let serial = QbpSolver::new(base).solve_multistart(&problem, None, 8).unwrap();
        for threads in [2, 3, 4, 0] {
            let par = QbpSolver::new(QbpConfig { threads, ..base })
                .solve_multistart(&problem, None, 8)
                .unwrap();
            assert_same_outcome(&par, &serial);
        }
    }

    #[test]
    fn intra_solve_eta_batches_match_serial_bit_for_bit() {
        // A single run with threads > 1 takes the serial multistart branch,
        // so the thread budget flows into the η-row batches of the descent
        // itself — the result must not depend on how the rows were chunked.
        let problem = paper_problem(2);
        let base = QbpConfig {
            iterations: 15,
            seed: 11,
            track_history: true,
            threads: 1,
            ..QbpConfig::default()
        };
        let serial = QbpSolver::new(base).solve(&problem, None).unwrap();
        for threads in [2, 4, 8, 0] {
            let par = QbpSolver::new(QbpConfig { threads, ..base })
                .solve(&problem, None)
                .unwrap();
            assert_same_outcome(&par, &serial);
        }
    }

    #[test]
    fn parallel_multistart_matches_serial_under_balas_mazzola() {
        // The Balas–Mazzola η variant exercises the workspace's ω-diagonal
        // scratch copy; the guarantee must hold there too.
        let problem = paper_problem(2);
        let base = QbpConfig {
            iterations: 10,
            seed: 41,
            eta_mode: EtaMode::BalasMazzola,
            track_history: true,
            threads: 1,
            ..QbpConfig::default()
        };
        let serial = QbpSolver::new(base).solve_multistart(&problem, None, 5).unwrap();
        let par = QbpSolver::new(QbpConfig { threads: 4, ..base })
            .solve_multistart(&problem, None, 5)
            .unwrap();
        assert_same_outcome(&par, &serial);
    }

    /// Deterministic pseudo-random instance big enough to cross every
    /// parallel grain in the solve path: `n * m` over `DESCENT_PAR_MIN_CELLS`
    /// and `n` over `GAP_PAR_MIN_JOBS`, so the descent fan, the GAP lane fan,
    /// and the parallel profile rebuilds all actually run.
    fn lcg_problem(n: usize, rows: usize, cols: usize) -> Problem {
        let mut c = Circuit::new();
        for j in 0..n {
            c.add_component(format!("c{j}"), 1 + (j as u64 % 3));
        }
        let mut state = 0x0DDB_A115_5EED_BA5Eu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..n * 3 {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                let w = 1 + (next() % 9) as i64;
                c.add_connection(ComponentId::new(a), ComponentId::new(b), w)
                    .unwrap();
            }
        }
        ProblemBuilder::new(c, PartitionTopology::grid(rows, cols, (2 * n) as u64).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn full_solve_is_bit_identical_across_threads_on_large_instances() {
        // Covers M = 8 (exact SIMD width), M = 16, and M = 5 (padded rows).
        for (n, rows, cols) in [(520usize, 2usize, 4usize), (256, 2, 8), (820, 1, 5)] {
            let problem = lcg_problem(n, rows, cols);
            assert!(n * problem.m() >= DESCENT_PAR_MIN_CELLS);
            let base = QbpConfig {
                iterations: 6,
                seed: 5,
                track_history: true,
                threads: 1,
                ..QbpConfig::default()
            };
            let serial = QbpSolver::new(base).solve(&problem, None).unwrap();
            for threads in [2, 4, 8] {
                let par = QbpSolver::new(QbpConfig { threads, ..base })
                    .solve(&problem, None)
                    .unwrap();
                assert_same_outcome(&par, &serial);
            }
        }
    }

    #[test]
    fn budgeted_wind_down_is_bit_identical_across_threads() {
        // An iteration cap that lands mid-solve: the wind-down to the
        // incumbent must cross the parallel rebuild/descent paths the same
        // way for every thread budget.
        use qbp_core::exec::Budget;
        let problem = lcg_problem(520, 2, 4);
        let base = QbpConfig {
            iterations: 30,
            seed: 17,
            track_history: true,
            threads: 1,
            ..QbpConfig::default()
        };
        let exec = ExecCtx::with_budget(Budget::with_max_iters(4));
        let run = |threads: usize| {
            let mut ws = SolveWorkspace::new();
            QbpSolver::new(QbpConfig { threads, ..base })
                .solve_observed_exec(&problem, None, &mut ws, &exec, &mut NoopObserver)
                .unwrap()
        };
        let serial = run(1);
        assert!(serial.iterations <= 4, "cap must land mid-solve");
        for threads in [2, 4, 8] {
            assert_same_outcome(&run(threads), &serial);
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let problem = paper_problem(2);
        let config = QbpConfig {
            iterations: 20,
            seed: 3,
            track_history: true,
            ..QbpConfig::default()
        };
        let solver = QbpSolver::new(config);
        let fresh = solver.solve(&problem, None).unwrap();
        // Warm the workspace on a different seed (its η cache then reflects
        // some unrelated assignment), then re-solve the original config.
        let mut ws = SolveWorkspace::new();
        QbpSolver::new(QbpConfig { seed: 1234, ..config })
            .solve_with(&problem, None, &mut ws)
            .unwrap();
        let reused = solver.solve_with(&problem, None, &mut ws).unwrap();
        assert_same_outcome(&fresh, &reused);
    }

    #[test]
    fn solve_warm_repairs_locally_without_escalation() {
        // Cold-solve the paper problem, then knock one component to a bad
        // partition: the dirty component plus its frontier is exactly the
        // disturbance, so the localized rung must restore feasibility.
        let problem = paper_problem(3);
        let cold = QbpSolver::new(QbpConfig {
            iterations: 30,
            ..QbpConfig::default()
        })
        .solve(&problem, None)
        .unwrap();
        assert!(cold.feasible);
        let mut disturbed = cold.assignment.clone();
        let moved = ComponentId::new(1);
        let elsewhere =
            qbp_core::PartitionId::new((disturbed.part_index(1) + 2) % problem.m());
        disturbed.move_to(moved, elsewhere);
        let warm = QbpSolver::new(QbpConfig {
            iterations: 30,
            ..QbpConfig::default()
        })
        .solve_warm(&problem, &disturbed, &[1], &mut qbp_observe::NoopObserver)
        .unwrap();
        assert!(warm.feasible);
        assert!(!warm.escalated, "a one-component knock must repair locally");
        assert!(warm.embedded_value <= cold.embedded_value + cold.embedded_value / 20 + 1);
    }

    #[test]
    fn solve_warm_escalates_from_hopeless_start() {
        // Everything stacked in one partition of capacity 1 cannot be fixed
        // by moving only the dirty frontier of a single component — the
        // warm solve must escalate and still end feasible.
        let problem = paper_problem(1);
        let stacked = Assignment::from_parts(vec![0, 0, 0]).unwrap();
        let warm = QbpSolver::new(QbpConfig {
            iterations: 50,
            ..QbpConfig::default()
        })
        .solve_warm(&problem, &stacked, &[], &mut qbp_observe::NoopObserver)
        .unwrap();
        assert!(warm.feasible);
        assert!(warm.escalated);
        let (_, opt) = exhaustive_constrained(&problem).unwrap();
        assert_eq!(warm.objective, opt);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let problem = paper_problem(3);
        let config = QbpConfig {
            iterations: 15,
            seed: 99,
            ..QbpConfig::default()
        };
        let a = QbpSolver::new(config).solve(&problem, None).unwrap();
        let b = QbpSolver::new(config).solve(&problem, None).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.objective, b.objective);
    }
}
