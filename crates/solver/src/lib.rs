//! Solvers for the timing-embedded Quadratic Boolean Program of
//! Shih & Kuh (DAC 1993): the generalized Burkard heuristic with
//! Generalized-Assignment subproblems, the original LAP-subproblem variant
//! for QAP-shaped instances, the GAP/LAP subproblem solvers themselves, and
//! exact oracles for small instances.
//!
//! # Layout
//!
//! * [`QbpSolver`] — the paper's main algorithm (STEPs 1–8 of §4.2,
//!   generalized per §4.3 with sparse `η` computation and GAP subproblems).
//! * [`QapSolver`] — Burkard's original heuristic (LAP subproblems) for
//!   `M = N`, equal-size instances (§2.2.3).
//! * [`gap`] — Martello–Toth-style GAP heuristic (§4.3 cites their method
//!   for STEP 4/6).
//! * [`lap`] — Hungarian/Jonker–Volgenant Linear Assignment solver.
//! * [`exact`] — exhaustive and branch-and-bound oracles used by tests and
//!   the theorem-validation suite.
//! * [`initial`] — random, greedy-feasible and repair-based starting points.
//!
//! # Example
//!
//! ```
//! use qbp_core::{Circuit, PartitionTopology, ProblemBuilder};
//! use qbp_solver::{QbpConfig, QbpSolver};
//!
//! # fn main() -> Result<(), qbp_core::Error> {
//! let mut circuit = Circuit::new();
//! let a = circuit.add_component("a", 10);
//! let b = circuit.add_component("b", 20);
//! circuit.add_wires(a, b, 3)?;
//! let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 30)?).build()?;
//!
//! let outcome = QbpSolver::new(QbpConfig { iterations: 25, ..Default::default() })
//!     .solve(&problem, None)?;
//! assert!(outcome.feasible);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unused_must_use)]

mod anneal;
mod api;
pub mod bb;
pub mod exact;
pub mod gap;
pub mod initial;
pub mod lap;
mod qap;
mod qbp;

pub use anneal::{AnnealConfig, AnnealSolver};
pub use api::{moved_from, CommonOpts, Configure, SolveReport, Solver};
pub use qbp_core::exec::{Budget, CancelToken, ExecCtx, ExecStatus};
pub use bb::{branch_and_bound, BbOutcome};
pub use gap::{solve_gap, solve_gap_observed, GapConfig, GapInstance, GapScratch, GapSolution};
pub use initial::{greedy_first_fit, random_assignment, repair_capacity, scramble_feasible};
pub use lap::{solve_lap, solve_lap_int, solve_lap_observed, LapSolution};
pub use qap::{QapConfig, QapSolver};
pub use qbp::{
    EtaMode, IterationStats, PenaltyMode, QbpConfig, QbpOutcome, QbpSolver, SolveWorkspace,
    WarmOutcome,
};
