//! Generalized Assignment Problem (GAP) heuristic in the style of
//! Martello & Toth's MTHG (*Knapsack Problems*, ch. 7): regret-based greedy
//! construction under several desirability measures, followed by a local
//! improvement phase.
//!
//! The generalized Burkard heuristic solves two GAPs per iteration (STEP 4
//! and STEP 6) over the capacity-feasible solution space `S`; this module is
//! that subproblem solver. Cost vectors arrive in the flattened `y` layout of
//! the paper: `costs[i + j·m]` is the cost of assigning component `j` to
//! partition `i`.

use qbp_core::Size;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A GAP instance view. Costs are borrowed because the QBP loop re-solves
/// GAPs against freshly computed `η`/`h` vectors every iteration.
#[derive(Debug, Clone, Copy)]
pub struct GapInstance<'a> {
    /// Number of partitions (agents).
    pub m: usize,
    /// Number of components (jobs).
    pub n: usize,
    /// Flattened cost vector, `costs[i + j*m]`, length `m·n`.
    pub costs: &'a [f64],
    /// Component sizes, length `n`.
    pub sizes: &'a [Size],
    /// Partition capacities, length `m`.
    pub capacities: &'a [Size],
}

impl<'a> GapInstance<'a> {
    /// Cost of assigning component `j` to partition `i`.
    #[inline]
    fn cost(&self, i: usize, j: usize) -> f64 {
        self.costs[i + j * self.m]
    }

    /// Validates array lengths.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree with `m`/`n`.
    fn validate(&self) {
        assert_eq!(self.costs.len(), self.m * self.n, "costs length");
        assert_eq!(self.sizes.len(), self.n, "sizes length");
        assert_eq!(self.capacities.len(), self.m, "capacities length");
    }
}

/// Result of a GAP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct GapSolution {
    /// Partition index per component.
    pub assignment: Vec<u32>,
    /// Total cost under the instance's cost vector.
    pub cost: f64,
    /// `true` when the assignment respects all capacities. The relaxed
    /// fallback (used only when every greedy variant fails) may return
    /// `false`; callers must check.
    pub feasible: bool,
}

/// Tuning knobs for [`solve_gap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapConfig {
    /// Maximum number of shift-improvement sweeps after construction.
    pub improvement_passes: usize,
    /// Also attempt pairwise swap improvements (quadratic in `n`; off by
    /// default — the QBP loop calls this solver hundreds of times).
    pub swap_improvement: bool,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            improvement_passes: 2,
            swap_improvement: false,
        }
    }
}

/// f64 wrapper ordered by `total_cmp` so it can live in a `BinaryHeap`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The MTHG desirability measures tried by [`solve_gap`], in order. The best
/// feasible construction (after improvement) wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Desirability {
    /// Plain cost `c[i][j]`.
    Cost,
    /// Cost per unit size `c[i][j] / s_j` — prioritizes big components whose
    /// placement costs are consequential.
    CostPerSize,
    /// Negative remaining capacity — feasibility-driven; prefers the
    /// emptiest partition regardless of cost (useful when costs are flat,
    /// e.g. the `B = 0` feasibility phase).
    Slack,
}

/// Best and second-best feasible partitions for job `j` under desirability
/// `d`, given current remaining capacities. `None` when no partition fits.
fn best_two(
    inst: &GapInstance<'_>,
    remaining: &[Size],
    d: Desirability,
    j: usize,
) -> Option<(usize, f64, f64)> {
    let size = inst.sizes[j];
    let mut best: Option<(usize, f64)> = None;
    let mut second = f64::INFINITY;
    for (i, &rem) in remaining.iter().enumerate() {
        if rem < size {
            continue;
        }
        let f = match d {
            Desirability::Cost => inst.cost(i, j),
            Desirability::CostPerSize => inst.cost(i, j) / (size.max(1) as f64),
            Desirability::Slack => -(remaining[i] as f64),
        };
        match best {
            None => best = Some((i, f)),
            Some((_, bf)) if f < bf => {
                second = bf;
                best = Some((i, f));
            }
            Some(_) => second = second.min(f),
        }
    }
    best.map(|(i, f)| (i, f, second))
}

/// Reusable buffers for [`solve_gap_with`]. The QBP loop solves two GAPs per
/// iteration, hundreds of iterations per run; keeping the heap and the
/// working vectors alive across calls makes the subproblem solver
/// allocation-free after warm-up (only the returned assignment is freshly
/// allocated, because callers take ownership of it). Reuse never changes
/// results: every buffer is fully reinitialized per construction.
#[derive(Debug, Clone, Default)]
pub struct GapScratch {
    heap: BinaryHeap<(TotalF64, usize)>,
    remaining: Vec<Size>,
    slots: Vec<Option<u32>>,
    candidate: Vec<u32>,
    best: Vec<u32>,
}

/// MTHG regret-greedy construction under one desirability, writing the
/// assignment into `out` and the post-construction remaining capacities into
/// `remaining`; `false` when some job cannot be placed.
fn mthg_greedy(
    inst: &GapInstance<'_>,
    d: Desirability,
    heap: &mut BinaryHeap<(TotalF64, usize)>,
    remaining: &mut Vec<Size>,
    slots: &mut Vec<Option<u32>>,
    out: &mut Vec<u32>,
) -> bool {
    let n = inst.n;
    remaining.clear();
    remaining.extend_from_slice(inst.capacities);
    slots.clear();
    slots.resize(n, None);
    // Max-heap on regret (second-best minus best); jobs with a single
    // feasible partition get infinite regret and are placed first.
    heap.clear();
    for j in 0..n {
        let Some((_, best, second)) = best_two(inst, remaining, d, j) else {
            return false;
        };
        heap.push((TotalF64(second - best), j));
    }
    let mut placed = 0;
    while placed < n {
        let (TotalF64(cached), j) = heap.pop().expect("heap exhausted before all jobs placed");
        if slots[j].is_some() {
            continue;
        }
        let Some((i, best, second)) = best_two(inst, remaining, d, j) else {
            return false;
        };
        let regret = second - best;
        // Lazy-heap validation: accept only if still at least as urgent as
        // the next candidate; otherwise re-queue with the fresh key.
        let still_max = heap
            .peek()
            .is_none_or(|&(TotalF64(next), _)| regret >= next);
        if regret < cached && !still_max {
            heap.push((TotalF64(regret), j));
            continue;
        }
        slots[j] = Some(i as u32);
        remaining[i] -= inst.sizes[j];
        placed += 1;
    }
    out.clear();
    out.extend(slots.iter().map(|s| s.expect("all jobs placed")));
    true
}

/// Shift-improvement: repeatedly move single components to cheaper feasible
/// partitions. Mutates `assignment` and returns the improved cost.
fn improve_shifts(
    inst: &GapInstance<'_>,
    assignment: &mut [u32],
    remaining: &mut [Size],
    passes: usize,
) {
    for _ in 0..passes {
        let mut changed = false;
        for (j, slot) in assignment.iter_mut().enumerate() {
            let cur = *slot as usize;
            let size = inst.sizes[j];
            let mut best_i = cur;
            let mut best_c = inst.cost(cur, j);
            for (i, &rem) in remaining.iter().enumerate() {
                if i == cur || rem < size {
                    continue;
                }
                let c = inst.cost(i, j);
                if c < best_c {
                    best_c = c;
                    best_i = i;
                }
            }
            if best_i != cur {
                remaining[cur] += size;
                remaining[best_i] -= size;
                *slot = best_i as u32;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Swap-improvement: exchange pairs when it reduces cost and fits.
fn improve_swaps(inst: &GapInstance<'_>, assignment: &mut [u32], remaining: &mut [Size]) {
    for j1 in 0..inst.n {
        for j2 in j1 + 1..inst.n {
            let (i1, i2) = (assignment[j1] as usize, assignment[j2] as usize);
            if i1 == i2 {
                continue;
            }
            let (s1, s2) = (inst.sizes[j1], inst.sizes[j2]);
            // After swap, i1 gains s2 and loses s1 (and vice versa).
            let fits1 = remaining[i1] + s1 >= s2;
            let fits2 = remaining[i2] + s2 >= s1;
            if !fits1 || !fits2 {
                continue;
            }
            let before = inst.cost(i1, j1) + inst.cost(i2, j2);
            let after = inst.cost(i2, j1) + inst.cost(i1, j2);
            if after < before {
                remaining[i1] = remaining[i1] + s1 - s2;
                remaining[i2] = remaining[i2] + s2 - s1;
                assignment[j1] = i2 as u32;
                assignment[j2] = i1 as u32;
            }
        }
    }
}

/// One full MTHG construction + improvement under a single desirability,
/// leaving the result in `scratch.candidate`. Returns its cost, or `None`
/// when the construction strands a job. Pure in `(inst, config, d)` — the
/// scratch is fully reinitialized — which is what lets [`solve_gap_par`] run
/// the lanes on independent scratches concurrently.
fn construct_lane(
    inst: &GapInstance<'_>,
    config: &GapConfig,
    d: Desirability,
    scratch: &mut GapScratch,
) -> Option<f64> {
    let GapScratch {
        heap,
        remaining,
        slots,
        candidate,
        ..
    } = scratch;
    if !mthg_greedy(inst, d, heap, remaining, slots, candidate) {
        return None;
    }
    debug_assert_eq!(
        remaining_after(inst, candidate),
        remaining.iter().map(|&r| r as i128).collect::<Vec<_>>()
    );
    improve_shifts(inst, candidate, remaining, config.improvement_passes);
    if config.swap_improvement {
        improve_swaps(inst, candidate, remaining);
    }
    Some(total_cost(inst, candidate))
}

fn total_cost(inst: &GapInstance<'_>, assignment: &[u32]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(j, &i)| inst.cost(i as usize, j))
        .sum()
}

fn remaining_after(inst: &GapInstance<'_>, assignment: &[u32]) -> Vec<i128> {
    let mut used = vec![0i128; inst.m];
    for (j, &i) in assignment.iter().enumerate() {
        used[i as usize] += inst.sizes[j] as i128;
    }
    (0..inst.m)
        .map(|i| inst.capacities[i] as i128 - used[i])
        .collect()
}

/// Relaxed fallback when no greedy construction is capacity-feasible:
/// big-to-small, each job to the partition minimizing
/// `(overflow, cost)` lexicographically. The result may violate capacity;
/// its `feasible` flag reflects that.
fn relaxed_fallback(inst: &GapInstance<'_>) -> Vec<u32> {
    let mut order: Vec<usize> = (0..inst.n).collect();
    order.sort_by(|&a, &b| inst.sizes[b].cmp(&inst.sizes[a]));
    let mut remaining: Vec<i128> = inst.capacities.iter().map(|&c| c as i128).collect();
    let mut assignment = vec![0u32; inst.n];
    for j in order {
        let size = inst.sizes[j] as i128;
        let mut best = (i128::MAX, f64::INFINITY, 0usize);
        for (i, &rem) in remaining.iter().enumerate() {
            let overflow = (size - rem).max(0);
            let c = inst.cost(i, j);
            if (overflow, c) < (best.0, best.1) {
                best = (overflow, c, i);
            }
        }
        assignment[j] = best.2 as u32;
        remaining[best.2] -= size;
    }
    assignment
}

/// Solves a GAP instance heuristically: MTHG construction under each
/// desirability measure, shift (and optional swap) improvement, best feasible
/// result wins. Falls back to a relaxed (possibly capacity-violating)
/// assignment when nothing feasible is found — check
/// [`GapSolution::feasible`].
///
/// # Panics
///
/// Panics if the instance's array lengths are inconsistent or any cost is
/// NaN.
pub fn solve_gap(inst: &GapInstance<'_>, config: &GapConfig) -> GapSolution {
    solve_gap_with(inst, config, &mut GapScratch::default())
}

/// [`solve_gap_with`] plus observability: reports the solved subproblem
/// (cost and capacity-feasibility) to `obs` as a
/// [`SubproblemSolved`](qbp_observe::SolveEvent::SubproblemSolved) event
/// tagged with the caller's `iteration`. This is the entry point the
/// Burkard loop's STEP 4/6 use.
///
/// # Panics
///
/// Panics if the instance's array lengths are inconsistent or any cost is
/// NaN.
pub fn solve_gap_observed(
    inst: &GapInstance<'_>,
    config: &GapConfig,
    scratch: &mut GapScratch,
    iteration: usize,
    obs: &mut dyn qbp_observe::SolveObserver,
) -> GapSolution {
    let sol = solve_gap_with(inst, config, scratch);
    obs.on_event(&qbp_observe::SolveEvent::SubproblemSolved {
        iteration,
        kind: qbp_observe::SubproblemKind::Gap,
        cost: sol.cost,
        feasible: sol.feasible,
    });
    sol
}

/// [`solve_gap`] with caller-owned scratch buffers — the allocation-free
/// variant for hot loops. Results are identical to [`solve_gap`] regardless
/// of the scratch's prior contents.
///
/// # Panics
///
/// Panics if the instance's array lengths are inconsistent or any cost is
/// NaN.
pub fn solve_gap_with(
    inst: &GapInstance<'_>,
    config: &GapConfig,
    scratch: &mut GapScratch,
) -> GapSolution {
    inst.validate();
    assert!(
        inst.costs.iter().all(|c| !c.is_nan()),
        "GAP costs must not be NaN"
    );
    let mut best_cost: Option<f64> = None;
    for d in LANES {
        if let Some(cost) = construct_lane(inst, config, d, scratch) {
            if best_cost.is_none_or(|bc| cost < bc) {
                best_cost = Some(cost);
                scratch.best.clear();
                scratch.best.extend_from_slice(&scratch.candidate);
            }
        }
    }
    finish_solution(inst, best_cost, std::mem::take(&mut scratch.best))
}

/// The MTHG desirability lanes in their fixed evaluation order. The winner
/// is always picked by a serial scan in this order (strict `<`), so the
/// result is independent of which thread computed which lane.
const LANES: [Desirability; 3] = [
    Desirability::Cost,
    Desirability::CostPerSize,
    Desirability::Slack,
];

/// Minimum number of jobs before [`solve_gap_par`] fans the desirability
/// lanes out to worker threads; below this, spawn/join overhead dominates
/// the lane work. The gate depends only on the instance (never on the
/// thread budget), and the fan/no-fan decision cannot change results
/// anyway — both paths pick the winner by the same serial in-order scan.
const GAP_PAR_MIN_JOBS: usize = 48;

/// Shared tail of the serial and parallel solvers: package the winning
/// construction, or fall back to the relaxed assignment when every lane
/// stranded a job.
fn finish_solution(
    inst: &GapInstance<'_>,
    best_cost: Option<f64>,
    best: Vec<u32>,
) -> GapSolution {
    match best_cost {
        Some(cost) => GapSolution {
            assignment: best,
            cost,
            feasible: true,
        },
        None => {
            let assignment = relaxed_fallback(inst);
            let feasible = remaining_after(inst, &assignment).iter().all(|&r| r >= 0);
            GapSolution {
                cost: total_cost(inst, &assignment),
                assignment,
                feasible,
            }
        }
    }
}

/// [`solve_gap_with`] with the three desirability lanes fanned across up to
/// `threads` scoped workers. Each lane is an independent pure construction
/// on its own scratch; the winner is reduced serially in lane order with the
/// same strict-`<` rule as the serial loop, so the returned solution is
/// bit-identical to [`solve_gap_with`] for every thread count. The second
/// element of the return value is the number of worker tasks used (`1` =
/// the serial loop ran).
///
/// # Panics
///
/// Panics if the instance's array lengths are inconsistent, any cost is
/// NaN, or a worker panics (the panic is re-raised in lane order).
pub fn solve_gap_par(
    inst: &GapInstance<'_>,
    config: &GapConfig,
    scratch: &mut GapScratch,
    threads: usize,
) -> (GapSolution, usize) {
    let workers = threads.min(LANES.len());
    if workers <= 1 || inst.n < GAP_PAR_MIN_JOBS {
        return (solve_gap_with(inst, config, scratch), 1);
    }
    inst.validate();
    assert!(
        inst.costs.iter().all(|c| !c.is_nan()),
        "GAP costs must not be NaN"
    );
    // One slot per lane; workers claim lanes round-robin by index, so the
    // lane → slot mapping is scheduling-independent.
    let mut lanes: Vec<Option<(f64, Vec<u32>)>> = (0..LANES.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut local = GapScratch::default();
                        let mut out = Vec::new();
                        let mut lane = w;
                        while lane < LANES.len() {
                            let cost = construct_lane(inst, config, LANES[lane], &mut local);
                            out.push((
                                lane,
                                cost.map(|c| (c, std::mem::take(&mut local.candidate))),
                            ));
                            lane += workers;
                        }
                        out
                    }))
                })
            })
            .collect();
        let mut first_panic = None;
        for handle in handles {
            match handle.join().expect("worker catches its own panics") {
                Ok(chunk) => {
                    for (lane, result) in chunk {
                        lanes[lane] = result;
                    }
                }
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    // Serial winner scan in lane order — identical to the serial loop.
    let mut best_cost: Option<f64> = None;
    let mut best: Vec<u32> = Vec::new();
    for (cost, assignment) in lanes.into_iter().flatten() {
        if best_cost.is_none_or(|bc| cost < bc) {
            best_cost = Some(cost);
            best = assignment;
        }
    }
    (finish_solution(inst, best_cost, best), workers)
}

/// [`solve_gap_par`] plus observability: reports the solved subproblem as a
/// [`SubproblemSolved`](qbp_observe::SolveEvent::SubproblemSolved) event,
/// and — when the lanes actually fanned out — a
/// [`ParallelBatch`](qbp_observe::SolveEvent::ParallelBatch) tagged with the
/// GAP phase. Serial executions (`threads <= 1`, or too few jobs) emit no
/// batch event, so serial traces are unchanged.
///
/// # Panics
///
/// Same conditions as [`solve_gap_par`].
pub fn solve_gap_observed_par(
    inst: &GapInstance<'_>,
    config: &GapConfig,
    scratch: &mut GapScratch,
    iteration: usize,
    threads: usize,
    obs: &mut dyn qbp_observe::SolveObserver,
) -> GapSolution {
    let (sol, tasks) = solve_gap_par(inst, config, scratch, threads);
    if tasks > 1 {
        obs.on_event(&qbp_observe::SolveEvent::ParallelBatch {
            iteration,
            phase: qbp_observe::BatchPhase::Gap,
            tasks,
            threads,
        });
    }
    obs.on_event(&qbp_observe::SolveEvent::SubproblemSolved {
        iteration,
        kind: qbp_observe::SubproblemKind::Gap,
        cost: sol.cost,
        feasible: sol.feasible,
    });
    sol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst<'a>(
        m: usize,
        n: usize,
        costs: &'a [f64],
        sizes: &'a [Size],
        capacities: &'a [Size],
    ) -> GapInstance<'a> {
        GapInstance {
            m,
            n,
            costs,
            sizes,
            capacities,
        }
    }

    #[test]
    fn trivial_single_partition() {
        let costs = [3.0, 1.0];
        let sizes = [2, 2];
        let caps = [10];
        let s = solve_gap(&inst(1, 2, &costs, &sizes, &caps), &GapConfig::default());
        assert!(s.feasible);
        assert_eq!(s.assignment, vec![0, 0]);
        assert_eq!(s.cost, 4.0);
    }

    #[test]
    fn picks_cheap_partitions_when_capacity_allows() {
        // Two components, two partitions; each prefers a different partition.
        // Layout: costs[i + j*m].
        let costs = [0.0, 5.0, 5.0, 0.0];
        let sizes = [1, 1];
        let caps = [10, 10];
        let s = solve_gap(&inst(2, 2, &costs, &sizes, &caps), &GapConfig::default());
        assert!(s.feasible);
        assert_eq!(s.assignment, vec![0, 1]);
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn respects_capacity_over_cost() {
        // Both components want partition 0 but only one fits.
        let costs = [0.0, 10.0, 0.0, 10.0];
        let sizes = [3, 3];
        let caps = [3, 3];
        let s = solve_gap(&inst(2, 2, &costs, &sizes, &caps), &GapConfig::default());
        assert!(s.feasible);
        let mut sorted = s.assignment.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1]);
        assert_eq!(s.cost, 10.0);
    }

    #[test]
    fn regret_prioritizes_constrained_jobs() {
        // Job 1 only fits in partition 0 (size 5 vs caps [5, 2]); job 0 fits
        // anywhere. A naive cheapest-first order could strand job 1.
        let costs = [0.0, 1.0, 0.0, 100.0];
        let sizes = [2, 5];
        let caps = [5, 2];
        let s = solve_gap(&inst(2, 2, &costs, &sizes, &caps), &GapConfig::default());
        assert!(s.feasible);
        assert_eq!(s.assignment[1], 0);
        assert_eq!(s.assignment[0], 1);
    }

    #[test]
    fn infeasible_instance_falls_back_relaxed() {
        let costs = [0.0, 0.0];
        let sizes = [5, 5];
        let caps = [6]; // total 10 > 6
        let s = solve_gap(&inst(1, 2, &costs, &sizes, &caps), &GapConfig::default());
        assert!(!s.feasible);
        assert_eq!(s.assignment, vec![0, 0]);
    }

    #[test]
    fn shift_improvement_reduces_cost() {
        // Greedy by regret may place job 0 in partition 0; after placement a
        // cheaper fit can open. Construct: 3 jobs, shifts should converge to
        // a per-job cheapest feasible configuration.
        let costs = [1.0, 9.0, 1.0, 9.0, 9.0, 1.0];
        let sizes = [2, 2, 2];
        let caps = [4, 4];
        let s = solve_gap(&inst(2, 3, &costs, &sizes, &caps), &GapConfig::default());
        assert!(s.feasible);
        assert_eq!(s.cost, 3.0);
    }

    #[test]
    fn swap_improvement_exchanges_pairs() {
        // Two jobs of different sizes each in the other's ideal partition;
        // only a swap (not single shifts, capacities are tight) fixes it.
        let costs = [0.0, 8.0, 8.0, 0.0];
        let sizes = [4, 4];
        let caps = [4, 4];
        let config = GapConfig {
            improvement_passes: 0,
            swap_improvement: true,
        };
        // Force a bad start by constructing directly.
        let instance = inst(2, 2, &costs, &sizes, &caps);
        let mut assignment = vec![1u32, 0u32];
        let mut remaining = vec![0, 0];
        improve_swaps(&instance, &mut assignment, &mut remaining);
        assert_eq!(assignment, vec![0, 1]);
        let s = solve_gap(&instance, &config);
        assert!(s.feasible);
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn handles_negative_costs() {
        // STEP 6 h-vectors are non-negative in theory, but the solver should
        // not care.
        let costs = [-5.0, 0.0, 0.0, -5.0];
        let sizes = [1, 1];
        let caps = [2, 2];
        let s = solve_gap(&inst(2, 2, &costs, &sizes, &caps), &GapConfig::default());
        assert!(s.feasible);
        assert_eq!(s.cost, -10.0);
    }

    #[test]
    fn parallel_lanes_match_serial_for_any_thread_count() {
        // Big enough (n >= GAP_PAR_MIN_JOBS) that the lanes really fan out.
        let (m, n) = (5usize, 64usize);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move |range: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % range
        };
        let costs: Vec<f64> = (0..m * n).map(|_| next(100) as f64).collect();
        let sizes: Vec<Size> = (0..n).map(|_| 1 + next(8)).collect();
        let capacities: Vec<Size> = (0..m).map(|_| 60 + next(60)).collect();
        let instance = inst(m, n, &costs, &sizes, &capacities);
        let config = GapConfig::default();
        let serial = solve_gap(&instance, &config);
        for threads in [1usize, 2, 3, 4, 8] {
            let (par, tasks) =
                solve_gap_par(&instance, &config, &mut GapScratch::default(), threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(tasks > 1, threads > 1, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "costs length")]
    fn validates_lengths() {
        let costs = [0.0; 3];
        let sizes = [1, 1];
        let caps = [2, 2];
        let _ = solve_gap(&inst(2, 2, &costs, &sizes, &caps), &GapConfig::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn gap_solutions_marked_feasible_respect_capacity(
            m in 1usize..5,
            n in 1usize..10,
            seed in 0u64..500,
        ) {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = move |range: u64| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) % range
            };
            let costs: Vec<f64> = (0..m * n).map(|_| next(100) as f64).collect();
            let sizes: Vec<Size> = (0..n).map(|_| 1 + next(20)).collect();
            let capacities: Vec<Size> = (0..m).map(|_| 5 + next(40)).collect();
            let instance = GapInstance { m, n, costs: &costs, sizes: &sizes, capacities: &capacities };
            let s = solve_gap(&instance, &GapConfig::default());
            prop_assert_eq!(s.assignment.len(), n);
            prop_assert!(s.assignment.iter().all(|&i| (i as usize) < m));
            if s.feasible {
                let mut used = vec![0u64; m];
                for (j, &i) in s.assignment.iter().enumerate() {
                    used[i as usize] += sizes[j];
                }
                for i in 0..m {
                    prop_assert!(used[i] <= capacities[i]);
                }
            }
            // Reported cost must match the assignment.
            let recomputed: f64 = s.assignment.iter().enumerate()
                .map(|(j, &i)| costs[i as usize + j * m]).sum();
            prop_assert!((s.cost - recomputed).abs() < 1e-9);
        }
    }
}
