//! Linear Assignment Problem (LAP) solver: the Jonker–Volgenant flavor of
//! the Hungarian algorithm with dual potentials, `O(n³)`.
//!
//! In Burkard's original heuristic for the Quadratic Assignment Problem, the
//! two minimization subproblems (STEP 4 and STEP 6) are LAPs over the
//! permutation solution space. The [`QapSolver`](crate::QapSolver) uses this
//! module; it is also the `M = N`, equal-sizes special case of the paper's
//! §2.2.2.

use qbp_core::{Cost, DenseMatrix};

/// A solved linear assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LapSolution {
    /// `row_to_col[r]` is the column assigned to row `r`.
    pub row_to_col: Vec<usize>,
    /// Total cost of the assignment, in the input's units.
    pub cost: f64,
}

/// Solves the square min-cost assignment problem on an `n×n` cost matrix
/// given in row-major order.
///
/// Returns the optimal permutation and its cost. Costs may be arbitrary
/// finite floats; integer-valued inputs below 2⁵³ are handled exactly.
///
/// # Panics
///
/// Panics if `costs.len() != n*n` or any cost is non-finite.
pub fn solve_lap(n: usize, costs: &[f64]) -> LapSolution {
    assert_eq!(costs.len(), n * n, "cost matrix must be n*n");
    assert!(
        costs.iter().all(|c| c.is_finite()),
        "costs must be finite"
    );
    if n == 0 {
        return LapSolution {
            row_to_col: Vec::new(),
            cost: 0.0,
        };
    }
    // Shortest-augmenting-path Hungarian with potentials (1-based internal
    // indexing; p[j] is the row matched to column j, p[0] holds the row
    // currently being inserted).
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = costs[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut row_to_col = vec![0usize; n];
    for j in 1..=n {
        row_to_col[p[j] - 1] = j - 1;
    }
    let cost = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| costs[r * n + c])
        .sum();
    LapSolution { row_to_col, cost }
}

/// [`solve_lap`] plus observability: reports the solved subproblem to `obs`
/// as a [`SubproblemSolved`](qbp_observe::SolveEvent::SubproblemSolved)
/// event tagged with the caller's `iteration`. LAP answers are permutations,
/// hence always capacity-feasible. This is the entry point the QAP-mode
/// Burkard loop's STEP 4/6 use.
///
/// # Panics
///
/// Panics if `costs.len() != n*n` or any cost is non-finite.
pub fn solve_lap_observed(
    n: usize,
    costs: &[f64],
    iteration: usize,
    obs: &mut dyn qbp_observe::SolveObserver,
) -> LapSolution {
    let sol = solve_lap(n, costs);
    obs.on_event(&qbp_observe::SolveEvent::SubproblemSolved {
        iteration,
        kind: qbp_observe::SubproblemKind::Lap,
        cost: sol.cost,
        feasible: true,
    });
    sol
}

/// Convenience wrapper for exact integer costs; the returned cost is
/// recomputed in `i64` from the optimal permutation.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn solve_lap_int(costs: &DenseMatrix<Cost>) -> (Vec<usize>, Cost) {
    assert!(costs.is_square(), "LAP requires a square cost matrix");
    let n = costs.rows();
    let floats: Vec<f64> = costs.iter().map(|&c| c as f64).collect();
    let sol = solve_lap(n, &floats);
    let exact = sol
        .row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| costs[(r, c)])
        .sum();
    (sol.row_to_col, exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(n: usize, costs: &[f64]) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        perms(n)
            .into_iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .map(|(r, &c)| costs[r * n + c])
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn trivial_sizes() {
        let s = solve_lap(0, &[]);
        assert_eq!(s.cost, 0.0);
        let s = solve_lap(1, &[7.0]);
        assert_eq!(s.row_to_col, vec![0]);
        assert_eq!(s.cost, 7.0);
    }

    #[test]
    fn known_3x3() {
        // Classic example: optimal = 5 (0→1, 1→0, 2→2).
        let costs = [4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0];
        let s = solve_lap(3, &costs);
        assert_eq!(s.cost, 5.0);
        // Permutation validity.
        let mut seen = [false; 3];
        for &c in &s.row_to_col {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices (LCG) up to n = 6.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as f64
        };
        for n in 2..=6 {
            for _ in 0..5 {
                let costs: Vec<f64> = (0..n * n).map(|_| next()).collect();
                let s = solve_lap(n, &costs);
                assert_eq!(s.cost, brute_force(n, &costs), "n = {n}");
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let costs = [-5.0, 2.0, 3.0, -1.0];
        let s = solve_lap(2, &costs);
        assert_eq!(s.cost, -6.0);
        assert_eq!(s.row_to_col, vec![0, 1]);
    }

    #[test]
    fn integer_wrapper_is_exact() {
        let m = DenseMatrix::from_rows(vec![
            vec![10, 2, 8],
            vec![7, 9, 1],
            vec![3, 6, 4],
        ])
        .unwrap();
        let (perm, cost) = solve_lap_int(&m);
        assert_eq!(cost, 2 + 1 + 3);
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn rejects_wrong_length() {
        let _ = solve_lap(2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_costs() {
        let _ = solve_lap(1, &[f64::INFINITY]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lap_result_is_valid_permutation_and_optimal(
            n in 2usize..6,
            seed in 0u64..1000,
        ) {
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 50) as f64
            };
            let costs: Vec<f64> = (0..n * n).map(|_| next()).collect();
            let s = solve_lap(n, &costs);
            // Valid permutation.
            let mut seen = vec![false; n];
            for &c in &s.row_to_col {
                prop_assert!(!seen[c]);
                seen[c] = true;
            }
            // Not beaten by any single transposition (local optimality check,
            // cheap necessary condition).
            for a in 0..n {
                for b in a + 1..n {
                    let (ca, cb) = (s.row_to_col[a], s.row_to_col[b]);
                    let cur = costs[a * n + ca] + costs[b * n + cb];
                    let alt = costs[a * n + cb] + costs[b * n + ca];
                    prop_assert!(cur <= alt + 1e-9);
                }
            }
        }
    }
}
