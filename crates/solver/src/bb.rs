//! Exact branch-and-bound for the embedded Quadratic Boolean Program
//! `min_{y ∈ S} yᵀQ̂y` — a much stronger oracle than exhaustive
//! enumeration (practical to ~18 components instead of ~8), used to
//! validate the heuristic on mid-size instances and in the test suite.
//!
//! The search assigns components one at a time (highest-interaction first).
//! At each node the cost so far counts all interactions among assigned
//! components; the lower bound adds, for every unassigned component, the
//! cheapest placement against the already-assigned ones. Since `Q̂ ≥ 0`,
//! ignoring unassigned-to-unassigned interactions is admissible.

use qbp_core::{Assignment, ComponentId, Cost, Delay, QMatrix, NO_CONSTRAINT};
use std::time::{Duration, Instant};

/// Result of a [`branch_and_bound`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BbOutcome {
    /// The best assignment found.
    pub assignment: Assignment,
    /// Its embedded value `yᵀQ̂y`.
    pub value: Cost,
    /// `true` when the search completed (the result is provably optimal);
    /// `false` when the deadline cut it short (the result is an incumbent).
    pub proved_optimal: bool,
    /// Search-tree nodes expanded.
    pub nodes: u64,
}

/// Merged partner record for one component: `(other, weight_out, weight_in,
/// limit_out, limit_in)`.
#[derive(Debug, Clone, Copy)]
struct Partner {
    other: u32,
    w_out: Cost,
    w_in: Cost,
    limit_out: Delay,
    limit_in: Delay,
}

/// Exact minimization of `yᵀQ̂y` over capacity-feasible assignments.
///
/// Returns `None` when no capacity-feasible assignment exists. Worst-case
/// exponential: keep `n` small (≤ ~18) or pass a `deadline` — when it
/// expires the incumbent is returned with `proved_optimal = false`.
pub fn branch_and_bound(q: &QMatrix<'_>, deadline: Option<Duration>) -> Option<BbOutcome> {
    let problem = q.problem();
    let m = problem.m();
    let n = problem.n();
    let b = problem.topology().wire_cost();
    let d = problem.topology().delay();
    let beta = problem.beta();
    let alpha = problem.alpha();
    let penalty = q.penalty();

    // Merge each component's connections and timing constraints into one
    // partner list (both directions).
    let mut partners: Vec<Vec<Partner>> = vec![Vec::new(); n];
    {
        let mut index: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        let mut touch = |partners: &mut Vec<Vec<Partner>>, j: usize, k: usize| -> usize {
            let key = (j as u32, k as u32);
            *index.entry(key).or_insert_with(|| {
                partners[j].push(Partner {
                    other: k as u32,
                    w_out: 0,
                    w_in: 0,
                    limit_out: NO_CONSTRAINT,
                    limit_in: NO_CONSTRAINT,
                });
                partners[j].len() - 1
            })
        };
        for (a, c, w) in problem.circuit().edges() {
            let (ja, jc) = (a.index(), c.index());
            let slot = touch(&mut partners, ja, jc);
            partners[ja][slot].w_out += w;
            let slot = touch(&mut partners, jc, ja);
            partners[jc][slot].w_in += w;
        }
        for (a, c, dc) in problem.timing().iter() {
            let (ja, jc) = (a.index(), c.index());
            let slot = touch(&mut partners, ja, jc);
            partners[ja][slot].limit_out = partners[ja][slot].limit_out.min(dc);
            let slot = touch(&mut partners, jc, ja);
            partners[jc][slot].limit_in = partners[jc][slot].limit_in.min(dc);
        }
    }

    // Interaction of "j at i" with an *assigned* partner record at ik:
    // q̂((i,j),(ik,k)) + q̂((ik,k),(i,j)).
    let pair_cost = |p: &Partner, i: usize, ik: usize| -> Cost {
        let fwd = if p.limit_out != NO_CONSTRAINT && d[(i, ik)] > p.limit_out {
            penalty
        } else {
            beta * p.w_out * b[(i, ik)]
        };
        let bwd = if p.limit_in != NO_CONSTRAINT && d[(ik, i)] > p.limit_in {
            penalty
        } else {
            beta * p.w_in * b[(ik, i)]
        };
        fwd + bwd
    };

    // Assign heavy hitters first: total incident weight + constraint count.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&j| {
        let weight: Cost = partners[j].iter().map(|p| p.w_out + p.w_in + 1).sum();
        std::cmp::Reverse(weight)
    });
    let rank_of = {
        let mut r = vec![0usize; n];
        for (pos, &j) in order.iter().enumerate() {
            r[j] = pos;
        }
        r
    };

    struct Search<'a> {
        m: usize,
        order: &'a [usize],
        rank_of: &'a [usize],
        partners: &'a [Vec<Partner>],
        pair_cost: &'a dyn Fn(&Partner, usize, usize) -> Cost,
        diag: &'a dyn Fn(usize, usize) -> Cost,
        sizes: Vec<u64>,
        capacities: Vec<u64>,
        parts: Vec<u32>,
        remaining: Vec<u64>,
        best: Option<(Vec<u32>, Cost)>,
        nodes: u64,
        start: Instant,
        deadline: Option<Duration>,
        timed_out: bool,
    }

    impl Search<'_> {
        /// Placement cost of `j` at `i` against currently assigned partners.
        fn placement(&self, j: usize, i: usize) -> Cost {
            let mut c = (self.diag)(i, j);
            let my_rank = self.rank_of[j];
            for p in &self.partners[j] {
                let k = p.other as usize;
                if self.rank_of[k] < my_rank {
                    c += (self.pair_cost)(p, i, self.parts[k] as usize);
                }
            }
            c
        }

        /// Admissible remainder bound: each unassigned component's cheapest
        /// capacity-unaware placement against the assigned prefix.
        fn lower_bound(&self, depth: usize) -> Cost {
            let mut lb = 0;
            for &j in &self.order[depth..] {
                let mut bestc = Cost::MAX;
                for i in 0..self.m {
                    // (Capacity ignored in the bound: still admissible.)
                    let mut c = (self.diag)(i, j);
                    for p in &self.partners[j] {
                        let k = p.other as usize;
                        if self.rank_of[k] < depth {
                            c += (self.pair_cost)(p, i, self.parts[k] as usize);
                        }
                    }
                    bestc = bestc.min(c);
                }
                lb += bestc;
            }
            lb
        }

        fn go(&mut self, depth: usize, cost: Cost) {
            self.nodes += 1;
            if self.timed_out
                || (self.nodes.is_multiple_of(4096)
                    && self
                        .deadline
                        .is_some_and(|limit| self.start.elapsed() > limit))
            {
                self.timed_out = true;
                return;
            }
            if let Some((_, bv)) = &self.best {
                if cost + self.lower_bound(depth) >= *bv {
                    return;
                }
            }
            if depth == self.order.len() {
                self.best = Some((self.parts.clone(), cost));
                return;
            }
            let j = self.order[depth];
            // Candidate partitions cheapest-first for better pruning.
            let mut cands: Vec<(Cost, usize)> = (0..self.m)
                .filter(|&i| self.remaining[i] >= self.sizes[j])
                .map(|i| (self.placement(j, i), i))
                .collect();
            cands.sort();
            for (c, i) in cands {
                self.remaining[i] -= self.sizes[j];
                self.parts[j] = i as u32;
                self.go(depth + 1, cost + c);
                self.remaining[i] += self.sizes[j];
                if self.timed_out {
                    return;
                }
            }
        }
    }

    let diag = |i: usize, j: usize| -> Cost { alpha * problem.p(i, j) };
    let sizes: Vec<u64> = (0..n)
        .map(|j| problem.circuit().size(ComponentId::new(j)))
        .collect();
    let capacities = problem.topology().capacities().to_vec();
    let mut search = Search {
        m,
        order: &order,
        rank_of: &rank_of,
        partners: &partners,
        pair_cost: &pair_cost,
        diag: &diag,
        remaining: capacities.clone(),
        sizes,
        capacities,
        parts: vec![0; n],
        best: None,
        nodes: 0,
        start: Instant::now(),
        deadline,
        timed_out: false,
    };
    let _ = &search.capacities; // capacities retained for debug inspection
    search.go(0, 0);
    let timed_out = search.timed_out;
    let nodes = search.nodes;
    search.best.map(|(parts, value)| BbOutcome {
        assignment: Assignment::from_parts(parts).expect("n > 0"),
        value,
        proved_optimal: !timed_out,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive_qbp;
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_problem(seed: u64, n: usize, m: usize) -> qbp_core::Problem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut circuit = Circuit::new();
        for j in 0..n {
            circuit.add_component(format!("c{j}"), 1 + rng.random_range(0..3));
        }
        for a in 0..n {
            for b in 0..n {
                if a != b && rng.random::<f64>() < 0.35 {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), 1 + rng.random_range(0..4) as i64)
                        .expect("pair");
                }
            }
        }
        let mut tc = TimingConstraints::new(n);
        for a in 0..n {
            for b in 0..n {
                if a != b && rng.random::<f64>() < 0.2 {
                    tc.add(ComponentId::new(a), ComponentId::new(b), rng.random_range(0..3) as i64)
                        .expect("pair");
                }
            }
        }
        let total: u64 = circuit.total_size();
        ProblemBuilder::new(circuit, PartitionTopology::grid(1, m, total).expect("grid"))
            .timing(tc)
            .build()
            .expect("problem")
    }

    #[test]
    fn matches_exhaustive_on_small_instances() {
        for seed in 0..15 {
            let problem = random_problem(seed, 5, 3);
            let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
            let bb = branch_and_bound(&q, None).expect("solutions exist");
            let (_, exv) = exhaustive_qbp(&q).expect("solutions exist");
            assert!(bb.proved_optimal);
            assert_eq!(bb.value, exv, "seed {seed}");
            assert_eq!(q.value(&bb.assignment), bb.value, "seed {seed}: value consistent");
        }
    }

    #[test]
    fn respects_capacity() {
        // Unit capacities force a permutation.
        let mut circuit = Circuit::new();
        for j in 0..4 {
            circuit.add_component(format!("c{j}"), 1);
        }
        circuit
            .add_wires(ComponentId::new(0), ComponentId::new(1), 5)
            .expect("pair");
        let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 1).expect("grid"))
            .build()
            .expect("problem");
        let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
        let bb = branch_and_bound(&q, None).expect("permutations exist");
        let mut seen = [false; 4];
        for j in 0..4 {
            let i = bb.assignment.part_index(j);
            assert!(!seen[i]);
            seen[i] = true;
        }
        // Optimum: the wired pair adjacent → 2·5·1.
        assert_eq!(bb.value, 10);
    }

    #[test]
    fn detects_infeasibility() {
        let mut circuit = Circuit::new();
        circuit.add_component("big", 5);
        circuit.add_component("big2", 5);
        // Builder requires total capacity ≥ total size, but per-partition
        // packing can still fail: two size-5 components, partitions of 6 & 4.
        let topo = PartitionTopology::grid(1, 2, 6)
            .expect("grid")
            .with_capacities(vec![6, 4])
            .expect("caps");
        let problem = ProblemBuilder::new(circuit, topo).build().expect("problem");
        let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
        assert!(branch_and_bound(&q, None).is_none());
    }

    #[test]
    fn deadline_returns_incumbent() {
        let problem = random_problem(99, 14, 6);
        let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
        let bb = branch_and_bound(&q, Some(Duration::from_micros(50)));
        if let Some(out) = bb {
            // Either finished very fast or timed out with an incumbent.
            assert_eq!(q.value(&out.assignment), out.value);
        }
    }

    #[test]
    fn beats_or_ties_heuristic_and_proves_it() {
        for seed in [3u64, 7, 11] {
            let problem = random_problem(seed, 9, 4);
            let q = QMatrix::with_auto_penalty(&problem).expect("qmatrix");
            let bb = branch_and_bound(&q, None).expect("solutions exist");
            assert!(bb.proved_optimal);
            let heur = crate::QbpSolver::new(crate::QbpConfig {
                iterations: 40,
                seed,
                ..crate::QbpConfig::default()
            })
            .solve(&problem, None)
            .expect("heuristic");
            assert!(
                heur.embedded_value >= bb.value,
                "seed {seed}: heuristic {} below proven optimum {}",
                heur.embedded_value,
                bb.value
            );
        }
    }
}
