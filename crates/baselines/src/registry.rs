//! Method registry: construct any of the workspace's five solvers behind a
//! `Box<dyn Solver>` from its stable name plus one shared option set.
//!
//! This is the piece that lets drivers (the CLI's `solve`, the bench
//! harness, comparison scripts) stay method-agnostic: they parse a method
//! string and a [`CommonOpts`], call [`build_solver`], and from then on only
//! see the [`Solver`] trait. It lives here rather than in `qbp-solver`
//! because the registry must know every implementation, including the
//! baselines, and `qbp-baselines` already depends on `qbp-solver`.

use crate::{GfmConfig, GfmSolver, GklConfig, GklSolver};
use qbp_solver::{
    AnnealConfig, AnnealSolver, CommonOpts, Configure, QapConfig, QapSolver, QbpConfig, QbpSolver,
    Solver,
};

/// Every method name [`build_solver`] accepts, in the order the paper (and
/// the CLI usage text) lists them.
pub const SOLVER_NAMES: [&str; 5] = ["qbp", "qap", "gfm", "gkl", "anneal"];

/// Builds the named solver with `opts` applied over its default
/// configuration. Returns `None` for an unknown name; the caller owns the
/// error message (the CLI lists [`SOLVER_NAMES`] in its usage text).
///
/// ```
/// use qbp_baselines::registry::build_solver;
/// use qbp_solver::CommonOpts;
///
/// let solver = build_solver("gkl", &CommonOpts::default()).expect("known method");
/// assert_eq!(solver.name(), "gkl");
/// assert!(build_solver("simplex", &CommonOpts::default()).is_none());
/// ```
pub fn build_solver(kind: &str, opts: &CommonOpts) -> Option<Box<dyn Solver>> {
    match kind {
        "qbp" => Some(Box::new(QbpSolver::new(
            QbpConfig::default().with_common(opts),
        ))),
        "qap" => Some(Box::new(QapSolver::new(
            QapConfig::default().with_common(opts),
        ))),
        "gfm" => Some(Box::new(GfmSolver::new(
            GfmConfig::default().with_common(opts),
        ))),
        "gkl" => Some(Box::new(GklSolver::new(
            GklConfig::default().with_common(opts),
        ))),
        "anneal" => Some(Box::new(AnnealSolver::new(
            AnnealConfig::default().with_common(opts),
        ))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_listed_name_and_rejects_others() {
        for name in SOLVER_NAMES {
            let solver = build_solver(name, &CommonOpts::default()).expect("listed name builds");
            assert_eq!(solver.name(), name);
        }
        assert!(build_solver("", &CommonOpts::default()).is_none());
        assert!(build_solver("QBP", &CommonOpts::default()).is_none());
    }

    #[test]
    fn opts_reach_the_config() {
        let opts = CommonOpts {
            seed: 42,
            iterations: Some(3),
            ..CommonOpts::default()
        };
        // Round-trip through a config we can read back directly.
        let config = GklConfig::default().with_common(&opts);
        assert_eq!(config.seed, 42);
        assert_eq!(config.max_outer_loops, 3);
    }
}
