//! GKL — the paper's second comparison baseline (§5): a generalization of
//! Kernighan & Lin's heuristic that *switches a pair of components at a
//! time*, with arbitrary interconnection costs and feasibility-preserving
//! swaps.
//!
//! Each outer loop unlocks everything and tentatively applies the best
//! feasible swap repeatedly (locking both participants) until no candidates
//! remain, then rolls back to the best prefix. The paper "force[s] the
//! algorithm to terminate after the first 6 outer loops due to excessive CPU
//! runtime"; that cutoff is the default here too.

use crate::common::{
    affected_components, derive_start, require_feasible_start, BaselineOutcome, GainKey,
};
use qbp_core::exec::{ExecCtx, ExecStatus};
use qbp_core::{
    swap_is_timing_feasible, Assignment, ComponentId, Error, Evaluator, PartitionProfile, Problem,
    UsageTracker,
};
use qbp_observe::{BatchPhase, MoveKind, NoopObserver, SolveEvent, SolveObserver, SolverId};
use qbp_solver::{moved_from, CommonOpts, Configure, SolveReport, Solver};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configuration for [`GklSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GklConfig {
    /// Maximum outer loops (paper: 6 — "any gain obtained beyond the first 6
    /// outer loops is insignificant").
    pub max_outer_loops: usize,
    /// Allow negative-gain swaps inside a loop (best-prefix rollback
    /// recovers).
    pub hill_climbing: bool,
    /// Seed for deriving a feasible start when [`Solver::solve`] is called
    /// with `init = None`. The swap loops themselves are deterministic and
    /// never draw from it.
    pub seed: u64,
    /// Worker threads (`0` = per-core) for the per-outer-loop pair-gain
    /// table build and, on large instances, the speculative-batch swap sweep
    /// (see [`qbp_core::moves`]) with its fanned top-1 partner rescans. The
    /// result is bit-identical for every setting — speculation revalidates
    /// against frozen snapshots and commits stay serial.
    pub threads: usize,
    /// Minimum estimated work (arithmetic cells) per speculative round
    /// before the swap sweep batches and fans: below it, spawning workers
    /// costs more than the round's revalidations and the serial sweep wins
    /// at any core count. Also gates the per-commit top-1 partner rescan
    /// fan. `0` forces batching wherever the instance grain allows (useful
    /// in tests), `usize::MAX` pins the serial sweep. Never affects results
    /// — both arms are bit-identical.
    pub sweep_min_fan_work: usize,
}

impl Default for GklConfig {
    fn default() -> Self {
        GklConfig {
            max_outer_loops: 6,
            hill_climbing: true,
            seed: 0x5EED_CAFE,
            threads: 1,
            sweep_min_fan_work: crate::common::SWEEP_FAN_MIN_ROUND_WORK,
        }
    }
}

impl Configure for GklConfig {
    fn apply_common(&mut self, opts: &CommonOpts) {
        self.seed = opts.seed;
        if let Some(iterations) = opts.iterations {
            // The shared iteration budget maps to KL outer loops.
            self.max_outer_loops = iterations;
        }
        self.threads = opts.threads;
        // No stall window: each outer loop must strictly improve, so the
        // loop cannot cycle.
    }

    fn common(&self) -> CommonOpts {
        CommonOpts {
            seed: self.seed,
            iterations: Some(self.max_outer_loops),
            stall_window: None,
            threads: self.threads,
        }
    }
}

/// The generalized Kernighan–Lin pair-swap solver.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, Assignment, Evaluator};
/// use qbp_baselines::{GklConfig, GklSolver};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 1);
/// let b = circuit.add_component("b", 1);
/// let c = circuit.add_component("c", 1);
/// let d = circuit.add_component("d", 1);
/// circuit.add_wires(a, b, 5)?;
/// circuit.add_wires(c, d, 5)?;
/// // Capacity 1 per partition: only swaps can rearrange anything.
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 1)?).build()?;
/// let start = Assignment::from_parts(vec![0, 3, 1, 2])?; // both wire bundles at distance 2
/// let outcome = GklSolver::new(GklConfig::default()).solve(&problem, &start)?;
/// assert!(outcome.cost < Evaluator::new(&problem).cost(&start));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GklSolver {
    config: GklConfig,
}

/// Serial body of the top-1 partner refresh: the best current swap partner
/// for `k` among unlocked components in other partitions (ties keep the
/// lowest index, matching the serial strict-`>` scan). A pure function of
/// the passed state, so the batched sweep can run it concurrently for
/// different `k` with bit-identical results.
fn best_swap_partner_scan(
    eval: &Evaluator<'_>,
    profile: &PartitionProfile,
    assignment: &Assignment,
    locked: &[bool],
    k: ComponentId,
) -> Option<(i64, usize)> {
    let mut best_pair: Option<(i64, usize)> = None;
    for (l, &l_locked) in locked.iter().enumerate() {
        if l == k.index() || l_locked {
            continue;
        }
        if assignment.part_index(l) == assignment.part_index(k.index()) {
            continue;
        }
        let g = -eval.swap_delta_profiled_lookup(profile, assignment, k, ComponentId::new(l));
        if best_pair.is_none_or(|(bg, _)| g > bg) {
            best_pair = Some((g, l));
        }
    }
    best_pair
}

impl GklSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: GklConfig) -> Self {
        GklSolver { config }
    }

    /// Runs GKL from a feasible initial assignment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InfeasibleStart`] when `initial` violates C1 or C2,
    /// or a dimension error when it does not match the problem.
    pub fn solve(&self, problem: &Problem, initial: &Assignment) -> Result<BaselineOutcome, Error> {
        self.solve_observed(problem, initial, &mut NoopObserver)
    }

    /// [`GklSolver::solve`] plus observability: streams
    /// [`SolveEvent`]s to `obs` — one `IterationStarted`/`IterationFinished`
    /// pair per outer loop, and one `MoveEvaluated` (kind `swap`) per
    /// tentatively applied swap, emitted after the loop's best-prefix
    /// rollback so `accepted` tells whether the swap was *retained*.
    ///
    /// # Errors
    ///
    /// Same as [`GklSolver::solve`].
    pub fn solve_observed(
        &self,
        problem: &Problem,
        initial: &Assignment,
        obs: &mut dyn SolveObserver,
    ) -> Result<BaselineOutcome, Error> {
        self.solve_observed_exec(problem, initial, &ExecCtx::unbounded(), obs)
    }

    /// [`GklSolver::solve_observed`] under an execution budget: the outer
    /// loop checks `exec` at each loop boundary, and an expired deadline or
    /// fired cancel token stops before the next loop starts. The returned
    /// assignment is the best prefix retained so far — feasible by
    /// construction — with [`BaselineOutcome::status`] recording how the run
    /// ended.
    ///
    /// # Errors
    ///
    /// Same as [`GklSolver::solve`].
    pub fn solve_observed_exec(
        &self,
        problem: &Problem,
        initial: &Assignment,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<BaselineOutcome, Error> {
        require_feasible_start(problem, initial)?;
        let start = Instant::now();
        let eval = Evaluator::new(problem);
        let mut assignment = initial.clone();
        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Gkl,
            components: problem.n(),
            partitions: problem.m(),
        });
        // Per-partition neighbor-weight aggregates; swap gains below go
        // through the padded-SoA profiled kernel
        // ([`Evaluator::swap_delta_profiled_lookup`]), bit-identical to the
        // plain adjacency walk. Each tentative (or rolled-back) swap patches
        // only the two movers' neighbors.
        let mut profile = PartitionProfile::plain(problem, &assignment);
        obs.on_event(&SolveEvent::ProfileUpdated {
            iteration: 0,
            rebuilt: true,
            moved: problem.n(),
        });
        let mut outer = 0;
        let mut total_swaps = 0;
        let mut status = ExecStatus::Completed;
        // Maintained incrementally from the retained gains so the per-loop
        // IterationFinished value costs nothing extra.
        let mut value = eval.cost(&assignment);
        while outer < self.config.max_outer_loops {
            if let Some(stop) = exec.check(outer + 1) {
                match stop {
                    ExecStatus::Cancelled => {
                        obs.on_event(&SolveEvent::Cancelled { iteration: outer + 1 });
                    }
                    _ => obs.on_event(&SolveEvent::BudgetExhausted { iteration: outer + 1 }),
                }
                status = stop;
                break;
            }
            outer += 1;
            obs.on_event(&SolveEvent::IterationStarted { iteration: outer });
            let (gain, swaps) =
                self.run_outer_loop(problem, &eval, &mut assignment, &mut profile, outer, obs);
            total_swaps += swaps;
            value -= gain;
            obs.on_event(&SolveEvent::IterationFinished {
                iteration: outer,
                value,
                feasible: true,
                improved: gain > 0,
            });
            if gain <= 0 {
                break;
            }
        }
        obs.on_event(&SolveEvent::SolveFinished {
            iterations: outer,
            value,
            feasible: true,
        });
        Ok(BaselineOutcome {
            cost: value,
            assignment,
            passes: outer,
            moves_applied: total_swaps,
            elapsed: start.elapsed(),
            status,
        })
    }

    /// One outer loop: tentative best-swap sequence with locking, then
    /// rollback to the best prefix. Returns `(retained gain, retained swap
    /// count)`.
    fn run_outer_loop(
        &self,
        problem: &Problem,
        eval: &Evaluator<'_>,
        assignment: &mut Assignment,
        profile: &mut PartitionProfile,
        outer: usize,
        obs: &mut dyn SolveObserver,
    ) -> (i64, usize) {
        let n = problem.n();
        let mut usage = UsageTracker::new(problem, assignment);
        let mut locked = vec![false; n];
        // Max-heap over candidate pairs (gain, j1, j2); keys validated on pop.
        // The O(N²) table build fans rows (fixed j1, all j2 > j1) across the
        // thread budget: each row is a pure function of the frozen assignment
        // and profile, and rows are concatenated in index order, so the heap
        // receives the exact serial insertion sequence for any thread count.
        let intra_threads = qbp_core::par::effective_threads(self.config.threads);
        let tasks = qbp_core::par::workers_for(intra_threads, n);
        let frozen: &PartitionProfile = profile;
        let rows = qbp_core::par::map_collect(intra_threads, n, |j1| {
            let mut row: Vec<(GainKey, u32, u32)> = Vec::new();
            for j2 in j1 + 1..n {
                if assignment.part_index(j1) == assignment.part_index(j2) {
                    continue;
                }
                let gain = -eval.swap_delta_profiled_lookup(
                    frozen,
                    assignment,
                    ComponentId::new(j1),
                    ComponentId::new(j2),
                );
                row.push((GainKey(gain), j1 as u32, j2 as u32));
            }
            row
        });
        if tasks > 1 {
            obs.on_event(&SolveEvent::ParallelBatch {
                iteration: outer,
                phase: BatchPhase::GainTable,
                tasks,
                threads: intra_threads,
            });
        }
        let mut heap: BinaryHeap<(GainKey, u32, u32)> = BinaryHeap::new();
        for row in rows {
            heap.extend(row);
        }

        let mut applied: Vec<(ComponentId, ComponentId, i64)> = Vec::new();
        let mut cum_gain: i64 = 0;
        let mut best_gain: i64 = 0;
        let mut best_len: usize = 0;
        let mut profile_patches: usize = 0;

        // Below a constant pair-count grain (or single-threaded) the classic
        // serial swap loop runs untouched; above it, the speculative batched
        // sweep consumes the heap in exactly the serial pop order and replays
        // exactly the serial decisions (see `qbp_core::moves`), so both arms
        // are bit-identical. Keep their commit bodies in lockstep when
        // editing either one — the cross-thread proptests enforce it.
        let use_batches = intra_threads > 1
            && n * n >= crate::common::SWEEP_PAR_MIN_CELLS
            && crate::common::sweep_round_work(problem) >= self.config.sweep_min_fan_work;
        let mut sweep_tasks = 1usize;
        if !use_batches {
            while let Some((GainKey(key), j1u, j2u)) = heap.pop() {
                let (j1, j2) = (j1u as usize, j2u as usize);
                if locked[j1] || locked[j2] {
                    continue;
                }
                let (c1, c2) = (ComponentId::new(j1), ComponentId::new(j2));
                let (i1, i2) = (
                    assignment.partition_of(c1),
                    assignment.partition_of(c2),
                );
                if i1 == i2 {
                    continue;
                }
                let gain = -eval.swap_delta_profiled_lookup(profile, assignment, c1, c2);
                if gain < key {
                    let still_max = heap.peek().is_none_or(|&(GainKey(next), _, _)| gain >= next);
                    if !still_max {
                        heap.push((GainKey(gain), j1u, j2u));
                        continue;
                    }
                }
                if !self.config.hill_climbing && gain <= 0 {
                    break;
                }
                if !usage.swap_fits(problem, c1, i1, c2, i2)
                    || !swap_is_timing_feasible(problem, assignment, c1, c2)
                {
                    continue;
                }
                // Apply tentatively and lock both. The profile patch never reads
                // the assignment, so the two single-component patches compose
                // into the swap in either order.
                usage.apply_move(problem, c1, i1, i2);
                usage.apply_move(problem, c2, i2, i1);
                assignment.swap(c1, c2);
                profile.apply_move(j1, i1.index(), i2.index());
                profile.apply_move(j2, i2.index(), i1.index());
                profile_patches += 2;
                locked[j1] = true;
                locked[j2] = true;
                cum_gain += gain;
                applied.push((c1, c2, gain));
                if cum_gain > best_gain {
                    best_gain = cum_gain;
                    best_len = applied.len();
                }
                // Refresh pairs touching the neighborhoods of the swapped pair:
                // for each affected unlocked component, push its best current
                // partner (top-1 refresh; stale entries for other partners are
                // re-validated on pop).
                let mut affected = affected_components(problem, c1);
                affected.extend(affected_components(problem, c2));
                affected.sort();
                affected.dedup();
                for k in affected {
                    if locked[k.index()] {
                        continue;
                    }
                    if let Some((g, l)) =
                        best_swap_partner_scan(eval, profile, assignment, &locked, k)
                    {
                        let (a, b) = if k.index() < l { (k.index(), l) } else { (l, k.index()) };
                        heap.push((GainKey(g), a as u32, b as u32));
                    }
                }
            }
        } else {
            let mut batch = qbp_core::moves::BatchQueue::new();
            let mut touch = qbp_core::moves::TouchLog::new(n);
            'rounds: loop {
                let prefetched =
                    batch.prefetch(&mut heap, qbp_core::moves::SPECULATIVE_BATCH);
                if prefetched == 0 {
                    break;
                }
                touch.begin_round();
                // Speculate: revalidate the whole batch against the frozen
                // pre-round state. Entries that turn out locked or touched
                // are re-handled serially at commit; their slots are dead.
                let (spec, tasks) = {
                    let frozen: &PartitionProfile = profile;
                    let frozen_asg: &Assignment = assignment;
                    let frozen_locked: &[bool] = &locked;
                    batch.evaluate(intra_threads, |&(_, j1u, j2u)| {
                        let (j1, j2) = (j1u as usize, j2u as usize);
                        if frozen_locked[j1]
                            || frozen_locked[j2]
                            || frozen_asg.part_index(j1) == frozen_asg.part_index(j2)
                        {
                            return 0;
                        }
                        -eval.swap_delta_profiled_lookup(
                            frozen,
                            frozen_asg,
                            ComponentId::new(j1),
                            ComponentId::new(j2),
                        )
                    })
                };
                sweep_tasks = sweep_tasks.max(tasks);
                // Indexed on purpose: the commit walks `spec`, the batch
                // buffer, and the `idx + 1` runner-up in lockstep and
                // requeues the tail from `idx` on abort.
                #[allow(clippy::needless_range_loop)]
                for idx in 0..prefetched {
                    let entry = batch.entries()[idx];
                    // A commit this round pushed a candidate that beats the
                    // rest of the batch: the serial loop would pop it next,
                    // so abort and let the next round fetch it. (Impossible
                    // at idx == 0, so every round consumes an entry.)
                    if heap.peek().is_some_and(|top| *top > entry) {
                        batch.requeue_from(&mut heap, idx);
                        continue 'rounds;
                    }
                    let (GainKey(key), j1u, j2u) = entry;
                    let (j1, j2) = (j1u as usize, j2u as usize);
                    if locked[j1] || locked[j2] {
                        continue;
                    }
                    let (c1, c2) = (ComponentId::new(j1), ComponentId::new(j2));
                    let (i1, i2) = (
                        assignment.partition_of(c1),
                        assignment.partition_of(c2),
                    );
                    if i1 == i2 {
                        continue;
                    }
                    // The speculative gain is exact while both participants
                    // are untouched this round; otherwise recompute — exactly
                    // the serial revalidation.
                    let gain = if touch.touched(j1) || touch.touched(j2) {
                        -eval.swap_delta_profiled_lookup(profile, assignment, c1, c2)
                    } else {
                        spec[idx]
                    };
                    if gain < key {
                        // The conceptual heap still holds the rest of the
                        // batch: the runner-up is the better of the true heap
                        // top and the next buffered entry.
                        let heap_next = heap.peek().map(|&(GainKey(g), _, _)| g);
                        let batch_next =
                            batch.entries().get(idx + 1).map(|&(GainKey(g), _, _)| g);
                        let still_max =
                            heap_next.max(batch_next).is_none_or(|next| gain >= next);
                        if !still_max {
                            heap.push((GainKey(gain), j1u, j2u));
                            continue;
                        }
                    }
                    if !self.config.hill_climbing && gain <= 0 {
                        break 'rounds;
                    }
                    if !usage.swap_fits(problem, c1, i1, c2, i2)
                        || !swap_is_timing_feasible(problem, assignment, c1, c2)
                    {
                        continue;
                    }
                    // Apply tentatively and lock both (see the serial arm).
                    usage.apply_move(problem, c1, i1, i2);
                    usage.apply_move(problem, c2, i2, i1);
                    assignment.swap(c1, c2);
                    profile.apply_move(j1, i1.index(), i2.index());
                    profile.apply_move(j2, i2.index(), i1.index());
                    profile_patches += 2;
                    locked[j1] = true;
                    locked[j2] = true;
                    cum_gain += gain;
                    applied.push((c1, c2, gain));
                    if cum_gain > best_gain {
                        best_gain = cum_gain;
                        best_len = applied.len();
                    }
                    // Touch set: the swapped pair plus everything whose gain
                    // the swap can change (wire neighbors and timing partners
                    // of both movers — the same set the refresh walks).
                    let mut affected = affected_components(problem, c1);
                    affected.extend(affected_components(problem, c2));
                    affected.sort();
                    affected.dedup();
                    touch.touch(j1);
                    touch.touch(j2);
                    for k in &affected {
                        touch.touch(k.index());
                    }
                    // Top-1 partner refresh: each unlocked affected component
                    // runs an O(N) scan over a state the refresh itself never
                    // mutates, so the scans fan across the thread budget when
                    // the neighborhood is large (hub components). Pushes stay
                    // serial in k order.
                    let refreshers: Vec<ComponentId> = affected
                        .into_iter()
                        .filter(|k| !locked[k.index()])
                        .collect();
                    // Fan gate: each scan is O(N) cells, and this fan spawns
                    // per commit, so the whole rescan must clear the same
                    // spawn-amortization bar as a speculative round.
                    let rescan_work = refreshers.len() * n;
                    let best_pairs: Vec<Option<(i64, usize)>> =
                        if rescan_work >= crate::common::SWEEP_PAR_MIN_CELLS
                            && rescan_work >= self.config.sweep_min_fan_work
                        {
                            let frozen: &PartitionProfile = profile;
                            let frozen_asg: &Assignment = assignment;
                            let frozen_locked: &[bool] = &locked;
                            let refs = &refreshers;
                            sweep_tasks = sweep_tasks
                                .max(qbp_core::par::workers_for(intra_threads, refs.len()));
                            qbp_core::par::map_collect(intra_threads, refs.len(), |ki| {
                                best_swap_partner_scan(
                                    eval,
                                    frozen,
                                    frozen_asg,
                                    frozen_locked,
                                    refs[ki],
                                )
                            })
                        } else {
                            refreshers
                                .iter()
                                .map(|&k| {
                                    best_swap_partner_scan(eval, profile, assignment, &locked, k)
                                })
                                .collect()
                        };
                    for (k, best) in refreshers.iter().zip(best_pairs) {
                        if let Some((g, l)) = best {
                            let (a, b) =
                                if k.index() < l { (k.index(), l) } else { (l, k.index()) };
                            heap.push((GainKey(g), a as u32, b as u32));
                        }
                    }
                }
            }
            if sweep_tasks > 1 {
                obs.on_event(&SolveEvent::ParallelBatch {
                    iteration: outer,
                    phase: BatchPhase::Sweep,
                    tasks: sweep_tasks,
                    threads: intra_threads,
                });
            }
        }

        // Roll back to the best prefix, then report every tentative swap:
        // `accepted` means "survived the rollback", the only acceptance
        // notion KL has (swaps are always applied first, judged later).
        for &(c1, c2, _) in applied[best_len..].iter().rev() {
            let at1 = assignment.part_index(c1.index());
            let at2 = assignment.part_index(c2.index());
            assignment.swap(c1, c2);
            profile.apply_move(c1.index(), at1, at2);
            profile.apply_move(c2.index(), at2, at1);
            profile_patches += 2;
        }
        obs.on_event(&SolveEvent::ProfileUpdated {
            iteration: outer,
            rebuilt: false,
            moved: profile_patches,
        });
        for (idx, &(_, _, gain)) in applied.iter().enumerate() {
            obs.on_event(&SolveEvent::MoveEvaluated {
                iteration: outer,
                kind: MoveKind::Swap,
                delta: -gain,
                accepted: idx < best_len,
            });
        }
        (best_gain, best_len)
    }
}

impl Solver for GklSolver {
    fn name(&self) -> &'static str {
        "gkl"
    }

    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let derived;
        // Deriving a feasible start is the run's uninterruptible minimum
        // work: even an already-expired budget yields a feasible answer.
        let start = match init {
            Some(a) => a,
            None => {
                derived = derive_start(problem, self.config.seed)?;
                &derived
            }
        };
        let out = self.solve_observed_exec(problem, start, exec, obs)?;
        Ok(SolveReport {
            solver: "gkl",
            moves_applied: moved_from(Some(start), &out.assignment),
            objective: out.cost,
            embedded_value: None,
            feasible: true,
            iterations: out.passes,
            elapsed: out.elapsed,
            auto_profile: None,
            assignment: out.assignment,
            status: out.status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{
        check_feasibility, Circuit, PartitionTopology, ProblemBuilder, TimingConstraints,
    };

    /// Two tightly-wired pairs placed diagonally; unit capacities mean only
    /// swaps can fix the layout.
    fn crossed_pairs() -> (Problem, Assignment) {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let x = c.add_component("x", 1);
        let y = c.add_component("y", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(x, y, 5).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 1).unwrap())
            .build()
            .unwrap();
        // a at p0, b at p3 (distance 2); x at p1, y at p2 (distance 2).
        let start = Assignment::from_parts(vec![0, 3, 1, 2]).unwrap();
        (p, start)
    }

    #[test]
    fn fixes_crossed_pairs_to_optimal() {
        let (p, start) = crossed_pairs();
        let eval = Evaluator::new(&p);
        assert_eq!(eval.cost(&start), 2 * (5 * 2 + 5 * 2));
        let out = GklSolver::default().solve(&p, &start).unwrap();
        // Optimal: each pair on adjacent cells → 2·(5+5) = 20.
        assert_eq!(out.cost, 20);
        assert!(check_feasibility(&p, &out.assignment).is_feasible());
    }

    #[test]
    fn unit_capacities_preserved() {
        let (p, start) = crossed_pairs();
        let out = GklSolver::default().solve(&p, &start).unwrap();
        let mut counts = vec![0; 4];
        for j in 0..4 {
            counts[out.assignment.part_index(j)] += 1;
        }
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn respects_timing_constraints() {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let x = c.add_component("x", 1);
        let y = c.add_component("y", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(x, y, 5).unwrap();
        // Pin a and x within distance 1 of each other.
        let mut tc = TimingConstraints::new(4);
        tc.add_symmetric(a, x, 1).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 1).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let start = Assignment::from_parts(vec![0, 3, 1, 2]).unwrap();
        let out = GklSolver::default().solve(&p, &start).unwrap();
        assert!(check_feasibility(&p, &out.assignment).is_feasible());
    }

    #[test]
    fn rejects_infeasible_start() {
        let (p, _) = crossed_pairs();
        let bad = Assignment::all_in_first(4); // 4 components in capacity-1
        assert!(matches!(
            GklSolver::default().solve(&p, &bad),
            Err(Error::InfeasibleStart { .. })
        ));
    }

    #[test]
    fn never_worse_than_start_and_outer_cutoff_respected() {
        let (p, start) = crossed_pairs();
        let eval = Evaluator::new(&p);
        let out = GklSolver::new(GklConfig {
            max_outer_loops: 1,
            ..GklConfig::default()
        })
        .solve(&p, &start)
        .unwrap();
        assert!(out.cost <= eval.cost(&start));
        assert_eq!(out.passes, 1);
    }

    /// Deterministic pseudo-random instance with unit sizes, large enough to
    /// cross the speculative-batch grain (`n * n >= SWEEP_PAR_MIN_CELLS`);
    /// callers zero `sweep_min_fan_work` to clear the spawn-amortization
    /// gate too. `hub` additionally wires component 0 to every other
    /// component, which makes post-swap neighborhoods big enough to fan the
    /// partner rescans.
    fn lcg_problem(n: usize, rows: usize, cols: usize, hub: bool) -> (Problem, Assignment) {
        let mut c = Circuit::new();
        for j in 0..n {
            c.add_component(format!("c{j}"), 1);
        }
        let mut state = 0xFEED_F00D_DEAD_BEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..n * 3 {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                let w = 1 + (next() % 9) as i64;
                c.add_connection(ComponentId::new(a), ComponentId::new(b), w)
                    .unwrap();
            }
        }
        if hub {
            for j in 1..n {
                c.add_connection(ComponentId::new(0), ComponentId::new(j), 1)
                    .unwrap();
            }
        }
        let m = rows * cols;
        let p = ProblemBuilder::new(c, PartitionTopology::grid(rows, cols, n as u64).unwrap())
            .build()
            .unwrap();
        let parts: Vec<u32> = (0..n).map(|j| (j % m) as u32).collect();
        let start = Assignment::from_parts(parts).unwrap();
        (p, start)
    }

    #[test]
    fn batched_sweep_is_bit_identical_on_large_instances() {
        // Covers M = 4, M = 16, M = 5 (padded rows), and a hub instance
        // whose refresh neighborhoods fan the partner rescans.
        for (n, rows, cols, hub) in [
            (96usize, 2usize, 2usize, false),
            (72, 2, 8, false),
            (80, 1, 5, false),
            (96, 2, 2, true),
        ] {
            let (p, start) = lcg_problem(n, rows, cols, hub);
            assert!(n * n >= 4096, "instance must cross the batch grain");
            let serial = GklSolver::default().solve(&p, &start).unwrap();
            for threads in [2usize, 4, 8] {
                let out = GklSolver::new(GklConfig {
                    threads,
                    sweep_min_fan_work: 0,
                    ..GklConfig::default()
                })
                .solve(&p, &start)
                .unwrap();
                assert_eq!(
                    out.cost,
                    serial.cost,
                    "n={n} m={} hub={hub} threads={threads}",
                    p.m()
                );
                assert_eq!(out.assignment.as_slice(), serial.assignment.as_slice());
                assert_eq!(out.moves_applied, serial.moves_applied);
                assert_eq!(out.passes, serial.passes);
            }
        }
    }

    struct SweepCounter {
        sweeps: usize,
    }

    impl SolveObserver for SweepCounter {
        fn on_event(&mut self, e: &SolveEvent) {
            if let SolveEvent::ParallelBatch {
                phase: BatchPhase::Sweep,
                tasks,
                ..
            } = e
            {
                assert!(*tasks > 1, "Sweep batches are only emitted when fanned");
                self.sweeps += 1;
            }
        }
    }

    #[test]
    fn sweep_batches_are_reported_only_when_fanned() {
        let (p, start) = lcg_problem(96, 2, 2, false);
        let mut serial = SweepCounter { sweeps: 0 };
        GklSolver::default()
            .solve_observed(&p, &start, &mut serial)
            .unwrap();
        assert_eq!(serial.sweeps, 0, "serial traces must stay batch-free");
        let mut fanned = SweepCounter { sweeps: 0 };
        GklSolver::new(GklConfig {
            threads: 4,
            sweep_min_fan_work: 0,
            ..GklConfig::default()
        })
        .solve_observed(&p, &start, &mut fanned)
        .unwrap();
        assert!(fanned.sweeps >= 1, "4-thread sweep should report batches");
    }

    #[test]
    fn different_sizes_swap_when_capacity_allows() {
        let mut c = Circuit::new();
        let a = c.add_component("a", 2);
        let _b = c.add_component("b", 1);
        let x = c.add_component("x", 1);
        c.add_wires(a, x, 4).unwrap();
        // a (size 2) sits two cells from x; swapping a (p0) and b (p1)
        // brings a adjacent to x. Capacity 2 permits the swap.
        let p = ProblemBuilder::new(c, PartitionTopology::grid(1, 3, 2).unwrap())
            .build()
            .unwrap();
        let start = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        let out = GklSolver::default().solve(&p, &start).unwrap();
        let eval = Evaluator::new(&p);
        assert!(out.cost < eval.cost(&start));
        assert!(check_feasibility(&p, &out.assignment).is_feasible());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qbp_core::{check_feasibility, Circuit, PartitionTopology, ProblemBuilder};

    fn arb_spread_instance() -> impl Strategy<Value = (Problem, Assignment)> {
        (4usize..10, 2usize..5).prop_flat_map(|(n, m)| {
            let edges = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..5),
                1..16,
            );
            let parts = proptest::collection::vec(0u32..m as u32, n);
            (Just((n, m)), edges, parts).prop_map(|((n, m), edges, parts)| {
                let mut circuit = Circuit::new();
                for j in 0..n {
                    circuit.add_component(format!("c{j}"), 1);
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .unwrap();
                }
                // Unit sizes with generous capacity: any spread is feasible.
                let problem = ProblemBuilder::new(
                    circuit,
                    PartitionTopology::grid(1, m, n as u64).unwrap(),
                )
                .build()
                .unwrap();
                let start = Assignment::from_parts(parts).unwrap();
                (problem, start)
            })
        })
    }

    proptest! {
        #[test]
        fn gkl_preserves_feasibility_and_never_regresses(
            (problem, start) in arb_spread_instance()
        ) {
            let eval = Evaluator::new(&problem);
            let out = GklSolver::default().solve(&problem, &start).unwrap();
            prop_assert!(check_feasibility(&problem, &out.assignment).is_feasible());
            prop_assert!(out.cost <= eval.cost(&start));
            prop_assert_eq!(out.cost, eval.cost(&out.assignment));
            // Swaps preserve the per-partition component counts exactly
            // (unit sizes ⇒ multiset of partition loads is invariant).
            let mut before = vec![0usize; problem.m()];
            let mut after = vec![0usize; problem.m()];
            for j in 0..problem.n() {
                before[start.part_index(j)] += 1;
                after[out.assignment.part_index(j)] += 1;
            }
            prop_assert_eq!(before, after);
        }

        // Satellite-3 coverage: the parallel pair-gain table build must
        // leave the whole solve bit-identical for any thread count.
        #[test]
        fn gkl_is_bit_identical_across_thread_counts(
            (problem, start) in arb_spread_instance()
        ) {
            let serial = GklSolver::default().solve(&problem, &start).unwrap();
            for threads in [2usize, 4, 8] {
                let par = GklSolver::new(GklConfig {
                    threads,
                    sweep_min_fan_work: 0,
                    ..GklConfig::default()
                })
                .solve(&problem, &start)
                .unwrap();
                prop_assert_eq!(par.cost, serial.cost, "threads={}", threads);
                prop_assert_eq!(&par.assignment, &serial.assignment, "threads={}", threads);
            }
        }
    }
}
