//! Shared infrastructure for the interchange baselines: outcome type,
//! float-ordered heap keys, and the "affected components" neighborhood used
//! to refresh gains after a move.

use qbp_core::exec::ExecStatus;
use qbp_core::{check_feasibility, Assignment, ComponentId, Cost, Error, Problem};
use std::cmp::Ordering;
use std::time::Duration;

/// Result of a baseline (GFM/GKL) run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Final assignment (always feasible when the start was feasible — both
    /// baselines only ever apply feasibility-preserving interchanges).
    pub assignment: Assignment,
    /// Final objective value.
    pub cost: Cost,
    /// Passes (GFM) or outer loops (GKL) executed.
    pub passes: usize,
    /// Interchanges retained after best-prefix rollbacks.
    pub moves_applied: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// How the run finished: natural convergence, or wound down early by an
    /// expired budget / fired cancel token (the assignment stays the best
    /// retained prefix, which is feasible by construction).
    pub status: ExecStatus,
}

/// Minimum `n * m` cell count before a refinement sweep switches to the
/// speculative-batch path. Below this, the per-round thread fan costs more
/// than the gain evaluations it offloads. Constant (never derived from the
/// thread count) so the batching decision is identical for every thread
/// count, which keeps batched sweeps bit-identical across machines.
pub(crate) const SWEEP_PAR_MIN_CELLS: usize = 4096;

/// Default for [`GfmConfig::sweep_min_fan_work`](crate::GfmConfig) /
/// [`GklConfig::sweep_min_fan_work`](crate::GklConfig): estimated arithmetic
/// cells one speculative round must carry before fanning it across scoped
/// workers. A round spawns and joins its workers (tens of microseconds); a
/// gain revalidation is one padded profile row plus an adjacency walk
/// (nanoseconds per cell), so a round below roughly `1 << 16` cells finishes
/// faster on the popping thread than the fan's own setup — at any core
/// count. Constant per instance (never derived from the thread count), so
/// which arm runs depends only on the problem.
pub(crate) const SWEEP_FAN_MIN_ROUND_WORK: usize = 1 << 16;

/// Estimated arithmetic cells one full speculative round costs on `problem`:
/// batch size times the per-entry revalidation work (one padded profile row
/// plus the mover's average adjacency walk). Compared against
/// `sweep_min_fan_work` to decide whether the batched sweep can amortize its
/// per-round thread spawns.
pub(crate) fn sweep_round_work(problem: &Problem) -> usize {
    let n = problem.n().max(1);
    let avg_deg = problem.circuit().directed_edge_count() / n;
    qbp_core::moves::SPECULATIVE_BATCH * (problem.m() + 1 + avg_deg)
}

/// Integer gain key for max-heaps (gains are exact `i64` in this codebase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GainKey(pub Cost);

impl PartialOrd for GainKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GainKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

/// Validates that `initial` is a feasible starting point for an interchange
/// baseline.
///
/// # Errors
///
/// Returns [`Error::InfeasibleStart`] when it violates C1 or C2, and the
/// dimension errors of [`Problem::validate_assignment`] when it does not
/// match the problem.
pub fn require_feasible_start(problem: &Problem, initial: &Assignment) -> Result<(), Error> {
    problem.validate_assignment(initial)?;
    let report = check_feasibility(problem, initial);
    if !report.is_feasible() {
        return Err(Error::InfeasibleStart {
            capacity_violations: report.capacity.len(),
            timing_violations: report.timing.len(),
        });
    }
    Ok(())
}

/// Derives a feasible starting assignment for a baseline run when the
/// caller supplied none: a short `B = 0` Burkard phase first (it handles
/// timing-constrained instances), then greedy first-fit as a fallback.
/// This mirrors what the CLI's `qbp feasible` command does.
///
/// # Errors
///
/// Returns [`Error::InfeasibleStart`] when neither phase finds a
/// violation-free assignment within its attempt budget.
pub(crate) fn derive_start(problem: &Problem, seed: u64) -> Result<Assignment, Error> {
    use qbp_solver::{greedy_first_fit, QbpConfig, QbpSolver};
    if let Some(a) = QbpSolver::new(QbpConfig {
        iterations: 60,
        seed,
        ..QbpConfig::default()
    })
    .find_feasible(problem)?
    {
        return Ok(a);
    }
    if let Some(a) = greedy_first_fit(problem, seed, 200) {
        return Ok(a);
    }
    // Neither phase produced a start the interchange heuristics could use;
    // report it in the same shape as a rejected explicit start.
    Err(Error::InfeasibleStart {
        capacity_violations: 0,
        timing_violations: 0,
    })
}

/// Components whose gains can change when `j` moves: `j`'s connection
/// neighbors (both directions) and timing-constraint partners. `j` itself is
/// excluded.
pub fn affected_components(problem: &Problem, j: ComponentId) -> Vec<ComponentId> {
    let mut out: Vec<ComponentId> = problem
        .circuit()
        .out_connections(j)
        .map(|(k, _)| k)
        .chain(problem.circuit().in_connections(j).map(|(k, _)| k))
        .chain(problem.timing().constraints_from(j).map(|(k, _)| k))
        .chain(problem.timing().constraints_into(j).map(|(k, _)| k))
        .collect();
    out.sort();
    out.dedup();
    out.retain(|&k| k != j);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn problem() -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        let e = c.add_component("d", 1);
        c.add_wires(a, b, 2).unwrap();
        c.add_connection(d, a, 1).unwrap();
        let mut tc = TimingConstraints::new(4);
        tc.add(a, e, 3).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 4).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    #[test]
    fn affected_components_covers_edges_and_constraints() {
        let p = problem();
        let affected = affected_components(&p, ComponentId::new(0));
        assert_eq!(
            affected,
            vec![ComponentId::new(1), ComponentId::new(2), ComponentId::new(3)]
        );
        // d has no incident anything except its constraint with a.
        let affected_e = affected_components(&p, ComponentId::new(3));
        assert_eq!(affected_e, vec![ComponentId::new(0)]);
    }

    #[test]
    fn require_feasible_start_accepts_and_rejects() {
        let p = problem();
        let good = Assignment::from_parts(vec![0, 1, 2, 3]).unwrap();
        assert!(require_feasible_start(&p, &good).is_ok());
        // Everything in one partition of capacity 4 is fine size-wise (4×1),
        // and distance 0 satisfies timing: still feasible.
        let crammed = Assignment::all_in_first(4);
        assert!(require_feasible_start(&p, &crammed).is_ok());
        // Wrong length.
        let short = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(require_feasible_start(&p, &short).is_err());
    }

    #[test]
    fn require_feasible_start_detects_violations() {
        let mut c = Circuit::new();
        let a = c.add_component("a", 3);
        let b = c.add_component("b", 3);
        let mut tc = TimingConstraints::new(2);
        tc.add(a, b, 0).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(1, 2, 4).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        // a and b apart: violates the distance-0 constraint.
        let apart = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(matches!(
            require_feasible_start(&p, &apart),
            Err(Error::InfeasibleStart {
                timing_violations: 1,
                ..
            })
        ));
        // a and b together: violates capacity (6 > 4).
        let together = Assignment::all_in_first(2);
        assert!(matches!(
            require_feasible_start(&p, &together),
            Err(Error::InfeasibleStart {
                capacity_violations: 1,
                ..
            })
        ));
    }

    #[test]
    fn gain_key_orders_like_cost() {
        let mut keys = vec![GainKey(3), GainKey(-1), GainKey(7)];
        keys.sort();
        assert_eq!(keys, vec![GainKey(-1), GainKey(3), GainKey(7)]);
    }
}
