//! Component-interchange baselines from §5 of Shih & Kuh (DAC 1993):
//!
//! * [`GfmSolver`] — **GFM**, a generalization of Fiduccia & Mattheyses'
//!   move-based heuristic to M-way partitioning: each component carries
//!   `M − 1` gain entries; passes apply the best feasible single move,
//!   lock, and roll back to the best prefix.
//! * [`GklSolver`] — **GKL**, a generalization of Kernighan & Lin's
//!   pair-swap heuristic: each component is ranked against `N − 1` swap
//!   partners; outer loops are cut off after 6 (the paper's CPU-motivated
//!   cutoff).
//!
//! Both start from a feasible solution and only ever apply moves/swaps that
//! keep C1 (capacity) and C2 (timing) satisfied, so their results are
//! violation-free by construction. Both support arbitrary interconnection
//! cost matrices `B` (Manhattan wire length, wire crossings, quadratic
//! length, ...), matching the paper's generalized gain computations.
//!
//! # Example
//!
//! ```
//! use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, Assignment};
//! use qbp_baselines::{GfmSolver, GfmConfig};
//!
//! # fn main() -> Result<(), qbp_core::Error> {
//! let mut circuit = Circuit::new();
//! let a = circuit.add_component("a", 1);
//! let b = circuit.add_component("b", 1);
//! circuit.add_wires(a, b, 3)?;
//! let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 2)?).build()?;
//! let start = Assignment::from_parts(vec![0, 3])?;
//! let outcome = GfmSolver::new(GfmConfig::default()).solve(&problem, &start)?;
//! assert!(outcome.cost <= 2 * 3 * 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod common;
mod gfm;
mod gkl;

pub use common::BaselineOutcome;
pub use gfm::{GfmConfig, GfmSolver};
pub use gkl::{GklConfig, GklSolver};
