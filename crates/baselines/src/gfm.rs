//! GFM — the paper's first comparison baseline (§5): a generalization of
//! Fiduccia & Mattheyses' interchange heuristic to M-way partitioning with
//! arbitrary interconnection costs, arbitrary component sizes, and
//! feasibility-preserving moves only.
//!
//! Each component carries `M − 1` gain entries (one per foreign partition).
//! A pass repeatedly applies the highest-gain *feasible* move among unlocked
//! components (hill-climbing through negative gains, classic FM style), locks
//! the moved component, and finally rolls back to the best prefix of the
//! pass. Passes repeat until no positive-gain prefix exists.

use crate::common::{
    affected_components, derive_start, require_feasible_start, BaselineOutcome, GainKey,
};
use qbp_core::exec::{ExecCtx, ExecStatus};
use qbp_core::{
    move_is_timing_feasible, Assignment, ComponentId, Error, Evaluator, PartitionId,
    PartitionProfile, Problem, UsageTracker,
};
use qbp_observe::{BatchPhase, MoveKind, NoopObserver, SolveEvent, SolveObserver, SolverId};
use qbp_solver::{moved_from, CommonOpts, Configure, SolveReport, Solver};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configuration for [`GfmSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GfmConfig {
    /// Upper bound on passes; the paper runs "till no more improvement is
    /// possible", which `usize::MAX` approximates (each pass must strictly
    /// improve to continue).
    pub max_passes: usize,
    /// Allow negative-gain moves inside a pass (best-prefix rollback
    /// recovers); disabling turns each pass into a plain greedy descent.
    pub hill_climbing: bool,
    /// Seed for deriving a feasible start when [`Solver::solve`] is called
    /// with `init = None`. The FM passes themselves are deterministic and
    /// never draw from it.
    pub seed: u64,
    /// Thread budget (`0` = per-core) for the per-pass initial gain-table
    /// build and, on large instances, the speculative-batch sweep (see
    /// [`qbp_core::moves`]): candidate gains are revalidated concurrently
    /// against a frozen snapshot while commits stay serial, so results are
    /// bit-identical for every thread count.
    pub threads: usize,
    /// Minimum estimated work (arithmetic cells) per speculative round
    /// before the sweep batches and fans: below it, spawning workers costs
    /// more than the round's gain revalidations and the serial sweep wins at
    /// any core count. The default covers a scoped-thread spawn/join of tens
    /// of microseconds against nanosecond-per-cell gain arithmetic; `0`
    /// forces batching wherever the instance grain allows (useful in tests),
    /// `usize::MAX` pins the serial sweep. Never affects results — both arms
    /// are bit-identical.
    pub sweep_min_fan_work: usize,
}

impl Default for GfmConfig {
    fn default() -> Self {
        GfmConfig {
            max_passes: usize::MAX,
            hill_climbing: true,
            seed: 0x5EED_CAFE,
            threads: 1,
            sweep_min_fan_work: crate::common::SWEEP_FAN_MIN_ROUND_WORK,
        }
    }
}

impl Configure for GfmConfig {
    fn apply_common(&mut self, opts: &CommonOpts) {
        self.seed = opts.seed;
        if let Some(iterations) = opts.iterations {
            // The shared iteration budget maps to FM passes.
            self.max_passes = iterations;
        }
        self.threads = opts.threads;
        // No stall window: each pass must strictly improve, so the loop
        // cannot cycle.
    }

    fn common(&self) -> CommonOpts {
        CommonOpts {
            seed: self.seed,
            iterations: Some(self.max_passes),
            stall_window: None,
            threads: self.threads,
        }
    }
}

/// The generalized Fiduccia–Mattheyses solver.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, Assignment, Evaluator};
/// use qbp_baselines::{GfmConfig, GfmSolver};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 1);
/// let b = circuit.add_component("b", 1);
/// circuit.add_wires(a, b, 5)?;
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 2)?).build()?;
///
/// // Start with a and b far apart; GFM pulls them together.
/// let start = Assignment::from_parts(vec![0, 3])?;
/// let outcome = GfmSolver::new(GfmConfig::default()).solve(&problem, &start)?;
/// assert!(outcome.cost < Evaluator::new(&problem).cost(&start));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GfmSolver {
    config: GfmConfig,
}

/// One tentative move inside a pass, for rollback and event emission.
#[derive(Debug, Clone, Copy)]
struct AppliedMove {
    j: ComponentId,
    from: PartitionId,
    gain: i64,
}

/// Per-pass buffers reused across all passes of one `solve` call, so the
/// pass loop stops re-allocating the gain heap and its side tables after
/// the first pass.
#[derive(Debug, Default)]
struct PassScratch {
    heap: BinaryHeap<(GainKey, u32, u32)>,
    locked: Vec<bool>,
    waiting: Vec<Vec<(u32, u32)>>,
    applied: Vec<AppliedMove>,
    batch: qbp_core::moves::BatchQueue<(GainKey, u32, u32)>,
    touch: qbp_core::moves::TouchLog,
}

impl GfmSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: GfmConfig) -> Self {
        GfmSolver { config }
    }

    /// Runs GFM from a feasible initial assignment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InfeasibleStart`] when `initial` violates C1 or C2
    /// (both baselines need a violation-free start to guarantee a
    /// violation-free result), or a dimension error when it does not match
    /// the problem.
    pub fn solve(&self, problem: &Problem, initial: &Assignment) -> Result<BaselineOutcome, Error> {
        self.solve_observed(problem, initial, &mut NoopObserver)
    }

    /// [`GfmSolver::solve`] plus observability: streams
    /// [`SolveEvent`]s to `obs` — one `IterationStarted`/`IterationFinished`
    /// pair per pass, and one `MoveEvaluated` per tentatively applied move
    /// (emitted after the pass's best-prefix rollback, so `accepted` tells
    /// whether the move was *retained*, not merely tried).
    ///
    /// # Errors
    ///
    /// Same as [`GfmSolver::solve`].
    pub fn solve_observed(
        &self,
        problem: &Problem,
        initial: &Assignment,
        obs: &mut dyn SolveObserver,
    ) -> Result<BaselineOutcome, Error> {
        self.solve_observed_exec(problem, initial, &ExecCtx::unbounded(), obs)
    }

    /// [`GfmSolver::solve_observed`] under an execution budget: the pass loop
    /// checks `exec` at each pass boundary, and an expired deadline or fired
    /// cancel token stops before the next pass starts. The returned
    /// assignment is the best prefix retained so far — feasible by
    /// construction — with [`BaselineOutcome::status`] recording how the run
    /// ended.
    ///
    /// # Errors
    ///
    /// Same as [`GfmSolver::solve`].
    pub fn solve_observed_exec(
        &self,
        problem: &Problem,
        initial: &Assignment,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<BaselineOutcome, Error> {
        require_feasible_start(problem, initial)?;
        let start = Instant::now();
        let eval = Evaluator::new(problem);
        let mut assignment = initial.clone();
        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Gfm,
            components: problem.n(),
            partitions: problem.m(),
        });
        let mut scratch = PassScratch::default();
        // Per-partition neighbor-weight aggregates; every gain below is an
        // O(M) profile lookup, and each tentative (or rolled-back) move
        // patches only the mover's neighbors.
        let mut profile = PartitionProfile::plain(problem, &assignment);
        obs.on_event(&SolveEvent::ProfileUpdated {
            iteration: 0,
            rebuilt: true,
            moved: problem.n(),
        });
        let mut passes = 0;
        let mut total_moves = 0;
        let mut status = ExecStatus::Completed;
        // Maintained incrementally from the retained gains so the per-pass
        // IterationFinished value costs nothing extra.
        let mut value = eval.cost(&assignment);
        while passes < self.config.max_passes {
            if let Some(stop) = exec.check(passes + 1) {
                match stop {
                    ExecStatus::Cancelled => {
                        obs.on_event(&SolveEvent::Cancelled { iteration: passes + 1 });
                    }
                    _ => obs.on_event(&SolveEvent::BudgetExhausted { iteration: passes + 1 }),
                }
                status = stop;
                break;
            }
            passes += 1;
            obs.on_event(&SolveEvent::IterationStarted { iteration: passes });
            let (gain, moves) = self.run_pass(
                problem,
                &eval,
                &mut assignment,
                &mut profile,
                &mut scratch,
                passes,
                obs,
            );
            total_moves += moves;
            value -= gain;
            obs.on_event(&SolveEvent::IterationFinished {
                iteration: passes,
                value,
                feasible: true,
                improved: gain > 0,
            });
            if gain <= 0 {
                break;
            }
        }
        obs.on_event(&SolveEvent::SolveFinished {
            iterations: passes,
            value,
            feasible: true,
        });
        Ok(BaselineOutcome {
            cost: value,
            assignment,
            passes,
            moves_applied: total_moves,
            elapsed: start.elapsed(),
            status,
        })
    }

    /// Runs one FM pass; returns `(retained gain, retained move count)`.
    /// `assignment` ends at the best prefix of the pass.
    #[allow(clippy::too_many_arguments)]
    fn run_pass(
        &self,
        problem: &Problem,
        eval: &Evaluator<'_>,
        assignment: &mut Assignment,
        profile: &mut PartitionProfile,
        scratch: &mut PassScratch,
        pass: usize,
        obs: &mut dyn SolveObserver,
    ) -> (i64, usize) {
        let m = problem.m();
        let n = problem.n();
        let mut usage = UsageTracker::new(problem, assignment);
        let PassScratch {
            heap,
            locked,
            waiting,
            applied,
            batch,
            touch,
        } = scratch;
        locked.clear();
        locked.resize(n, false);
        // Max-heap of candidate moves; keys refreshed lazily on pop and
        // eagerly for components affected by each applied move.
        heap.clear();
        let push_moves = |heap: &mut BinaryHeap<(GainKey, u32, u32)>,
                          assignment: &Assignment,
                          profile: &PartitionProfile,
                          j: usize| {
            let cur = assignment.part_index(j);
            for i in 0..m {
                if i != cur {
                    let gain = -eval.move_delta_profiled(
                        profile,
                        assignment,
                        ComponentId::new(j),
                        PartitionId::new(i),
                    );
                    heap.push((GainKey(gain), j as u32, i as u32));
                }
            }
        };
        // The initial build is embarrassingly parallel over components; rows
        // are concatenated in component order, so the heap receives the exact
        // serial insertion sequence regardless of thread count.
        let intra_threads = qbp_core::par::effective_threads(self.config.threads);
        let tasks = qbp_core::par::workers_for(intra_threads, n);
        let frozen: &PartitionProfile = profile;
        let frozen_assignment: &Assignment = assignment;
        let rows = qbp_core::par::map_collect(intra_threads, n, |j| {
            let cur = frozen_assignment.part_index(j);
            let mut row: Vec<(GainKey, u32, u32)> = Vec::with_capacity(m - 1);
            for i in 0..m {
                if i != cur {
                    let gain = -eval.move_delta_profiled(
                        frozen,
                        frozen_assignment,
                        ComponentId::new(j),
                        PartitionId::new(i),
                    );
                    row.push((GainKey(gain), j as u32, i as u32));
                }
            }
            row
        });
        if tasks > 1 {
            obs.on_event(&SolveEvent::ParallelBatch {
                iteration: pass,
                phase: BatchPhase::GainTable,
                tasks,
                threads: intra_threads,
            });
        }
        for row in rows {
            heap.extend(row);
        }
        // Capacity-blocked candidates parked per target partition; revived
        // when that partition frees space.
        for w in waiting.iter_mut() {
            w.clear();
        }
        waiting.resize_with(m, Vec::new);

        applied.clear();
        let mut cum_gain: i64 = 0;
        let mut best_gain: i64 = 0;
        let mut best_len: usize = 0;
        let mut profile_patches: usize = 0;

        // Below a constant cell-count grain (or with a single thread) the
        // classic serial sweep runs untouched; above it, the speculative
        // batched sweep consumes the heap in exactly the serial pop order
        // and replays exactly the serial decisions (see `qbp_core::moves`),
        // so both arms are bit-identical. Keep their commit bodies in
        // lockstep when editing either one — the cross-thread proptests
        // enforce it.
        let use_batches = intra_threads > 1
            && n * m >= crate::common::SWEEP_PAR_MIN_CELLS
            && crate::common::sweep_round_work(problem) >= self.config.sweep_min_fan_work;
        let mut sweep_tasks = 1usize;
        if !use_batches {
            while let Some((GainKey(key), ju, iu)) = heap.pop() {
                let j = ju as usize;
                let i = iu as usize;
                if locked[j] {
                    continue;
                }
                let cur = assignment.part_index(j);
                if i == cur {
                    continue;
                }
                let cj = ComponentId::new(j);
                let pi = PartitionId::new(i);
                let gain = -eval.move_delta_profiled(profile, assignment, cj, pi);
                // Stale key: re-queue with the fresh gain unless it still
                // dominates the heap.
                if gain < key {
                    let still_max = heap.peek().is_none_or(|&(GainKey(next), _, _)| gain >= next);
                    if !still_max {
                        heap.push((GainKey(gain), ju, iu));
                        continue;
                    }
                }
                if !self.config.hill_climbing && gain <= 0 {
                    break;
                }
                // Feasibility gates.
                if !usage.move_fits(problem, cj, pi) {
                    waiting[i].push((ju, iu));
                    continue;
                }
                if !move_is_timing_feasible(problem, assignment, cj, pi) {
                    continue;
                }
                // Apply tentatively.
                let from = PartitionId::new(cur);
                usage.apply_move(problem, cj, from, pi);
                assignment.move_to(cj, pi);
                profile.apply_move(j, cur, i);
                profile_patches += 1;
                locked[j] = true;
                cum_gain += gain;
                applied.push(AppliedMove { j: cj, from, gain });
                if cum_gain > best_gain {
                    best_gain = cum_gain;
                    best_len = applied.len();
                }
                // Refresh gains of affected unlocked components and revive
                // capacity-waiters of the freed partition.
                for k in affected_components(problem, cj) {
                    if !locked[k.index()] {
                        push_moves(heap, assignment, profile, k.index());
                    }
                }
                for (wj, wi) in std::mem::take(&mut waiting[from.index()]) {
                    if !locked[wj as usize] {
                        let g = -eval.move_delta_profiled(
                            profile,
                            assignment,
                            ComponentId::new(wj as usize),
                            PartitionId::new(wi as usize),
                        );
                        heap.push((GainKey(g), wj, wi));
                    }
                }
            }
        } else {
            touch.reset(n);
            'rounds: loop {
                let prefetched = batch.prefetch(heap, qbp_core::moves::SPECULATIVE_BATCH);
                if prefetched == 0 {
                    break;
                }
                touch.begin_round();
                // Speculate: revalidate the whole batch against the frozen
                // pre-round state. Entries that turn out locked or touched
                // are re-handled serially at commit; their slots here are
                // dead values.
                let (spec, tasks) = {
                    let frozen_profile: &PartitionProfile = profile;
                    let frozen_asg: &Assignment = assignment;
                    let frozen_locked: &[bool] = locked;
                    batch.evaluate(intra_threads, |&(_, ju, iu)| {
                        let j = ju as usize;
                        let i = iu as usize;
                        if frozen_locked[j] || frozen_asg.part_index(j) == i {
                            return 0;
                        }
                        -eval.move_delta_profiled(
                            frozen_profile,
                            frozen_asg,
                            ComponentId::new(j),
                            PartitionId::new(i),
                        )
                    })
                };
                sweep_tasks = sweep_tasks.max(tasks);
                // Indexed on purpose: the commit walks `spec`, the batch
                // buffer, and the `idx + 1` runner-up in lockstep and
                // requeues the tail from `idx` on abort.
                #[allow(clippy::needless_range_loop)]
                for idx in 0..prefetched {
                    let entry = batch.entries()[idx];
                    // A commit this round pushed a candidate that beats the
                    // rest of the batch: the serial loop would pop it next,
                    // so abort and let the next round fetch it. (Impossible
                    // at idx == 0 — nothing was pushed since the prefetch
                    // drained these — so every round consumes an entry.)
                    if heap.peek().is_some_and(|top| *top > entry) {
                        batch.requeue_from(heap, idx);
                        continue 'rounds;
                    }
                    let (GainKey(key), ju, iu) = entry;
                    let j = ju as usize;
                    let i = iu as usize;
                    if locked[j] {
                        continue;
                    }
                    let cur = assignment.part_index(j);
                    if i == cur {
                        continue;
                    }
                    let cj = ComponentId::new(j);
                    let pi = PartitionId::new(i);
                    // The speculative gain is exact while the mover and all
                    // of its gain dependencies are untouched this round;
                    // otherwise recompute — exactly the serial revalidation.
                    let gain = if touch.touched(j) {
                        -eval.move_delta_profiled(profile, assignment, cj, pi)
                    } else {
                        spec[idx]
                    };
                    if gain < key {
                        // The conceptual heap still holds the rest of the
                        // batch: the runner-up is the better of the true heap
                        // top and the next buffered entry (buffer order is
                        // descending, so `idx + 1` bounds the tail).
                        let heap_next = heap.peek().map(|&(GainKey(g), _, _)| g);
                        let batch_next =
                            batch.entries().get(idx + 1).map(|&(GainKey(g), _, _)| g);
                        let still_max =
                            heap_next.max(batch_next).is_none_or(|next| gain >= next);
                        if !still_max {
                            heap.push((GainKey(gain), ju, iu));
                            continue;
                        }
                    }
                    if !self.config.hill_climbing && gain <= 0 {
                        break 'rounds;
                    }
                    // Feasibility gates.
                    if !usage.move_fits(problem, cj, pi) {
                        waiting[i].push((ju, iu));
                        continue;
                    }
                    if !move_is_timing_feasible(problem, assignment, cj, pi) {
                        continue;
                    }
                    // Apply tentatively.
                    let from = PartitionId::new(cur);
                    usage.apply_move(problem, cj, from, pi);
                    assignment.move_to(cj, pi);
                    profile.apply_move(j, cur, i);
                    profile_patches += 1;
                    locked[j] = true;
                    cum_gain += gain;
                    applied.push(AppliedMove { j: cj, from, gain });
                    if cum_gain > best_gain {
                        best_gain = cum_gain;
                        best_len = applied.len();
                    }
                    // Refresh gains of affected unlocked components and
                    // revive capacity-waiters of the freed partition. The
                    // touch set is the mover plus everything whose gain its
                    // move can change (wire neighbors and timing partners —
                    // the same set the eager refresh walks).
                    touch.touch(j);
                    for k in affected_components(problem, cj) {
                        touch.touch(k.index());
                        if !locked[k.index()] {
                            push_moves(heap, assignment, profile, k.index());
                        }
                    }
                    for (wj, wi) in std::mem::take(&mut waiting[from.index()]) {
                        if !locked[wj as usize] {
                            let g = -eval.move_delta_profiled(
                                profile,
                                assignment,
                                ComponentId::new(wj as usize),
                                PartitionId::new(wi as usize),
                            );
                            heap.push((GainKey(g), wj, wi));
                        }
                    }
                }
            }
            if sweep_tasks > 1 {
                obs.on_event(&SolveEvent::ParallelBatch {
                    iteration: pass,
                    phase: BatchPhase::Sweep,
                    tasks: sweep_tasks,
                    threads: intra_threads,
                });
            }
        }

        // Roll back to the best prefix, then report every tentative move:
        // `accepted` means "survived the rollback", the only acceptance
        // notion FM has (moves are always applied first, judged later).
        for mv in applied[best_len..].iter().rev() {
            // Each component moves at most once per pass (it locks), so its
            // current partition is the tentative move's target.
            let at = assignment.part_index(mv.j.index());
            assignment.move_to(mv.j, mv.from);
            profile.apply_move(mv.j.index(), at, mv.from.index());
            profile_patches += 1;
        }
        obs.on_event(&SolveEvent::ProfileUpdated {
            iteration: pass,
            rebuilt: false,
            moved: profile_patches,
        });
        for (idx, mv) in applied.iter().enumerate() {
            obs.on_event(&SolveEvent::MoveEvaluated {
                iteration: pass,
                kind: MoveKind::Shift,
                delta: -mv.gain,
                accepted: idx < best_len,
            });
        }
        (best_gain, best_len)
    }
}

impl Solver for GfmSolver {
    fn name(&self) -> &'static str {
        "gfm"
    }

    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let derived;
        // Deriving a feasible start is the run's uninterruptible minimum
        // work: even an already-expired budget yields a feasible answer.
        let start = match init {
            Some(a) => a,
            None => {
                derived = derive_start(problem, self.config.seed)?;
                &derived
            }
        };
        let out = self.solve_observed_exec(problem, start, exec, obs)?;
        Ok(SolveReport {
            solver: "gfm",
            moves_applied: moved_from(Some(start), &out.assignment),
            objective: out.cost,
            embedded_value: None,
            feasible: true,
            iterations: out.passes,
            elapsed: out.elapsed,
            auto_profile: None,
            assignment: out.assignment,
            status: out.status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{check_feasibility, Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn chain_problem(cap: u64) -> Problem {
        let mut c = Circuit::new();
        let ids: Vec<_> = (0..6)
            .map(|j| c.add_component(format!("c{j}"), 1 + (j % 3) as u64))
            .collect();
        for w in ids.windows(2) {
            c.add_wires(w[0], w[1], 3).unwrap();
        }
        c.add_wires(ids[0], ids[5], 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn improves_a_scattered_start() {
        let p = chain_problem(12);
        let start = Assignment::from_parts(vec![0, 3, 0, 3, 0, 3]).unwrap();
        let eval = Evaluator::new(&p);
        let out = GfmSolver::default().solve(&p, &start).unwrap();
        assert!(out.cost < eval.cost(&start));
        assert_eq!(out.cost, eval.cost(&out.assignment));
        assert!(check_feasibility(&p, &out.assignment).is_feasible());
    }

    #[test]
    fn respects_capacity_during_descent() {
        // Capacity 4: the chain (total size 12) cannot collapse into one
        // partition; the start packs every partition exactly full.
        let p = chain_problem(4);
        let start = Assignment::from_parts(vec![0, 2, 0, 1, 2, 1]).unwrap();
        let out = GfmSolver::default().solve(&p, &start).unwrap();
        assert!(check_feasibility(&p, &out.assignment).is_feasible());
    }

    #[test]
    fn respects_timing_during_descent() {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        c.add_wires(a, b, 10).unwrap();
        // Timing pins c within distance 1 of a; moving c next to b would
        // break it.
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, d, 1).unwrap();
        c.add_wires(b, d, 10).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(1, 4, 3).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let start = Assignment::from_parts(vec![0, 2, 1]).unwrap();
        let out = GfmSolver::default().solve(&p, &start).unwrap();
        assert!(check_feasibility(&p, &out.assignment).is_feasible());
    }

    #[test]
    fn rejects_infeasible_start() {
        let p = chain_problem(3);
        let start = Assignment::all_in_first(6); // 12 > 3
        assert!(matches!(
            GfmSolver::default().solve(&p, &start),
            Err(Error::InfeasibleStart { .. })
        ));
    }

    #[test]
    fn final_cost_never_worse_than_start() {
        let p = chain_problem(6);
        let eval = Evaluator::new(&p);
        for parts in [[0u32, 1, 2, 3, 2, 1], [3, 3, 0, 0, 1, 1], [0, 1, 0, 1, 0, 1]] {
            let start = Assignment::from_parts(parts.to_vec()).unwrap();
            if check_feasibility(&p, &start).is_feasible() {
                let out = GfmSolver::default().solve(&p, &start).unwrap();
                assert!(out.cost <= eval.cost(&start), "start {parts:?}");
            }
        }
    }

    #[test]
    fn greedy_mode_also_improves() {
        let p = chain_problem(12);
        let start = Assignment::from_parts(vec![0, 3, 0, 3, 0, 3]).unwrap();
        let out = GfmSolver::new(GfmConfig {
            hill_climbing: false,
            ..GfmConfig::default()
        })
        .solve(&p, &start)
        .unwrap();
        let eval = Evaluator::new(&p);
        assert!(out.cost <= eval.cost(&start));
    }

    /// Deterministic pseudo-random instance large enough to cross the
    /// speculative-batch grain (`n * m >= SWEEP_PAR_MIN_CELLS`); callers
    /// zero `sweep_min_fan_work` to clear the spawn-amortization gate too.
    fn lcg_problem(n: usize, rows: usize, cols: usize) -> (Problem, Assignment) {
        let mut c = Circuit::new();
        for j in 0..n {
            c.add_component(format!("c{j}"), 1 + (j as u64 % 4));
        }
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..n * 3 {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                let w = 1 + (next() % 9) as i64;
                c.add_connection(ComponentId::new(a), ComponentId::new(b), w)
                    .unwrap();
            }
        }
        let m = rows * cols;
        let p = ProblemBuilder::new(c, PartitionTopology::grid(rows, cols, n as u64).unwrap())
            .build()
            .unwrap();
        let parts: Vec<u32> = (0..n).map(|j| (j % m) as u32).collect();
        let start = Assignment::from_parts(parts).unwrap();
        (p, start)
    }

    #[test]
    fn batched_sweep_is_bit_identical_on_large_instances() {
        // Covers M = 8 (exact SIMD width), M = 16, and M = 5 (padded rows).
        for (n, rows, cols) in [(600usize, 2usize, 4usize), (300, 2, 8), (820, 1, 5)] {
            let (p, start) = lcg_problem(n, rows, cols);
            assert!(n * p.m() >= 4096, "instance must cross the batch grain");
            let serial = GfmSolver::default().solve(&p, &start).unwrap();
            assert!(serial.moves_applied > 0);
            for threads in [2usize, 4, 8] {
                let out = GfmSolver::new(GfmConfig {
                    threads,
                    sweep_min_fan_work: 0,
                    ..GfmConfig::default()
                })
                .solve(&p, &start)
                .unwrap();
                assert_eq!(out.cost, serial.cost, "n={n} m={} threads={threads}", p.m());
                assert_eq!(out.assignment.as_slice(), serial.assignment.as_slice());
                assert_eq!(out.moves_applied, serial.moves_applied);
                assert_eq!(out.passes, serial.passes);
            }
        }
    }

    struct SweepCounter {
        sweeps: usize,
    }

    impl SolveObserver for SweepCounter {
        fn on_event(&mut self, e: &SolveEvent) {
            if let SolveEvent::ParallelBatch {
                phase: BatchPhase::Sweep,
                tasks,
                ..
            } = e
            {
                assert!(*tasks > 1, "Sweep batches are only emitted when fanned");
                self.sweeps += 1;
            }
        }
    }

    #[test]
    fn sweep_batches_are_reported_only_when_fanned() {
        let (p, start) = lcg_problem(600, 2, 4);
        let mut serial = SweepCounter { sweeps: 0 };
        GfmSolver::default()
            .solve_observed(&p, &start, &mut serial)
            .unwrap();
        assert_eq!(serial.sweeps, 0, "serial traces must stay batch-free");
        let mut fanned = SweepCounter { sweeps: 0 };
        GfmSolver::new(GfmConfig {
            threads: 4,
            sweep_min_fan_work: 0,
            ..GfmConfig::default()
        })
        .solve_observed(&p, &start, &mut fanned)
        .unwrap();
        assert!(fanned.sweeps >= 1, "4-thread sweep should report batches");
    }

    #[test]
    fn max_passes_caps_work() {
        let p = chain_problem(12);
        let start = Assignment::from_parts(vec![0, 3, 0, 3, 0, 3]).unwrap();
        let out = GfmSolver::new(GfmConfig {
            max_passes: 1,
            ..GfmConfig::default()
        })
        .solve(&p, &start)
        .unwrap();
        assert_eq!(out.passes, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use qbp_core::{check_feasibility, Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn arb_feasible_instance() -> impl Strategy<Value = (Problem, Assignment)> {
        (3usize..9, 2usize..5).prop_flat_map(|(n, m)| {
            let edges = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..5),
                0..14,
            );
            let cons = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..4),
                0..6,
            );
            (Just((n, m)), edges, cons).prop_map(|((n, m), edges, cons)| {
                let mut circuit = Circuit::new();
                for j in 0..n {
                    circuit.add_component(format!("c{j}"), 1 + (j as u64 % 3));
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .unwrap();
                }
                let mut tc = TimingConstraints::new(n);
                for ((a, b), dc) in cons {
                    tc.add(ComponentId::new(a), ComponentId::new(b), dc).unwrap();
                }
                // Everything in partition 0 with ample capacity: trivially
                // feasible start (distance 0 satisfies all limits >= 1).
                let problem = ProblemBuilder::new(
                    circuit,
                    PartitionTopology::grid(1, m, 10_000).unwrap(),
                )
                .timing(tc)
                .build()
                .unwrap();
                let start = Assignment::all_in_first(n);
                (problem, start)
            })
        })
    }

    proptest! {
        #[test]
        fn gfm_preserves_feasibility_and_never_regresses(
            (problem, start) in arb_feasible_instance()
        ) {
            prop_assume!(check_feasibility(&problem, &start).is_feasible());
            let eval = Evaluator::new(&problem);
            let out = GfmSolver::default().solve(&problem, &start).unwrap();
            prop_assert!(check_feasibility(&problem, &out.assignment).is_feasible());
            prop_assert!(out.cost <= eval.cost(&start));
            prop_assert_eq!(out.cost, eval.cost(&out.assignment));
        }

        #[test]
        fn gfm_is_bit_identical_across_thread_counts(
            (problem, start) in arb_feasible_instance()
        ) {
            prop_assume!(check_feasibility(&problem, &start).is_feasible());
            let serial = GfmSolver::default().solve(&problem, &start).unwrap();
            for threads in [2usize, 4, 8] {
                let config =
                    GfmConfig { threads, sweep_min_fan_work: 0, ..GfmConfig::default() };
                let par = GfmSolver::new(config).solve(&problem, &start).unwrap();
                prop_assert_eq!(par.cost, serial.cost);
                prop_assert_eq!(par.assignment.as_slice(), serial.assignment.as_slice());
                prop_assert_eq!(par.moves_applied, serial.moves_applied);
            }
        }
    }
}
