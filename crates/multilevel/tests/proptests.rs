//! Property tests for the coarsening stack: prolongation is *exact* — it
//! preserves the objective bit-for-bit and never destroys feasibility — and
//! `project` inverts `prolong`. Instances come from the paper-suite
//! generator at small scales so the properties are exercised on realistic
//! clustered, timing-constrained topologies.

use proptest::prelude::*;
use qbp_core::{check_feasibility, Assignment, Evaluator, PartitionId, Problem};
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_multilevel::{coarsen, CoarsenOptions};

/// Splitmix64 — a tiny deterministic stream for random-but-reproducible
/// coarse assignments whose length is only known after coarsening.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_assignment(n: usize, m: usize, seed: u64) -> Assignment {
    let mut state = seed;
    Assignment::from_fn(n, |_| PartitionId::new((splitmix(&mut state) % m as u64) as usize))
}

fn suite_instance(spec_idx: usize, scale: f64, seed: u64) -> Problem {
    let spec = scaled_spec(&PAPER_SUITE[spec_idx % PAPER_SUITE.len()], scale);
    let options = SuiteOptions {
        seed,
        ..SuiteOptions::default()
    };
    let (problem, _witness) = build_instance_with_witness(&spec, &options).expect("suite instance");
    problem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Uncoarsening a coarse assignment reproduces its objective exactly —
    // no lossy folding — and a feasible coarse assignment prolongs to a
    // feasible fine assignment, at every level of the stack.
    #[test]
    fn prolong_is_exact_on_cost_and_feasibility(
        spec_idx in 0usize..7,
        seed in 0u64..1u64 << 48,
        asg_seed in 0u64..1u64 << 48,
    ) {
        let problem = suite_instance(spec_idx, 0.1, seed);
        let stack = coarsen(&problem, &CoarsenOptions { max_levels: 4, min_size: 8, threads: 1 });
        prop_assert!(!stack.is_empty(), "suite instances at scale 0.1 must coarsen");
        for idx in 0..stack.len() {
            let fine_problem = if idx == 0 { &problem } else { stack.problem(idx - 1) };
            let level = stack.problem(idx);
            let coarse = random_assignment(level.n(), level.m(), asg_seed ^ idx as u64);
            let fine = stack.prolong(idx, &coarse);
            // Exact objective: intra-cluster wires and constraints vanished
            // against the zero diagonals, everything else folded by addition.
            prop_assert_eq!(
                Evaluator::new(level).cost(&coarse),
                Evaluator::new(fine_problem).cost(&fine),
                "prolonged cost must match at level {}", idx + 1
            );
            // Sizes sum over clusters, so the per-partition loads agree and
            // timing limits folded to the tightest member: coarse-feasible
            // implies fine-feasible.
            if check_feasibility(level, &coarse).is_feasible() {
                prop_assert!(
                    check_feasibility(fine_problem, &fine).is_feasible(),
                    "feasible coarse assignment prolonged infeasible at level {}", idx + 1
                );
            }
        }
    }

    // `project` inverts `prolong`: pushing a prolonged assignment back down
    // recovers the coarse assignment it came from, at every level.
    #[test]
    fn project_inverts_prolong(
        spec_idx in 0usize..7,
        seed in 0u64..1u64 << 48,
        asg_seed in 0u64..1u64 << 48,
    ) {
        let problem = suite_instance(spec_idx, 0.1, seed);
        let stack = coarsen(&problem, &CoarsenOptions { max_levels: 4, min_size: 8, threads: 1 });
        prop_assert!(!stack.is_empty());
        for idx in 0..stack.len() {
            let level = stack.problem(idx);
            let coarse = random_assignment(level.n(), level.m(), asg_seed ^ idx as u64);
            prop_assert_eq!(
                stack.project(idx, &stack.prolong(idx, &coarse)),
                coarse,
                "project(prolong(x)) != x at level {}", idx + 1
            );
        }
    }

    // The planted witness stays feasible under project-then-prolong through
    // the *whole* stack whenever its projection is feasible level by level
    // (the projection itself may legitimately break feasibility when a
    // cluster's members straddle partitions — that case is allowed, but the
    // round trip must never turn a feasible projection infeasible).
    #[test]
    fn witness_projection_roundtrip(
        spec_idx in 0usize..7,
        seed in 0u64..1u64 << 48,
    ) {
        let spec = scaled_spec(&PAPER_SUITE[spec_idx % PAPER_SUITE.len()], 0.1);
        let options = SuiteOptions { seed, ..SuiteOptions::default() };
        let (problem, witness) =
            build_instance_with_witness(&spec, &options).expect("suite instance");
        prop_assert!(check_feasibility(&problem, &witness).is_feasible());
        let stack = coarsen(&problem, &CoarsenOptions { max_levels: 4, min_size: 8, threads: 1 });
        prop_assert!(!stack.is_empty());
        let mut projected = witness;
        for idx in 0..stack.len() {
            projected = stack.project(idx, &projected);
            if check_feasibility(stack.problem(idx), &projected).is_feasible() {
                let fine_problem = if idx == 0 { &problem } else { stack.problem(idx - 1) };
                prop_assert!(
                    check_feasibility(fine_problem, &stack.prolong(idx, &projected)).is_feasible(),
                    "feasible projection prolonged infeasible at level {}", idx + 1
                );
            }
        }
    }
}
