//! End-to-end acceptance: on every paper circuit (scaled down so the test
//! stays CI-friendly), the multilevel V-cycle must return a feasible
//! assignment within 5% of flat QBP's cost, start-for-start — both solvers
//! single-threaded and seeded with the instance's planted witness, exactly
//! like the `multilevel` block of `perf_snapshot`.

use qbp_core::check_feasibility;
use qbp_gen::{build_instance_with_witness, scaled_spec, SuiteOptions, PAPER_SUITE};
use qbp_multilevel::{MlqbpConfig, MlqbpSolver};
use qbp_observe::NoopObserver;
use qbp_solver::{QbpConfig, QbpSolver, Solver};

#[test]
fn mlqbp_within_five_percent_of_flat_qbp_on_each_paper_circuit() {
    let scale = 0.35;
    let qbp_config = QbpConfig {
        threads: 1,
        ..QbpConfig::default()
    };
    for spec in &PAPER_SUITE {
        let spec = scaled_spec(spec, scale);
        let (problem, witness) =
            build_instance_with_witness(&spec, &SuiteOptions::default()).expect("suite instance");
        let flat_solver = QbpSolver::new(qbp_config);
        let flat = Solver::solve(&flat_solver, &problem, Some(&witness), &mut NoopObserver)
            .expect("flat qbp solve");
        let ml_solver = MlqbpSolver::new(MlqbpConfig {
            qbp: qbp_config,
            // Scaled-down circuits need a smaller floor for the stack to
            // reach the depth the full-size suite gets with the default 64.
            min_size: 24,
            ..MlqbpConfig::default()
        });
        let ml = Solver::solve(&ml_solver, &problem, Some(&witness), &mut NoopObserver)
            .expect("mlqbp solve");
        assert!(flat.feasible, "{}: flat QBP ended infeasible", spec.name);
        assert!(ml.feasible, "{}: mlqbp ended infeasible", spec.name);
        assert!(
            check_feasibility(&problem, &ml.assignment).is_feasible(),
            "{}: mlqbp report disagrees with the checker",
            spec.name
        );
        // Within 5% of flat QBP (ml may also be better).
        eprintln!(
            "{}: flat {} vs mlqbp {} ({:+.2}%)",
            spec.name,
            flat.objective,
            ml.objective,
            (ml.objective - flat.objective) as f64 / flat.objective as f64 * 100.0
        );
        assert!(
            ml.objective as f64 <= flat.objective as f64 * 1.05,
            "{}: mlqbp cost {} more than 5% above flat QBP's {}",
            spec.name,
            ml.objective,
            flat.objective
        );
    }
}
