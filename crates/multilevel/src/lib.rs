//! Multilevel coarsen–solve–refine for the QBP partitioner, following the
//! classic multilevel recipe modern partitioners use to scale: shrink `N`
//! itself before paying the Burkard loop's two full GAP subproblems per
//! iteration, then repair the small prolongation errors with cheap local
//! search at every level on the way back up.
//!
//! * [`coarsen`] / [`LevelStack`] — heavy-edge matching over the circuit
//!   with summed sizes, folded pair weights, and conservatively propagated
//!   timing classes, producing exact project/prolong maps.
//! * [`MlqbpSolver`] — the V-cycle driver behind the unified
//!   [`Solver`](qbp_solver::Solver) trait as method `mlqbp`.
//! * [`registry`] — the workspace method registry ([`build_solver`],
//!   [`SOLVER_NAMES`]), relocated here because it must know every solver,
//!   and this crate sits above `qbp-solver` and `qbp-baselines`.
//!
//! # Example
//!
//! ```
//! use qbp_multilevel::{build_solver, SOLVER_NAMES};
//! use qbp_solver::CommonOpts;
//!
//! assert!(SOLVER_NAMES.contains(&"mlqbp"));
//! let solver = build_solver("mlqbp", &CommonOpts::default()).expect("registered");
//! assert_eq!(solver.name(), "mlqbp");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod coarsen;
pub mod registry;
mod vcycle;

pub use coarsen::{coarsen, coarsen_observed, CoarsenOptions, LevelStack};
pub use registry::{build_solver, SOLVER_NAMES};
pub use vcycle::{MlqbpConfig, MlqbpSolver};
