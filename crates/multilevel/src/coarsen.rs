//! Heavy-edge coarsening for the multilevel V-cycle.
//!
//! One coarsening step pairs strongly connected components by **heavy-edge
//! matching**: components are visited in index order and each unmatched
//! component merges with the unmatched neighbor it shares the most wire
//! weight with (counting both directions). A merged node carries the summed
//! size of its members; pair weights between clusters accumulate; timing
//! constraints fold onto cluster pairs keeping the tightest `D_C`.
//!
//! Matching runs in two stages so the expensive part parallelizes without
//! changing the result: a **parallel** stage computes, per component, its
//! statically admissible merge candidates (same timing class, combined size
//! fits the smallest partition) sorted heaviest-first with ties toward the
//! lower index — the exact total order the serial greedy maximized under —
//! and a **serial** stage walks components in index order committing each
//! unmatched component to the first still-unmatched entry of its list. The
//! candidate lists depend only on the problem, never on match state, so the
//! matching is bit-identical for every thread count.
//!
//! The matching is **conservative** so that prolongation is exact:
//!
//! * components with distinct *timing classes* (the tightest incident `D_C`
//!   limit, [`NO_CONSTRAINT`] when unconstrained) never merge — a cluster
//!   therefore inherits the tightest limit of its members rather than mixing
//!   budgets of different criticality;
//! * a merged node never outgrows the smallest partition, so every coarse
//!   node still fits anywhere the topology could have placed its members;
//! * coarsening is refused entirely (an empty [`LevelStack`]) unless the
//!   topology's wire-cost and delay diagonals are zero, which is what makes
//!   dropping intra-cluster edges and constraints *exact*: members of a
//!   cluster share a partition, where wires cost `b[i][i] = 0` and delays
//!   are `d[i][i] = 0 ≤ D_C`.
//!
//! Under those rules, for every coarse assignment `A_c` and its prolongation
//! `A_f` (`A_f(j) = A_c(map(j))`): the objectives are **equal** and `A_f` is
//! feasible whenever `A_c` is (see the crate tests, which check both
//! properties by property-based testing).

use qbp_core::{
    Assignment, Circuit, ComponentId, Cost, Delay, PartitionId, Problem, ProblemBuilder,
    NO_CONSTRAINT,
};
use qbp_observe::{BatchPhase, NoopObserver, SolveEvent, SolveObserver};

/// A stack of coarsening steps, arena-backed: level `0` maps the original
/// problem to the first coarse problem, level `1` maps that one further
/// down, and so on; level `len() - 1` holds the coarsest problem.
///
/// All projection maps live in **one contiguous `u32` arena** (each level is
/// a span of it) instead of one `Vec` per level — a V-cycle at N = 10⁵ with
/// ~10 levels makes one growing allocation rather than ten, the spans pack
/// with zero per-level header overhead, and walking the maps during
/// prolongation is sequential in memory. Levels are addressed by index
/// through [`LevelStack::problem`] / [`LevelStack::map`] /
/// [`LevelStack::prolong`] / [`LevelStack::project`].
#[derive(Debug, Clone, Default)]
pub struct LevelStack {
    /// Coarse problems, finest first.
    problems: Vec<Problem>,
    /// All projection maps, concatenated finest-first.
    arena: Vec<u32>,
    /// `(start, len)` span of each level's map within the arena.
    spans: Vec<(usize, usize)>,
}

impl LevelStack {
    /// Number of coarsening steps.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// `true` when no coarsening was possible (solve flat instead).
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// The coarse problem produced by step `level`.
    pub fn problem(&self, level: usize) -> &Problem {
        &self.problems[level]
    }

    /// The coarsest problem, when any coarsening happened.
    pub fn coarsest(&self) -> Option<&Problem> {
        self.problems.last()
    }

    /// Step `level`'s projection map: `map(level)[j]` is the coarse
    /// component holding that level's fine component `j`.
    pub fn map(&self, level: usize) -> &[u32] {
        let (start, len) = self.spans[level];
        &self.arena[start..start + len]
    }

    /// Prolongs an assignment of step `level`'s coarse problem onto its
    /// finer side: `fine[j] = coarse[map[j]]`.
    pub fn prolong(&self, level: usize, coarse: &Assignment) -> Assignment {
        self.prolong_par(level, coarse, 1).0
    }

    /// [`LevelStack::prolong`] with the map walk fanned across up to
    /// `threads` workers. Each fine slot is an independent pure lookup, so
    /// the result is bit-identical for every thread count; the second
    /// element is the number of worker chunks used (`1` = the serial loop
    /// ran).
    pub fn prolong_par(
        &self,
        level: usize,
        coarse: &Assignment,
        threads: usize,
    ) -> (Assignment, usize) {
        let map = self.map(level);
        let chunks = qbp_core::par::workers_for(threads, map.len());
        if chunks <= 1 {
            let fine = Assignment::from_fn(map.len(), |j| {
                coarse.partition_of(ComponentId::new(map[j.index()] as usize))
            });
            return (fine, 1);
        }
        let parts = qbp_core::par::map_collect(threads, map.len(), |j| {
            coarse.part_index(map[j] as usize) as u32
        });
        let fine = Assignment::from_parts(parts).expect("prolonged map covers every component");
        (fine, chunks)
    }

    /// Projects a fine assignment down onto step `level`'s coarse problem:
    /// each cluster takes the partition of its lowest-index member. (Only
    /// used to seed the coarsest solve; the QBP solver accepts infeasible
    /// starts.)
    pub fn project(&self, level: usize, fine: &Assignment) -> Assignment {
        let map = self.map(level);
        let coarse_n = self.problems[level].n();
        let mut part = vec![u32::MAX; coarse_n];
        for (j, &c) in map.iter().enumerate() {
            if part[c as usize] == u32::MAX {
                part[c as usize] = fine.partition_of(ComponentId::new(j)).index() as u32;
            }
        }
        Assignment::from_fn(coarse_n, |c| PartitionId::new(part[c.index()] as usize))
    }

    /// Bytes of heap owned by the map arena and span table (capacity, not
    /// length), for the allocation audit in `perf_snapshot`. Excludes the
    /// coarse problems themselves.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.arena.capacity() * size_of::<u32>()
            + self.spans.capacity() * size_of::<(usize, usize)>()
    }

    #[cfg(test)]
    fn spans(&self) -> &[(usize, usize)] {
        &self.spans
    }
}

/// Knobs for [`coarsen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarsenOptions {
    /// Upper bound on coarsening steps.
    pub max_levels: usize,
    /// Stop coarsening once a level has at most this many components.
    pub min_size: usize,
    /// Thread budget for the per-component candidate stage of each matching
    /// pass (`0` = per-core). The matching itself is bit-identical for every
    /// value.
    pub threads: usize,
}

impl Default for CoarsenOptions {
    fn default() -> Self {
        CoarsenOptions {
            max_levels: 8,
            min_size: 64,
            threads: 1,
        }
    }
}

/// The timing class of each component: the tightest `D_C` limit incident to
/// it in either direction, [`NO_CONSTRAINT`] when unconstrained. Heavy-edge
/// matching only merges components of equal class.
fn timing_classes(problem: &Problem) -> Vec<Delay> {
    let mut class = vec![NO_CONSTRAINT; problem.n()];
    for (j1, j2, dc) in problem.timing().iter() {
        class[j1.index()] = class[j1.index()].min(dc);
        class[j2.index()] = class[j2.index()].min(dc);
    }
    class
}

/// Whether the topology permits exact coarsening: zero wire-cost and delay
/// diagonals (so intra-cluster wires and constraints vanish exactly once the
/// cluster shares a partition).
fn diagonals_are_zero(problem: &Problem) -> bool {
    let topo = problem.topology();
    let (b, d) = (topo.wire_cost(), topo.delay());
    (0..problem.m()).all(|i| b[(i, i)] == 0 && d[(i, i)] == 0)
}

/// One heavy-edge matching pass over `problem`, writing the projection map
/// into `map` (length `problem.n()`, a span of the caller's arena). Returns
/// the coarser problem, or `None` when the pass could not shrink the problem
/// (no mergeable pair; `map` contents are then unspecified).
fn coarsen_once(
    problem: &Problem,
    options: &CoarsenOptions,
    level: usize,
    map: &mut [u32],
    obs: &mut dyn SolveObserver,
) -> Option<Problem> {
    let n = problem.n();
    let min_size = options.min_size;
    let circuit = problem.circuit();
    let class = timing_classes(problem);
    // A cluster must still fit in *every* partition so a coarse solve keeps
    // the full placement freedom its members had.
    let size_cap = problem
        .topology()
        .capacities()
        .iter()
        .copied()
        .min()
        .unwrap_or(0);

    // Stage 1 (parallel): statically admissible merge candidates per
    // component, heaviest first with ties toward the lower index. Admission
    // (timing class, combined size) never looks at match state, so this
    // fans out freely.
    let intra_threads = qbp_core::par::effective_threads(options.threads);
    let tasks = qbp_core::par::workers_for(intra_threads, n);
    let class_ref = &class;
    let candidates: Vec<Vec<(Cost, u32)>> = qbp_core::par::map_collect(intra_threads, n, |j| {
        let cj = ComponentId::new(j);
        // Symmetric neighbor weights from both adjacency directions,
        // summed per neighbor by grouping a sorted edge list.
        let mut pairs: Vec<(u32, Cost)> = circuit
            .out_connections(cj)
            .chain(circuit.in_connections(cj))
            .map(|(k, w)| (k.index() as u32, w))
            .collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        let mut cands: Vec<(Cost, u32)> = Vec::new();
        let mut idx = 0;
        while idx < pairs.len() {
            let k = pairs[idx].0;
            let mut w: Cost = 0;
            while idx < pairs.len() && pairs[idx].0 == k {
                w += pairs[idx].1;
                idx += 1;
            }
            let ku = k as usize;
            if ku != j
                && class_ref[ku] == class_ref[j]
                && circuit.size(cj) + circuit.size(ComponentId::new(ku)) <= size_cap
            {
                cands.push((w, k));
            }
        }
        cands.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        cands
    });
    if tasks > 1 {
        obs.on_event(&SolveEvent::ParallelBatch {
            iteration: level,
            phase: BatchPhase::Coarsen,
            tasks,
            threads: intra_threads,
        });
    }

    // Stage 2 (serial): greedy commit in index order. The first
    // still-unmatched entry of a sorted list is exactly the maximum the
    // serial greedy took over its unmatched neighbors.
    // match_of[j] = the partner j merged with (or j itself when unmatched).
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut merges = 0usize;
    for j in 0..n {
        if matched[j] {
            continue;
        }
        if n - merges <= min_size {
            break;
        }
        if let Some(&(_, k)) = candidates[j].iter().find(|&&(_, k)| !matched[k as usize]) {
            let k = k as usize;
            match_of[j] = k as u32;
            match_of[k] = j as u32;
            matched[j] = true;
            matched[k] = true;
            merges += 1;
        }
    }
    if merges == 0 {
        return None;
    }

    // Number clusters in order of their lowest member index.
    map.fill(u32::MAX);
    let mut coarse_n = 0u32;
    for j in 0..n {
        if map[j] != u32::MAX {
            continue;
        }
        map[j] = coarse_n;
        let partner = match_of[j] as usize;
        if partner != j {
            map[partner] = coarse_n;
        }
        coarse_n += 1;
    }

    // Merged circuit: summed sizes, accumulated inter-cluster weights,
    // intra-cluster edges dropped (exact: the diagonal of B is zero).
    let mut sizes = vec![0u64; coarse_n as usize];
    for j in 0..n {
        sizes[map[j] as usize] += circuit.size(ComponentId::new(j));
    }
    let mut coarse_circuit = Circuit::with_capacity(coarse_n as usize);
    for (c, &s) in sizes.iter().enumerate() {
        coarse_circuit.add_component(format!("m{c}"), s);
    }
    for (from, to, w) in circuit.edges() {
        let (cf, ct) = (map[from.index()], map[to.index()]);
        if cf != ct {
            coarse_circuit
                .add_connection(
                    ComponentId::new(cf as usize),
                    ComponentId::new(ct as usize),
                    w,
                )
                .expect("cluster ids are in range and distinct");
        }
    }

    // Timing constraints fold onto cluster pairs keeping the tightest limit
    // (TimingConstraints::add already min-folds duplicates). Intra-cluster
    // constraints drop: the cluster shares a partition, where the delay is
    // the zero diagonal of D and every limit is non-negative.
    let mut coarse_timing = qbp_core::TimingConstraints::new(coarse_n as usize);
    for (j1, j2, dc) in problem.timing().iter() {
        let (c1, c2) = (map[j1.index()], map[j2.index()]);
        if c1 != c2 {
            coarse_timing
                .add(
                    ComponentId::new(c1 as usize),
                    ComponentId::new(c2 as usize),
                    dc,
                )
                .expect("cluster ids are in range and distinct");
        }
    }

    let mut builder = ProblemBuilder::new(coarse_circuit, problem.topology().clone())
        .timing(coarse_timing)
        .scales(problem.alpha(), problem.beta());
    // Linear cost columns sum exactly over cluster members.
    if let Some(p) = problem.linear_cost() {
        let m = problem.m();
        let mut coarse_p = qbp_core::DenseMatrix::filled(m, coarse_n as usize, 0);
        for j in 0..n {
            let c = map[j] as usize;
            for i in 0..m {
                coarse_p[(i, c)] += p[(i, j)];
            }
        }
        builder = builder.linear_cost(coarse_p);
    }
    Some(
        builder
            .build()
            .expect("coarse dimensions agree and total size is preserved"),
    )
}

/// Builds the level stack for `problem` by repeated heavy-edge matching.
///
/// Returns an empty stack when the topology's diagonals are nonzero (exact
/// coarsening impossible — the caller should solve flat), when the problem
/// is already at or below `min_size`, or when no pair may merge under the
/// timing-class and size guards.
pub fn coarsen(problem: &Problem, options: &CoarsenOptions) -> LevelStack {
    coarsen_observed(problem, options, &mut NoopObserver)
}

/// [`coarsen`] plus observability: emits one
/// [`SolveEvent::ParallelBatch`] per matching pass whose candidate stage
/// actually fanned out (`iteration` carries the level index, starting at 1).
pub fn coarsen_observed(
    problem: &Problem,
    options: &CoarsenOptions,
    obs: &mut dyn SolveObserver,
) -> LevelStack {
    let mut stack = LevelStack::default();
    // Fault-injection point: a corrupted matching is *detected* by refusing
    // to coarsen at all — the empty stack makes the V-cycle fall back to a
    // flat solve, trading speed for a result that is still correct.
    if qbp_core::fault::fault_point(qbp_core::fault::POINT_COARSEN).is_corrupt() {
        return stack;
    }
    if !diagonals_are_zero(problem) {
        return stack;
    }
    // Map lengths shrink geometrically (a meaningful pass drops ≥10%, and
    // heavy-edge matching typically halves), so 2·N covers the whole
    // V-cycle's spans in the common case — one arena allocation total.
    stack.arena.reserve(problem.n() * 2);
    loop {
        if stack.len() >= options.max_levels {
            break;
        }
        let fine_n = stack.problems.last().map_or(problem.n(), |p| p.n());
        if fine_n <= options.min_size {
            break;
        }
        // Reserve this level's span at the arena tail; on a failed pass the
        // tail is handed back.
        let start = stack.arena.len();
        stack.arena.resize(start + fine_n, u32::MAX);
        let level_idx = stack.spans.len() + 1;
        let (arena, problems) = (&mut stack.arena, &stack.problems);
        let fine = problems.last().unwrap_or(problem);
        match coarsen_once(fine, options, level_idx, &mut arena[start..], obs) {
            Some(coarse) => {
                // A pass that barely shrinks the problem (under 10%) signals
                // the guards have locked the structure; stop descending.
                let meaningful = coarse.n() * 10 <= fine_n * 9;
                stack.spans.push((start, fine_n));
                stack.problems.push(coarse);
                if !meaningful {
                    break;
                }
            }
            None => {
                stack.arena.truncate(start);
                break;
            }
        }
    }
    stack
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{check_feasibility, Evaluator, PartitionTopology, TimingConstraints};

    fn chain(n: usize, cap: u64) -> Problem {
        let mut c = Circuit::new();
        let ids: Vec<_> = (0..n)
            .map(|j| c.add_component(format!("c{j}"), 1))
            .collect();
        for w in ids.windows(2) {
            c.add_wires(w[0], w[1], 2).unwrap();
        }
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn matching_halves_a_chain() {
        let p = chain(16, 16);
        let stack = coarsen(
            &p,
            &CoarsenOptions {
                max_levels: 1,
                min_size: 2,
                ..CoarsenOptions::default()
            },
        );
        assert_eq!(stack.len(), 1);
        assert_eq!(stack.problem(0).n(), 8);
        assert_eq!(stack.map(0).len(), 16);
        // Total size is preserved.
        assert_eq!(stack.problem(0).circuit().total_size(), 16);
    }

    #[test]
    fn prolong_preserves_cost_and_feasibility() {
        let p = chain(12, 12);
        let stack = coarsen(
            &p,
            &CoarsenOptions {
                max_levels: 3,
                min_size: 3,
                ..CoarsenOptions::default()
            },
        );
        assert!(!stack.is_empty());
        let coarse_n = stack.problem(0).n();
        let coarse = Assignment::from_fn(coarse_n, |c| PartitionId::new(c.index() % 4));
        let fine = stack.prolong(0, &coarse);
        let coarse_eval = Evaluator::new(stack.problem(0));
        let fine_eval = Evaluator::new(&p);
        assert_eq!(coarse_eval.cost(&coarse), fine_eval.cost(&fine));
        if check_feasibility(stack.problem(0), &coarse).is_feasible() {
            assert!(check_feasibility(&p, &fine).is_feasible());
        }
    }

    #[test]
    fn distinct_timing_classes_never_merge() {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        c.add_wires(a, b, 100).unwrap();
        let mut tc = TimingConstraints::new(2);
        tc.add(a, b, 1).unwrap(); // both components now share class 1 …
        let p = ProblemBuilder::new(c.clone(), PartitionTopology::grid(2, 2, 4).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let opts = CoarsenOptions {
            max_levels: 1,
            min_size: 1,
            ..CoarsenOptions::default()
        };
        // … so they merge.
        assert_eq!(coarsen(&p, &opts).len(), 1);

        // Give `b` a tighter incident constraint via a third component: its
        // class now differs from `a`'s, so the heavy a–b edge cannot match.
        let d = c.add_component("d", 1);
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, 1).unwrap();
        tc.add(b, d, 0).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 4).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let stack = coarsen(&p, &opts);
        for level in 0..stack.len() {
            let map = stack.map(level);
            assert_ne!(map[0], map[1], "a and b must stay separate");
        }
    }

    #[test]
    fn matching_is_bit_identical_across_thread_counts() {
        // Irregular weights and sizes so the candidate ordering actually
        // exercises ties and the size guard.
        let mut c = Circuit::new();
        let ids: Vec<_> = (0..24)
            .map(|j| c.add_component(format!("c{j}"), 1 + (j as u64 % 3)))
            .collect();
        for j in 0..23 {
            c.add_wires(ids[j], ids[j + 1], 1 + (j as i64 * 7 % 5)).unwrap();
        }
        for j in 0..20 {
            c.add_wires(ids[j], ids[j + 4], 1 + (j as i64 % 3)).unwrap();
        }
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 12).unwrap())
            .build()
            .unwrap();
        let serial = coarsen(
            &p,
            &CoarsenOptions {
                min_size: 2,
                ..CoarsenOptions::default()
            },
        );
        assert!(!serial.is_empty());
        for threads in [2usize, 4, 8] {
            let par = coarsen(
                &p,
                &CoarsenOptions {
                    min_size: 2,
                    threads,
                    ..CoarsenOptions::default()
                },
            );
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            for level in 0..par.len() {
                assert_eq!(par.map(level), serial.map(level), "threads={threads}");
                assert_eq!(par.problem(level).n(), serial.problem(level).n());
            }
        }
    }

    #[test]
    fn nonzero_diagonal_refuses_to_coarsen() {
        let p = chain(8, 8);
        let m = p.m();
        let b = qbp_core::DenseMatrix::from_fn(m, m, |i, j| if i == j { 1 } else { 2 });
        let topo = p.topology().clone().with_wire_cost(b).unwrap();
        let p2 = ProblemBuilder::new(p.circuit().clone(), topo).build().unwrap();
        assert!(coarsen(&p2, &CoarsenOptions::default()).is_empty());
    }

    #[test]
    fn project_then_prolong_roundtrips_cluster_consistent_assignments() {
        let p = chain(10, 10);
        let stack = coarsen(
            &p,
            &CoarsenOptions {
                max_levels: 1,
                min_size: 2,
                ..CoarsenOptions::default()
            },
        );
        let coarse = Assignment::from_fn(stack.problem(0).n(), |c| PartitionId::new(c.index() % 4));
        let fine = stack.prolong(0, &coarse);
        assert_eq!(stack.project(0, &fine), coarse);
    }

    #[test]
    fn arena_spans_are_contiguous_and_sized_to_each_fine_level() {
        let p = chain(32, 32);
        let stack = coarsen(
            &p,
            &CoarsenOptions {
                max_levels: 4,
                min_size: 2,
                ..CoarsenOptions::default()
            },
        );
        assert!(stack.len() >= 2, "chain(32) should coarsen more than once");
        let mut expected_start = 0;
        let mut fine_n = p.n();
        for (level, &(start, len)) in stack.spans().iter().enumerate() {
            assert_eq!(start, expected_start, "level {level} span not contiguous");
            assert_eq!(len, fine_n, "level {level} span mismatches its fine side");
            // Every map entry lands inside the coarse problem.
            let coarse_n = stack.problem(level).n() as u32;
            assert!(stack.map(level).iter().all(|&c| c < coarse_n));
            expected_start += len;
            fine_n = stack.problem(level).n();
        }
        assert_eq!(expected_start, stack.spans().iter().map(|s| s.1).sum::<usize>());
        assert!(stack.arena_bytes() > 0);
    }
}
