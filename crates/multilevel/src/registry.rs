//! Method registry: construct any of the workspace's six solvers behind a
//! `Box<dyn Solver>` from its stable name plus one shared option set.
//!
//! This is the piece that lets drivers (the CLI's `solve`, the bench
//! harness, comparison scripts) stay method-agnostic: they parse a method
//! string and a [`CommonOpts`], call [`build_solver`], and from then on only
//! see the [`Solver`] trait. It lives here rather than in `qbp-solver` or
//! `qbp-baselines` because the registry must know every implementation —
//! including the multilevel driver, which itself builds on both of those
//! crates.

use crate::{MlqbpConfig, MlqbpSolver};
use qbp_baselines::{GfmConfig, GfmSolver, GklConfig, GklSolver};
use qbp_solver::{
    AnnealConfig, AnnealSolver, CommonOpts, Configure, QapConfig, QapSolver, QbpConfig, QbpSolver,
    Solver,
};

/// Every method name [`build_solver`] accepts, in the order the paper (and
/// the CLI usage text) lists them, with the multilevel driver last.
pub const SOLVER_NAMES: [&str; 6] = ["qbp", "qap", "gfm", "gkl", "anneal", "mlqbp"];

/// Builds the named solver with `opts` applied over its default
/// configuration. Returns `None` for an unknown name; the caller owns the
/// error message (the CLI lists [`SOLVER_NAMES`] in its usage text).
///
/// ```
/// use qbp_multilevel::registry::build_solver;
/// use qbp_solver::CommonOpts;
///
/// let solver = build_solver("mlqbp", &CommonOpts::default()).expect("known method");
/// assert_eq!(solver.name(), "mlqbp");
/// assert!(build_solver("simplex", &CommonOpts::default()).is_none());
/// ```
pub fn build_solver(kind: &str, opts: &CommonOpts) -> Option<Box<dyn Solver>> {
    match kind {
        "qbp" => Some(Box::new(QbpSolver::new(
            QbpConfig::default().with_common(opts),
        ))),
        "qap" => Some(Box::new(QapSolver::new(
            QapConfig::default().with_common(opts),
        ))),
        "gfm" => Some(Box::new(GfmSolver::new(
            GfmConfig::default().with_common(opts),
        ))),
        "gkl" => Some(Box::new(GklSolver::new(
            GklConfig::default().with_common(opts),
        ))),
        "anneal" => Some(Box::new(AnnealSolver::new(
            AnnealConfig::default().with_common(opts),
        ))),
        "mlqbp" => Some(Box::new(MlqbpSolver::new(
            MlqbpConfig::default().with_common(opts),
        ))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_listed_name_and_rejects_others() {
        for name in SOLVER_NAMES {
            let solver = build_solver(name, &CommonOpts::default()).expect("listed name builds");
            assert_eq!(solver.name(), name);
        }
        assert!(build_solver("", &CommonOpts::default()).is_none());
        assert!(build_solver("QBP", &CommonOpts::default()).is_none());
    }

    #[test]
    fn opts_reach_the_config() {
        let opts = CommonOpts {
            seed: 42,
            iterations: Some(3),
            ..CommonOpts::default()
        };
        // Round-trip through a config we can read back directly.
        let config = GklConfig::default().with_common(&opts);
        assert_eq!(config.seed, 42);
        assert_eq!(config.max_outer_loops, 3);
        // The multilevel config forwards the shared knobs to its inner QBP.
        let ml = MlqbpConfig::default().with_common(&opts);
        assert_eq!(ml.qbp.seed, 42);
        assert_eq!(ml.qbp.iterations, 3);
    }
}
