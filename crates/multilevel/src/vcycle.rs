//! The V-cycle driver: coarsen, solve the coarsest level with QBP
//! multistart, then uncoarsen level by level, refining each prolonged
//! assignment with profile-backed GFM sweeps plus a short capped QBP
//! descent.

use crate::coarsen::{coarsen_observed, CoarsenOptions, LevelStack};
use qbp_baselines::{GfmConfig, GfmSolver};
use qbp_core::exec::{ExecCtx, ExecStatus};
use qbp_core::{check_feasibility, Assignment, Cost, Error, Evaluator, Problem};
use qbp_observe::{BatchPhase, SolveEvent, SolveObserver, SolverId};
use qbp_solver::{moved_from, CommonOpts, Configure, QbpConfig, QbpSolver, SolveReport, Solver};
use std::time::Instant;

/// Configuration for [`MlqbpSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlqbpConfig {
    /// Upper bound on coarsening levels (CLI `--ml-levels`).
    pub max_levels: usize,
    /// Stop coarsening once a level has at most this many components
    /// (CLI `--ml-min-size`).
    pub min_size: usize,
    /// Multistart runs at the coarsest level.
    pub coarse_runs: usize,
    /// Burkard iteration cap of the per-level QBP descent (the coarsest
    /// solve uses the full budget from [`MlqbpConfig::qbp`] instead).
    pub refine_iterations: usize,
    /// GFM pass cap per level.
    pub refine_passes: usize,
    /// Cap on GFM+QBP refinement rounds at the *finest* level (coarser
    /// levels always run one). The loop stops early once a round stops
    /// improving, so large instances — whose prolonged solutions are
    /// already near flat quality — pay for at most one extra round, while
    /// small instances get the additional descent they need to stay within
    /// a few percent of a full-budget flat solve.
    pub refine_rounds: usize,
    /// Configuration of the underlying QBP solver (seed, iteration budget,
    /// stall window, threads all live here).
    pub qbp: QbpConfig,
}

impl Default for MlqbpConfig {
    fn default() -> Self {
        MlqbpConfig {
            max_levels: 8,
            min_size: 64,
            coarse_runs: 4,
            refine_iterations: 10,
            refine_passes: 4,
            refine_rounds: 6,
            qbp: QbpConfig::default(),
        }
    }
}

impl Configure for MlqbpConfig {
    fn apply_common(&mut self, opts: &CommonOpts) {
        self.qbp.apply_common(opts);
    }

    fn common(&self) -> CommonOpts {
        self.qbp.common()
    }
}

/// Multilevel QBP: heavy-edge coarsening, full-strength QBP multistart at
/// the coarsest level, then GFM sweeps plus a capped QBP descent at every
/// level on the way back up. Falls back to flat QBP multistart when the
/// problem is too small (or its topology too exotic) to coarsen.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder};
/// use qbp_multilevel::{MlqbpConfig, MlqbpSolver};
/// use qbp_observe::NoopObserver;
/// use qbp_solver::Solver;
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 10);
/// let b = circuit.add_component("b", 20);
/// circuit.add_wires(a, b, 3)?;
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 30)?).build()?;
/// let report = MlqbpSolver::default().solve(&problem, None, &mut NoopObserver)?;
/// assert!(report.feasible);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MlqbpSolver {
    config: MlqbpConfig,
}

/// Forwards inner solvers' events but drops their `SolveStarted` /
/// `SolveFinished` brackets, so one `mlqbp` solve reads as exactly one solve
/// to counters and traces.
struct InnerObserver<'a> {
    sink: &'a mut dyn SolveObserver,
}

impl SolveObserver for InnerObserver<'_> {
    fn on_event(&mut self, event: &SolveEvent) {
        match event {
            SolveEvent::SolveStarted { .. } | SolveEvent::SolveFinished { .. } => {}
            other => self.sink.on_event(other),
        }
    }
}

/// Below `min_size × FLAT_DELEGATION_FACTOR` components the V-cycle
/// delegates to a flat full-budget QBP solve outright. At those sizes a
/// stack exists but buys nothing: the coarsest level is barely smaller than
/// the original, so mlqbp pays coarsening plus per-level refinement on top
/// of an almost-flat solve and comes out *slower* than flat (the paper-suite
/// instances at a few hundred components sat at ~0.8× before this guard).
/// The factor is calibrated on that suite: at the default `min_size = 64`
/// the threshold is 320 components, which delegates the rows where flat wins
/// and keeps the V-cycle where it is already ahead.
const FLAT_DELEGATION_FACTOR: usize = 5;

/// `(feasible, cost)` ordering: feasible beats infeasible, then lower cost.
fn better(cand: (bool, Cost), incumbent: (bool, Cost)) -> bool {
    match (cand.0, incumbent.0) {
        (true, false) => true,
        (false, true) => false,
        _ => cand.1 < incumbent.1,
    }
}

impl MlqbpSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: MlqbpConfig) -> Self {
        MlqbpSolver { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &MlqbpConfig {
        &self.config
    }

    /// Runs the V-cycle, streaming [`SolveEvent`]s to `obs` (including one
    /// [`SolveEvent::LevelCoarsened`] per coarsening step and one
    /// [`SolveEvent::LevelRefined`] per uncoarsening step).
    ///
    /// # Errors
    ///
    /// Returns the underlying QBP solver's validation errors (dimension
    /// mismatch, invalid configuration).
    pub fn solve_observed(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        self.solve_observed_exec(problem, init, &ExecCtx::unbounded(), obs)
    }

    /// [`MlqbpSolver::solve_observed`] under an execution budget. The budget
    /// threads into the coarse multistart and every per-level refinement
    /// solve, and the V-cycle itself checks it at each uncoarsening level:
    /// once the budget expires (or the token fires) the remaining levels
    /// prolong without refining — prolongation preserves feasibility, so the
    /// finest-level assignment stays feasible whenever the coarse solve's
    /// was.
    ///
    /// # Errors
    ///
    /// Same as [`MlqbpSolver::solve_observed`].
    pub fn solve_observed_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        let start = Instant::now();
        let mut status = ExecStatus::Completed;
        obs.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Mlqbp,
            components: problem.n(),
            partitions: problem.m(),
        });
        let options = CoarsenOptions {
            max_levels: self.config.max_levels,
            min_size: self.config.min_size,
            threads: self.config.qbp.threads,
        };
        let stack = if problem.n() < self.config.min_size * FLAT_DELEGATION_FACTOR {
            LevelStack::default()
        } else {
            coarsen_observed(problem, &options, obs)
        };
        for idx in 0..stack.len() {
            obs.on_event(&SolveEvent::LevelCoarsened {
                level: idx + 1,
                from_components: stack.map(idx).len(),
                to_components: stack.problem(idx).n(),
            });
        }
        let mut inner = InnerObserver { sink: obs };
        let coarse_solver = QbpSolver::new(self.config.qbp);
        let runs = self.config.coarse_runs.max(1);
        let mut iterations;
        let mut assignment;
        if stack.is_empty() {
            // Nothing to coarsen: one fully-observed flat QBP run (the
            // multistart driver deliberately withholds per-iteration events,
            // and a non-coarsenable problem is small enough not to need it).
            let out = coarse_solver.solve_observed_exec(
                problem,
                init,
                &mut qbp_solver::SolveWorkspace::new(),
                exec,
                &mut inner,
            )?;
            iterations = out.iterations.max(1);
            assignment = out.assignment;
            status = status.merge(out.status);
        } else {
            // Solve the coarsest level with the full QBP multistart.
            let coarsest = stack.coarsest().expect("stack checked non-empty");
            let coarse_init = init.map(|a| {
                let mut projected = a.clone();
                for level in 0..stack.len() {
                    projected = stack.project(level, &projected);
                }
                projected
            });
            let out = coarse_solver.solve_multistart_exec(
                coarsest,
                coarse_init.as_ref(),
                runs,
                exec,
                &mut inner,
            )?;
            iterations = out.iterations.max(1);
            assignment = out.assignment;
            status = status.merge(out.status);

            // Uncoarsen: prolong, refine with GFM sweeps, then a short
            // capped QBP descent; keep whichever candidate is best. The
            // refinement solves inherit the configured thread budget — their
            // batched sweeps and parallel subproblems are bit-identical to
            // the serial path, so the V-cycle stays reproducible for any
            // `--threads`.
            let refine_solver = QbpSolver::new(QbpConfig {
                iterations: self.config.refine_iterations,
                ..self.config.qbp
            });
            let intra_threads = qbp_core::par::effective_threads(self.config.qbp.threads);
            for idx in (0..stack.len()).rev() {
                let fine_problem = if idx == 0 {
                    problem
                } else {
                    stack.problem(idx - 1)
                };
                let eval = Evaluator::new(fine_problem);
                let (prolonged, prolong_chunks) =
                    stack.prolong_par(idx, &assignment, intra_threads);
                if prolong_chunks > 1 {
                    inner.on_event(&SolveEvent::ParallelBatch {
                        iteration: iterations,
                        phase: BatchPhase::Prolong,
                        tasks: prolong_chunks,
                        threads: intra_threads,
                    });
                }
                let mut best = prolonged.clone();
                let mut best_key = (
                    check_feasibility(fine_problem, &best).is_feasible(),
                    eval.cost(&best),
                );
                let start_key = best_key;
                // The caller's initial assignment competes at the finest
                // level: projecting it through the cluster hierarchy can
                // break it apart (cluster members straddling partitions are
                // forced together, possibly past capacity), so the original
                // re-enters here as a refinement seed when it wins.
                if idx == 0 {
                    if let Some(a) = init {
                        let key = (check_feasibility(problem, a).is_feasible(), eval.cost(a));
                        if better(key, best_key) {
                            best_key = key;
                            best = a.clone();
                        }
                    }
                }
                // GFM refinement also runs under the configured thread
                // budget: its speculative move batches commit in canonical
                // serial order, so the sweep result is identical to a
                // single-threaded pass.
                let gfm = GfmSolver::new(GfmConfig {
                    max_passes: self.config.refine_passes,
                    hill_climbing: true,
                    seed: self.config.qbp.seed,
                    threads: self.config.qbp.threads,
                    ..GfmConfig::default()
                });
                // Alternate GFM sweeps with capped QBP descents while they
                // keep improving. Coarser levels run one round (their
                // residual error is cheap to fix a level later); the finest
                // level — where quality is judged — may loop up to
                // `refine_rounds` times, which small instances need to match
                // a full-budget flat solve.
                let rounds = if idx == 0 {
                    self.config.refine_rounds.max(1)
                } else {
                    1
                };
                // Level boundary is a cooperative checkpoint: an expired
                // budget stops refinement here, and the remaining levels
                // only prolong (which preserves feasibility).
                if status.is_completed() {
                    if let Some(stop) = exec.check(iterations) {
                        match stop {
                            ExecStatus::Cancelled => {
                                inner.on_event(&SolveEvent::Cancelled { iteration: iterations });
                            }
                            _ => inner.on_event(&SolveEvent::BudgetExhausted {
                                iteration: iterations,
                            }),
                        }
                        status = stop;
                    }
                }
                for _ in 0..rounds {
                    if !status.is_completed() {
                        break;
                    }
                    let round_start = best_key;
                    // GFM needs a feasible start; prolongation preserves
                    // feasibility, so this only skips when the coarse solve
                    // itself ended infeasible.
                    if best_key.0 && self.config.refine_passes > 0 {
                        let out = gfm.solve_observed_exec(fine_problem, &best, exec, &mut inner)?;
                        iterations += out.passes;
                        status = status.merge(out.status);
                        if better((true, out.cost), best_key) {
                            best_key = (true, out.cost);
                            best = out.assignment;
                        }
                    }
                    if status.is_completed() && self.config.refine_iterations > 0 {
                        let out = refine_solver.solve_observed_exec(
                            fine_problem,
                            Some(&best),
                            &mut qbp_solver::SolveWorkspace::new(),
                            exec,
                            &mut inner,
                        )?;
                        iterations += out.iterations;
                        status = status.merge(out.status);
                        let key = (
                            out.feasible
                                && check_feasibility(fine_problem, &out.assignment).is_feasible(),
                            out.objective,
                        );
                        if better(key, best_key) {
                            best_key = key;
                            best = out.assignment;
                        }
                    }
                    if !better(best_key, round_start) {
                        break;
                    }
                }
                // A closing GFM sweep polishes whatever the last descent
                // left: its final GAP iterate can strand single-move gains
                // that one cheap pass recovers.
                if status.is_completed() && best_key.0 && self.config.refine_passes > 0 {
                    let out = gfm.solve_observed_exec(fine_problem, &best, exec, &mut inner)?;
                    iterations += out.passes;
                    status = status.merge(out.status);
                    if better((true, out.cost), best_key) {
                        best_key = (true, out.cost);
                        best = out.assignment;
                    }
                }
                inner.on_event(&SolveEvent::LevelRefined {
                    level: idx + 1,
                    value: best_key.1,
                    improved: better(best_key, start_key),
                });
                assignment = best;
            }
        }
        let eval = Evaluator::new(problem);
        let mut objective = eval.cost(&assignment);
        let mut feasible = check_feasibility(problem, &assignment).is_feasible();
        // Never return worse than a feasible caller-supplied start (the flat
        // fallback's multistart already guarantees this for its own path).
        if let Some(a) = init {
            let init_key = (check_feasibility(problem, a).is_feasible(), eval.cost(a));
            if better(init_key, (feasible, objective)) {
                assignment = a.clone();
                feasible = init_key.0;
                objective = init_key.1;
            }
        }
        obs.on_event(&SolveEvent::SolveFinished {
            iterations,
            value: objective,
            feasible,
        });
        Ok(SolveReport {
            solver: "mlqbp",
            moves_applied: moved_from(init, &assignment),
            objective,
            embedded_value: None,
            feasible,
            iterations,
            elapsed: start.elapsed(),
            auto_profile: None,
            assignment,
            status,
        })
    }
}

impl Solver for MlqbpSolver {
    fn name(&self) -> &'static str {
        "mlqbp"
    }

    fn solve_exec(
        &self,
        problem: &Problem,
        init: Option<&Assignment>,
        exec: &ExecCtx,
        obs: &mut dyn SolveObserver,
    ) -> Result<SolveReport, Error> {
        self.solve_observed_exec(problem, init, exec, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::{Circuit, PartitionTopology, ProblemBuilder};
    use qbp_observe::{CountersObserver, NoopObserver};

    fn grid_problem(n: usize, cap: u64) -> Problem {
        let mut c = Circuit::new();
        let ids: Vec<_> = (0..n)
            .map(|j| c.add_component(format!("c{j}"), 1))
            .collect();
        for w in ids.windows(2) {
            c.add_wires(w[0], w[1], 3).unwrap();
        }
        for j in 0..n.saturating_sub(4) {
            c.add_wires(ids[j], ids[j + 4], 1).unwrap();
        }
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn vcycle_produces_feasible_result_with_level_events() {
        let p = grid_problem(32, 10);
        // min_size 4 keeps 32 components above the flat-delegation
        // threshold (4 × FLAT_DELEGATION_FACTOR = 20) so the V-cycle runs.
        let solver = MlqbpSolver::new(MlqbpConfig {
            min_size: 4,
            ..MlqbpConfig::default()
        });
        let mut counters = CountersObserver::new();
        let report = solver.solve(&p, None, &mut counters).unwrap();
        assert!(report.feasible);
        assert_eq!(report.solver, "mlqbp");
        let snap = counters.snapshot();
        assert_eq!(snap.solves, 1, "inner solves must not leak");
        assert!(snap.levels_coarsened >= 1);
        assert_eq!(snap.levels_coarsened, snap.levels_refined);
        assert_eq!(
            report.objective,
            Evaluator::new(&p).cost(&report.assignment)
        );
    }

    #[test]
    fn tiny_problem_falls_back_to_flat_qbp() {
        let p = grid_problem(4, 2);
        let mut counters = CountersObserver::new();
        let report = MlqbpSolver::default().solve(&p, None, &mut counters).unwrap();
        assert!(report.feasible);
        assert!(report.iterations >= 1);
        assert_eq!(counters.snapshot().levels_coarsened, 0);
    }

    #[test]
    fn small_problems_delegate_to_flat_solve() {
        // 100 components is above min_size (64) but below the delegation
        // threshold (320): mlqbp must skip the V-cycle entirely and hand
        // the problem to one full-budget flat solve.
        let p = grid_problem(100, 30);
        let mut counters = CountersObserver::new();
        let report = MlqbpSolver::default().solve(&p, None, &mut counters).unwrap();
        assert!(report.feasible);
        let snap = counters.snapshot();
        assert_eq!(snap.levels_coarsened, 0, "delegated solves must not coarsen");
        assert_eq!(snap.solves, 1);
    }

    /// Like `grid_problem` but over 8 partitions, sized so the per-level
    /// refinement solves cross the solver's parallel grains (descent cells,
    /// GAP lanes) — the full V-cycle must stay bit-identical for any
    /// thread budget now that refinement inherits `--threads`.
    fn wide_problem(n: usize, cap: u64) -> Problem {
        let mut c = Circuit::new();
        let ids: Vec<_> = (0..n)
            .map(|j| c.add_component(format!("c{j}"), 1))
            .collect();
        for w in ids.windows(2) {
            c.add_wires(w[0], w[1], 3).unwrap();
        }
        for j in 0..n.saturating_sub(4) {
            c.add_wires(ids[j], ids[j + 4], 1).unwrap();
        }
        ProblemBuilder::new(c, PartitionTopology::grid(2, 4, cap).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn vcycle_refinement_is_bit_identical_across_threads() {
        let p = wide_problem(600, 200);
        let run = |threads: usize| {
            let mut cfg = MlqbpConfig::default();
            cfg.qbp.threads = threads;
            MlqbpSolver::new(cfg)
                .solve(&p, None, &mut NoopObserver)
                .unwrap()
        };
        let serial = run(1);
        assert!(serial.feasible);
        for threads in [2usize, 4, 8] {
            let par = run(threads);
            assert_eq!(par.assignment, serial.assignment, "threads={threads}");
            assert_eq!(par.objective, serial.objective);
            assert_eq!(par.embedded_value, serial.embedded_value);
            assert_eq!(par.iterations, serial.iterations);
            assert_eq!(par.moves_applied, serial.moves_applied);
        }
    }

    #[test]
    fn never_worse_than_feasible_initial() {
        let p = grid_problem(24, 8);
        let init = Assignment::from_fn(24, |j| qbp_core::PartitionId::new(j.index() / 6));
        assert!(check_feasibility(&p, &init).is_feasible());
        let report = MlqbpSolver::new(MlqbpConfig {
            min_size: 6,
            ..MlqbpConfig::default()
        })
        .solve(&p, Some(&init), &mut NoopObserver)
        .unwrap();
        assert!(report.feasible);
    }
}
