//! Timing-constraint sampling with controlled tightness.
//!
//! §5 of the paper: "a large number of these constraints are involved with
//! components which do not have actual electrical connection or cycle time
//! constraints between them. We discarded these constraints and only list
//! the total number of critical constraints" — so the instances carry a
//! *sparse* set of critical pairwise delay limits, mostly along real wires.
//! This sampler reproduces that: it draws the requested number of directed
//! constraints, preferring connected pairs, with limits drawn from the low
//! quantiles of the topology's delay distribution (the "very tight"
//! constraints the paper evaluates under).

use qbp_core::{Circuit, ComponentId, Delay, PartitionTopology, TimingConstraints};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Samples sparse critical timing constraints for a circuit/topology pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstraintSampler {
    count: usize,
    tightness: f64,
    tight_fraction: f64,
    min_limit: Delay,
    seed: u64,
}

impl ConstraintSampler {
    /// A sampler for `count` directed constraints.
    pub fn new(count: usize) -> Self {
        ConstraintSampler {
            count,
            tightness: 0.35,
            tight_fraction: 0.25,
            min_limit: 1,
            seed: 0x7161,
        }
    }

    /// Tightness in `(0, 1]`: *critical* limits are drawn uniformly from the
    /// lowest `tightness` fraction of the topology's off-diagonal delay
    /// values. Small values → critical pairs are confined to near
    /// partitions. Default 0.35 (limits of 1–2 on a 4×4 grid).
    pub fn tightness(mut self, tightness: f64) -> Self {
        assert!(tightness > 0.0 && tightness <= 1.0, "tightness in (0, 1]");
        self.tightness = tightness;
        self
    }

    /// Fraction of constraints that are *critical* (drawn from the tight
    /// quantile span); the remainder draw from the full delay distribution.
    /// Real slack-derived budgets have exactly this shape: a tight
    /// critical-path minority and a loose majority — an all-tight constraint
    /// set freezes the feasible region solid, which no industrial circuit
    /// with a working design exhibits. Default 0.25.
    pub fn tight_fraction(mut self, tight_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&tight_fraction), "fraction in [0, 1]");
        self.tight_fraction = tight_fraction;
        self
    }

    /// Floor on sampled limits. The default of 1 keeps individual
    /// constraints satisfiable without forcing co-location (a limit of 0
    /// on a grid means "same partition", which can conflict with capacity).
    pub fn min_limit(mut self, min_limit: Delay) -> Self {
        assert!(min_limit >= 0, "limits are non-negative");
        self.min_limit = min_limit;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draws the constraints. Connected (wired) pairs are used first, in
    /// random order; if the request exceeds the number of wired pairs,
    /// random unconnected pairs fill the remainder (the "cycle time
    /// constraints between unconnected components" case).
    ///
    /// The returned set has exactly `min(count, N·(N−1))` directed
    /// constraints.
    ///
    /// **Satisfiability caveat**: independently sampled tight limits can be
    /// jointly unsatisfiable under tight capacities. Use
    /// [`ConstraintSampler::sample_with_witness`] when the instance must be
    /// feasible by construction (the suite builder does).
    pub fn sample(&self, circuit: &Circuit, topology: &PartitionTopology) -> TimingConstraints {
        self.sample_impl(circuit, topology, None)
    }

    /// Like [`ConstraintSampler::sample`], but every limit is floored at the
    /// delay the `witness` assignment realizes for that pair, so the witness
    /// satisfies every constraint — the instance is feasible by
    /// construction (a *planted* instance). With a spatially clustered
    /// witness, most wired pairs sit at distance 0–1, so the limits stay
    /// tight.
    ///
    /// # Panics
    ///
    /// Panics if the witness does not match the circuit/topology dimensions.
    pub fn sample_with_witness(
        &self,
        circuit: &Circuit,
        topology: &PartitionTopology,
        witness: &qbp_core::Assignment,
    ) -> TimingConstraints {
        assert_eq!(witness.len(), circuit.len(), "witness length mismatch");
        witness.validate(topology.len()).expect("witness partitions in range");
        self.sample_impl(circuit, topology, Some(witness))
    }

    fn sample_impl(
        &self,
        circuit: &Circuit,
        topology: &PartitionTopology,
        witness: Option<&qbp_core::Assignment>,
    ) -> TimingConstraints {
        let n = circuit.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tc = TimingConstraints::new(n);
        if n < 2 || self.count == 0 {
            return tc;
        }
        // Sorted off-diagonal delay values; limits come from the low
        // quantiles.
        let m = topology.len();
        let mut dvals: Vec<Delay> = (0..m)
            .flat_map(|a| (0..m).filter(move |&b| b != a).map(move |b| (a, b)))
            .map(|(a, b)| topology.delay()[(a, b)])
            .collect();
        dvals.sort_unstable();
        let span = ((dvals.len() as f64 * self.tightness).ceil() as usize)
            .clamp(1, dvals.len());
        let draw_limit = |rng: &mut StdRng, a: ComponentId, b: ComponentId| -> Delay {
            let from_span = if rng.random::<f64>() < self.tight_fraction {
                span
            } else {
                dvals.len()
            };
            let drawn = dvals[rng.random_range(0..from_span)].max(self.min_limit);
            match witness {
                Some(w) => {
                    // One hop of headroom beyond the witness's realization:
                    // a working design is never at zero slack on every net,
                    // and exact floors would make the witness basin rigid.
                    let realized =
                        topology.delay()[(w.part_index(a.index()), w.part_index(b.index()))];
                    drawn.max((realized + 1).min(*dvals.last().expect("m >= 2")))
                }
                None => drawn,
            }
        };

        let mut wired: Vec<(ComponentId, ComponentId)> = circuit
            .edges()
            .map(|(a, b, _)| (a, b))
            .collect();
        wired.shuffle(&mut rng);
        for (a, b) in wired {
            if tc.len() >= self.count {
                break;
            }
            let limit = draw_limit(&mut rng, a, b);
            tc.add(a, b, limit).expect("edges are valid pairs");
        }
        // Fill with random pairs if needed.
        let max_pairs = n * (n - 1);
        let target = self.count.min(max_pairs);
        let mut guard = 0;
        while tc.len() < target && guard < 100 * target {
            guard += 1;
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            let (ca, cb) = (ComponentId::new(a), ComponentId::new(b));
            if tc.get(ca, cb).is_some() {
                continue;
            }
            let limit = draw_limit(&mut rng, ca, cb);
            tc.add(ca, cb, limit).expect("distinct valid pair");
        }
        tc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticCircuit;

    fn setup() -> (Circuit, PartitionTopology) {
        let c = SyntheticCircuit::new(60, 300).seed(1).build();
        let t = PartitionTopology::grid(4, 4, 10_000).unwrap();
        (c, t)
    }

    #[test]
    fn produces_requested_count() {
        let (c, t) = setup();
        let tc = ConstraintSampler::new(400).seed(2).sample(&c, &t);
        assert_eq!(tc.len(), 400);
    }

    #[test]
    fn prefers_wired_pairs() {
        let (c, t) = setup();
        let tc = ConstraintSampler::new(100).seed(2).sample(&c, &t);
        let wired = tc
            .iter()
            .filter(|&(a, b, _)| c.connection(a, b) > 0)
            .count();
        assert_eq!(wired, 100, "with enough edges, all constraints are wired");
    }

    #[test]
    fn tightness_controls_limits() {
        let (c, t) = setup();
        // With every constraint critical, tightness 0.2 on a 4×4 Manhattan
        // grid caps limits at 2.
        let tight = ConstraintSampler::new(200)
            .tightness(0.2)
            .tight_fraction(1.0)
            .seed(3)
            .sample(&c, &t);
        let max_tight = tight.iter().map(|(_, _, dc)| dc).max().unwrap();
        assert!(max_tight <= 2, "tight limits, got {max_tight}");
        let loose = ConstraintSampler::new(200).tightness(1.0).seed(3).sample(&c, &t);
        let max_loose = loose.iter().map(|(_, _, dc)| dc).max().unwrap();
        assert!(max_loose >= max_tight);
    }

    #[test]
    fn tight_fraction_mixes_distributions() {
        let (c, t) = setup();
        // All-critical vs no-critical: the critical mix must have a lower
        // mean limit.
        let all = ConstraintSampler::new(300)
            .tightness(0.2)
            .tight_fraction(1.0)
            .seed(9)
            .sample(&c, &t);
        let none = ConstraintSampler::new(300)
            .tightness(0.2)
            .tight_fraction(0.0)
            .seed(9)
            .sample(&c, &t);
        let mean = |tc: &qbp_core::TimingConstraints| {
            tc.iter().map(|(_, _, dc)| dc as f64).sum::<f64>() / tc.len() as f64
        };
        assert!(mean(&all) < mean(&none));
    }

    #[test]
    fn witness_slack_headroom_is_respected() {
        let (c, t) = setup();
        // Any witness: every sampled limit admits one extra hop beyond the
        // witness's realized delay (capped at the topology's diameter).
        let witness = qbp_core::Assignment::from_fn(c.len(), |j| {
            qbp_core::PartitionId::new(j.index() % t.len())
        });
        let tc = ConstraintSampler::new(400)
            .tightness(0.2)
            .tight_fraction(1.0)
            .seed(11)
            .sample_with_witness(&c, &t, &witness);
        let diameter = *t.delay().iter().max().expect("non-empty delay matrix");
        for (a, b, dc) in tc.iter() {
            let realized =
                t.delay()[(witness.part_index(a.index()), witness.part_index(b.index()))];
            assert!(dc >= (realized + 1).min(diameter), "pair {a}->{b}");
        }
    }

    #[test]
    fn min_limit_floor_applies() {
        let (c, t) = setup();
        let tc = ConstraintSampler::new(200)
            .tightness(0.1)
            .min_limit(1)
            .seed(4)
            .sample(&c, &t);
        assert!(tc.iter().all(|(_, _, dc)| dc >= 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let (c, t) = setup();
        let a = ConstraintSampler::new(150).seed(5).sample(&c, &t);
        let b = ConstraintSampler::new(150).seed(5).sample(&c, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn count_capped_by_pair_universe() {
        let mut c = Circuit::new();
        c.add_component("a", 1);
        c.add_component("b", 1);
        let t = PartitionTopology::grid(2, 2, 10).unwrap();
        let tc = ConstraintSampler::new(1000).sample(&c, &t);
        assert_eq!(tc.len(), 2); // only (a,b) and (b,a)
    }

    #[test]
    fn zero_count_or_tiny_circuit() {
        let (c, t) = setup();
        assert!(ConstraintSampler::new(0).sample(&c, &t).is_empty());
        let mut single = Circuit::new();
        single.add_component("only", 1);
        assert!(ConstraintSampler::new(10).sample(&single, &t).is_empty());
    }
}
