//! Seeded ECO edit-stream generator: realistic engineering-change-order
//! traces for the paper circuits, driving [`qbp_eco::EcoSession`] benchmarks
//! and smoke tests.
//!
//! The mix mirrors what trickles out of a real ECO queue: mostly wire
//! reweights on existing nets, some ripped-up and freshly routed pairs, a
//! sprinkle of timing-bound changes, the occasional component detach, and a
//! rare whole-netlist touch (a zero-delta cycle-time tighten, which changes
//! nothing semantically but forces the all-rows rebuild path). Bound edits
//! only loosen existing constraints, drop them, or add new ones at the
//! topology's delay ceiling (satisfied by every placement), so a feasible
//! problem stays feasible across the whole stream — the warm-solve
//! benchmarks and the `eco_bench` feasibility gate rely on that.

use qbp_core::{ComponentId, Cost, Delay, Problem};
use qbp_eco::EditOp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Knobs of the edit-stream generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcoStreamOptions {
    /// Number of edits to emit.
    pub edits: usize,
    /// RNG seed; the stream is a pure function of `(problem, options)`.
    pub seed: u64,
    /// Include structural edits (component detaches). Disable for streams
    /// that must keep every component wired.
    pub structural: bool,
}

impl Default for EcoStreamOptions {
    fn default() -> Self {
        EcoStreamOptions {
            edits: 1000,
            seed: 1993,
            structural: true,
        }
    }
}

/// Generates a seeded edit stream for `problem`. Every emitted edit
/// validates against the evolving problem (ids are stable under detaches and
/// no edit references a component that does not exist), and the stream
/// preserves feasibility: wire edits never affect the constraint set, bound
/// edits only loosen, remove, or add at the delay ceiling, and tightens are
/// zero-delta.
pub fn eco_edit_stream(problem: &Problem, options: &EcoStreamOptions) -> Vec<EditOp> {
    let n = problem.n();
    assert!(n >= 2, "need at least two components to edit");
    let mut rng = StdRng::seed_from_u64(options.seed);
    // Snapshot the initial adjacency once; overwrite semantics make edits
    // against a stale snapshot still valid (a remove of an already-removed
    // pair is a no-op edit, which real ECO queues produce too).
    let wired: Vec<(usize, usize)> = problem
        .circuit()
        .edges()
        .map(|(a, b, _)| (a.index(), b.index()))
        .collect();
    let constrained: Vec<(usize, usize, Delay)> = problem
        .timing()
        .iter()
        .map(|(a, b, d)| (a.index(), b.index(), d))
        .collect();
    let max_delay = (0..problem.m())
        .flat_map(|i| (0..problem.m()).map(move |j| (i, j)))
        .map(|(i, j)| problem.topology().delay()[(i, j)])
        .max()
        .unwrap_or(1)
        .max(1);

    let any_pair = |rng: &mut StdRng| -> (ComponentId, ComponentId) {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        (ComponentId::new(a), ComponentId::new(b))
    };
    let wired_pair = |rng: &mut StdRng| -> Option<(ComponentId, ComponentId)> {
        if wired.is_empty() {
            return None;
        }
        let (a, b) = wired[rng.random_range(0..wired.len())];
        Some((ComponentId::new(a), ComponentId::new(b)))
    };

    let mut ops = Vec::with_capacity(options.edits);
    while ops.len() < options.edits {
        let roll = rng.random_range(0..100);
        let op = match roll {
            // 40%: reweight an existing net.
            0..=39 => match wired_pair(&mut rng) {
                Some((a, b)) => EditOp::ReweightPair {
                    a,
                    b,
                    weight: rng.random_range(1..=10) as Cost,
                },
                None => continue,
            },
            // 15%: route a fresh pair.
            40..=54 => {
                let (a, b) = any_pair(&mut rng);
                EditOp::AddPair {
                    a,
                    b,
                    weight: rng.random_range(1..=5) as Cost,
                }
            }
            // 15%: rip up a net.
            55..=69 => match wired_pair(&mut rng) {
                Some((a, b)) => EditOp::RemovePair { a, b },
                None => continue,
            },
            // 12%: loosen an existing timing bound (never tighten, so the
            // stream preserves feasibility).
            70..=81 => {
                if constrained.is_empty() {
                    continue;
                }
                let (a, b, limit) = constrained[rng.random_range(0..constrained.len())];
                let loosened = (limit + rng.random_range(1..=2) as Delay).min(max_delay);
                EditOp::SetTimingBound {
                    a: ComponentId::new(a),
                    b: ComponentId::new(b),
                    bound: Some(loosened),
                }
            }
            // 8%: drop a timing bound entirely.
            82..=89 => {
                if constrained.is_empty() {
                    continue;
                }
                let (a, b, _) = constrained[rng.random_range(0..constrained.len())];
                EditOp::SetTimingBound {
                    a: ComponentId::new(a),
                    b: ComponentId::new(b),
                    bound: None,
                }
            }
            // 9%: add a new bound on a wired pair at the topology's delay
            // ceiling. Every placement satisfies it, so the constraint set
            // grows (exercising the constrained-suffix CSR and penalty
            // machinery) without ever excluding an assignment — anything
            // below the ceiling can compound across a long stream into a
            // genuinely infeasible problem.
            90..=98 => match wired_pair(&mut rng) {
                Some((a, b)) => EditOp::SetTimingBound {
                    a,
                    b,
                    bound: Some(max_delay),
                },
                None => continue,
            },
            // 1%: whole-netlist touch — detach a component when structural
            // edits are allowed, else a zero-delta tighten (exercises the
            // all-rows rebuild path without changing any bound).
            _ => {
                if options.structural && rng.random_bool(0.5) {
                    EditOp::RemoveComponent {
                        id: ComponentId::new(rng.random_range(0..n)),
                    }
                } else {
                    EditOp::TightenCycleTime { delta: 0 }
                }
            }
        };
        ops.push(op);
    }
    ops
}

/// [`eco_edit_stream`] serialized as a JSONL edit script (one op per line,
/// see [`qbp_eco::script`]).
pub fn eco_script(problem: &Problem, options: &EcoStreamOptions) -> String {
    let mut s = String::new();
    for op in eco_edit_stream(problem, options) {
        s.push_str(&qbp_eco::script::format_edit(&op));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{build_instance, scaled_spec, SuiteOptions, PAPER_SUITE};
    use qbp_eco::NetlistDelta;

    #[test]
    fn stream_is_deterministic_and_validates() {
        let spec = scaled_spec(&PAPER_SUITE[0], 0.2);
        let problem = build_instance(&spec, &SuiteOptions::default()).unwrap();
        let options = EcoStreamOptions {
            edits: 200,
            ..EcoStreamOptions::default()
        };
        let a = eco_edit_stream(&problem, &options);
        let b = eco_edit_stream(&problem, &options);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 200);
        // Every edit validates as a one-op delta against the base problem
        // (overwrite semantics: stale-snapshot edits are still valid).
        for op in &a {
            let mut d = NetlistDelta::new();
            d.push(op.clone());
            d.validate(&problem).unwrap();
        }
        // Feasibility preservation: a bound edit either loosens/removes an
        // existing constraint or sits at the delay ceiling — below-ceiling
        // bounds on fresh pairs could compound into an infeasible problem.
        let max_delay = (0..problem.m())
            .flat_map(|i| (0..problem.m()).map(move |j| (i, j)))
            .map(|(i, j)| problem.topology().delay()[(i, j)])
            .max()
            .unwrap()
            .max(1);
        for op in &a {
            if let EditOp::SetTimingBound {
                a: ca,
                b: cb,
                bound: Some(bound),
            } = op
            {
                let existing = problem.timing().get(*ca, *cb);
                match existing {
                    Some(limit) => assert!(*bound >= limit || *bound == max_delay),
                    None => assert_eq!(*bound, max_delay),
                }
            }
        }
        // The mix covers the taxonomy.
        assert!(a.iter().any(|o| matches!(o, EditOp::ReweightPair { .. })));
        assert!(a.iter().any(|o| matches!(o, EditOp::AddPair { .. })));
        assert!(a.iter().any(|o| matches!(o, EditOp::RemovePair { .. })));
        assert!(a
            .iter()
            .any(|o| matches!(o, EditOp::SetTimingBound { .. })));
    }

    #[test]
    fn script_round_trips() {
        let spec = scaled_spec(&PAPER_SUITE[1], 0.2);
        let problem = build_instance(&spec, &SuiteOptions::default()).unwrap();
        let options = EcoStreamOptions {
            edits: 50,
            ..EcoStreamOptions::default()
        };
        let text = eco_script(&problem, &options);
        let parsed = qbp_eco::script::parse_script(&text).unwrap();
        assert_eq!(parsed.len(), 50);
        let stream = eco_edit_stream(&problem, &options);
        for ((_, op), want) in parsed.iter().zip(&stream) {
            assert_eq!(&op.resolve(&problem).unwrap(), want);
        }
    }
}
