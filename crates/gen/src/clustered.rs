//! Streamed million-component clustered circuit generation.
//!
//! [`SyntheticCircuit`](crate::SyntheticCircuit) sorts a full neighbor pool
//! per component (`O(N² log N)`), which is fine at the paper's ~550
//! components and hopeless at 10⁶. This generator gets the same *clustered*
//! connectivity structure directly from construction: components are grouped
//! into fixed-size clusters (ring + random chords inside each cluster,
//! sparse links between adjacent clusters), which is both `O(N)` to generate
//! and a realistic stand-in for hierarchical netlists.
//!
//! Two consumption paths share one deterministic generation skeleton (each
//! phase re-seeds its own RNG, so they emit identical circuits):
//!
//! * [`ClusteredCircuit::write_qbp`] streams `.qbp` lines straight to any
//!   writer — the edge set is never held in memory, so a million-component
//!   file costs `O(M + cluster)` working memory to emit;
//! * [`ClusteredCircuit::build_problem`] assembles the [`Problem`] in memory
//!   together with the planted witness assignment (cluster `k` → partition
//!   `k mod M`), which is feasible by construction: every timing constraint
//!   is intra-cluster (co-located under the witness, delay 0) and the
//!   uniform capacity is the maximum witness partition load plus slack.

use qbp_core::{
    Assignment, Circuit, ComponentId, Cost, Delay, PartitionTopology, Problem, ProblemBuilder,
    Size, TimingConstraints,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Write;

/// Configurable streamed generator for clustered circuits. See the module
/// docs for the structure it emits.
///
/// ```
/// use qbp_gen::ClusteredCircuit;
///
/// let (problem, witness) = ClusteredCircuit::new(200).seed(7).build_problem().unwrap();
/// assert_eq!(problem.n(), 200);
/// assert!(qbp_core::check_feasibility(&problem, &witness).is_feasible());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredCircuit {
    components: usize,
    cluster: usize,
    chords_per_cluster: usize,
    inter_links: usize,
    timing_per_cluster: usize,
    grid: (usize, usize),
    capacity_slack_pct: u64,
    seed: u64,
}

impl ClusteredCircuit {
    /// A generator for `components` components on the paper's 4×4 grid,
    /// with 16-component clusters, two random intra-cluster chords and one
    /// timing constraint per cluster, and two links between adjacent
    /// clusters.
    pub fn new(components: usize) -> ClusteredCircuit {
        ClusteredCircuit {
            components,
            cluster: 16,
            chords_per_cluster: 2,
            inter_links: 2,
            timing_per_cluster: 1,
            grid: (4, 4),
            capacity_slack_pct: 25,
            seed: 0xC1_057E5,
        }
    }

    /// RNG seed — generation is fully deterministic per seed.
    pub fn seed(mut self, seed: u64) -> ClusteredCircuit {
        self.seed = seed;
        self
    }

    /// Components per cluster (≥ 2). Default 16.
    pub fn cluster_size(mut self, cluster: usize) -> ClusteredCircuit {
        assert!(cluster >= 2, "clusters need at least 2 components");
        self.cluster = cluster;
        self
    }

    /// Timing constraints planted per cluster (all intra-cluster, so the
    /// witness stays feasible). Default 1.
    pub fn timing_per_cluster(mut self, t: usize) -> ClusteredCircuit {
        self.timing_per_cluster = t;
        self
    }

    /// Number of partitions (`rows × cols` of the Manhattan grid).
    pub fn partitions(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    fn cluster_count(&self) -> usize {
        self.components.div_ceil(self.cluster)
    }

    fn cluster_bounds(&self, k: usize) -> (usize, usize) {
        let start = k * self.cluster;
        (start, ((k + 1) * self.cluster).min(self.components))
    }

    /// Phase A: log-uniform component sizes (2..=200, the paper's "about 2
    /// orders of magnitude"), plus the witness partition loads they imply.
    fn sizes_pass(&self, mut f: impl FnMut(usize, Size)) -> Vec<Size> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.partitions();
        let mut loads = vec![0u64; m];
        let (lo, hi) = (2f64.ln(), 200f64.ln());
        for j in 0..self.components {
            let size = ((lo + (hi - lo) * rng.random::<f64>()).exp().round() as Size).max(1);
            loads[(j / self.cluster) % m] += size;
            f(j, size);
        }
        loads
    }

    /// Phase B: intra-cluster ring + chords, then sparse inter-cluster
    /// links. Symmetric wires.
    fn edges_pass(&self, mut f: impl FnMut(usize, usize, Cost)) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0ED_6E5);
        let clusters = self.cluster_count();
        for k in 0..clusters {
            let (start, end) = self.cluster_bounds(k);
            let len = end - start;
            if len < 2 {
                continue;
            }
            for j in start..end - 1 {
                f(j, j + 1, rng.random_range(1..=3));
            }
            if len >= 3 {
                f(end - 1, start, rng.random_range(1..=3));
            }
            for _ in 0..self.chords_per_cluster {
                let a = start + rng.random_range(0..len);
                let b = start + rng.random_range(0..len);
                if a != b {
                    f(a, b, rng.random_range(1..=2));
                }
            }
        }
        for k in 0..clusters.saturating_sub(1) {
            let (a0, a1) = self.cluster_bounds(k);
            let (b0, b1) = self.cluster_bounds(k + 1);
            for _ in 0..self.inter_links {
                let a = a0 + rng.random_range(0..a1 - a0);
                let b = b0 + rng.random_range(0..b1 - b0);
                f(a, b, 1);
            }
            // One longer-range net every fourth cluster, so the instance is
            // not a pure chain of clusters.
            if k % 4 == 0 && k + 2 < clusters {
                let target = k + 2 + rng.random_range(0..clusters - k - 2);
                let (c0, c1) = self.cluster_bounds(target);
                let a = a0 + rng.random_range(0..a1 - a0);
                let b = c0 + rng.random_range(0..c1 - c0);
                f(a, b, 1);
            }
        }
    }

    /// Phase C: intra-cluster timing constraints (limit 0..=2 — co-located
    /// endpoints under the witness see delay 0, so any non-negative limit is
    /// satisfied).
    fn timing_pass(&self, mut f: impl FnMut(usize, usize, Delay)) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0071_3176);
        for k in 0..self.cluster_count() {
            let (start, end) = self.cluster_bounds(k);
            let len = end - start;
            if len < 2 {
                continue;
            }
            for _ in 0..self.timing_per_cluster {
                let a = start + rng.random_range(0..len);
                let b = start + rng.random_range(0..len);
                if a != b {
                    f(a, b, rng.random_range(0..=2));
                }
            }
        }
    }

    /// Uniform partition capacity: the maximum witness partition load plus
    /// the configured slack, so the planted witness always fits.
    fn capacity_from(&self, loads: &[Size]) -> Size {
        let max = loads.iter().copied().max().unwrap_or(1).max(1);
        max + max * self.capacity_slack_pct / 100
    }

    /// Streams the instance as `.qbp` text. Working memory is `O(M)` — the
    /// edge and timing phases go straight from the RNG to `w`, so a
    /// million-component file never exists in memory.
    ///
    /// # Errors
    ///
    /// Propagates write failures from `w`.
    pub fn write_qbp<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "# clustered instance: {} components, seed {}", self.components, self.seed)?;
        writeln!(w, "qbp 1")?;
        let mut err = None;
        let loads = self.sizes_pass(|j, size| {
            if err.is_none() {
                err = writeln!(w, "component blk{j} {size}").err();
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        writeln!(w, "grid {} {} {}", self.grid.0, self.grid.1, self.capacity_from(&loads))?;
        let mut err = None;
        self.edges_pass(|a, b, wires| {
            if err.is_none() {
                err = writeln!(w, "wires {a} {b} {wires}").err();
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        let mut err = None;
        self.timing_pass(|a, b, limit| {
            if err.is_none() {
                err = writeln!(w, "timing {a} {b} {limit}").err();
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Assembles the instance in memory, together with the planted witness
    /// (cluster `k` → partition `k mod M`), which is feasible by
    /// construction. Bit-identical to parsing [`ClusteredCircuit::write_qbp`]
    /// output (tested).
    ///
    /// # Errors
    ///
    /// Propagates [`qbp_core::Error`] from problem assembly (not expected
    /// for any valid configuration).
    pub fn build_problem(&self) -> Result<(Problem, Assignment), qbp_core::Error> {
        let mut circuit = Circuit::with_capacity(self.components);
        let loads = self.sizes_pass(|j, size| {
            circuit.add_component(format!("blk{j}"), size);
        });
        let mut err = None;
        self.edges_pass(|a, b, w| {
            if err.is_none() {
                err = circuit
                    .add_wires(ComponentId::new(a), ComponentId::new(b), w)
                    .err();
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        let mut timing = TimingConstraints::new(self.components);
        let mut err = None;
        self.timing_pass(|a, b, limit| {
            if err.is_none() {
                err = timing
                    .add(ComponentId::new(a), ComponentId::new(b), limit)
                    .err();
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        let topology = PartitionTopology::grid(self.grid.0, self.grid.1, self.capacity_from(&loads))?;
        let m = self.partitions();
        let problem = ProblemBuilder::new(circuit, topology).timing(timing).build()?;
        let parts: Vec<u32> = (0..self.components)
            .map(|j| ((j / self.cluster) % m) as u32)
            .collect();
        let witness = Assignment::from_parts(parts)?;
        Ok((problem, witness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbp_core::io::read_problem;

    #[test]
    fn witness_is_feasible_by_construction() {
        for n in [5, 40, 333, 1000] {
            let (problem, witness) = ClusteredCircuit::new(n).seed(3).build_problem().unwrap();
            assert_eq!(problem.n(), n);
            assert!(
                qbp_core::check_feasibility(&problem, &witness).is_feasible(),
                "witness infeasible at n = {n}"
            );
        }
    }

    #[test]
    fn streamed_qbp_round_trips_to_the_built_problem() {
        let gen = ClusteredCircuit::new(150).seed(11);
        let mut text = Vec::new();
        gen.write_qbp(&mut text).unwrap();
        let parsed = read_problem(std::io::Cursor::new(&text)).unwrap();
        let (built, _) = gen.build_problem().unwrap();
        assert_eq!(parsed, built);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClusteredCircuit::new(100).seed(5).build_problem().unwrap();
        let b = ClusteredCircuit::new(100).seed(5).build_problem().unwrap();
        let c = ClusteredCircuit::new(100).seed(6).build_problem().unwrap();
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn generation_is_linear_ish_in_components() {
        // The point of this generator: 50k components must be instant (the
        // neighbor-pool generator would take minutes here).
        let start = std::time::Instant::now();
        let (problem, _) = ClusteredCircuit::new(50_000).build_problem().unwrap();
        assert_eq!(problem.n(), 50_000);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "clustered generation too slow: {:?}",
            start.elapsed()
        );
    }
}
