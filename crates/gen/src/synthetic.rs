//! Synthetic "industrial-like" circuit generation.
//!
//! The paper evaluates on seven proprietary industrial circuits, described
//! only by their statistics (Table I): component count, wire count, timing
//! constraint count, with component sizes "ranging about 2 orders of
//! magnitude in the same circuit". This generator reproduces those
//! statistics: log-uniform sizes, and spatially clustered connectivity
//! (components get virtual positions; wires prefer near neighbors), which
//! gives the locality structure real netlists have and which partitioners
//! exploit.

use qbp_core::{Circuit, ComponentId, Cost, Size};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configurable generator for synthetic circuits.
///
/// ```
/// use qbp_gen::SyntheticCircuit;
///
/// let circuit = SyntheticCircuit::new(50, 300).seed(7).build();
/// assert_eq!(circuit.len(), 50);
/// // Total symmetric wire count matches the request.
/// assert_eq!(circuit.total_wire_weight(), 2 * 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticCircuit {
    components: usize,
    wires: Cost,
    size_min: Size,
    size_max: Size,
    locality: f64,
    neighbor_pool: usize,
    max_bundle: Cost,
    seed: u64,
}

impl SyntheticCircuit {
    /// A generator for `components` components connected by `wires` wires
    /// (counting each symmetric wire once; the `A` matrix sums to twice
    /// this).
    pub fn new(components: usize, wires: Cost) -> Self {
        SyntheticCircuit {
            components,
            wires,
            size_min: 2,
            size_max: 200,
            locality: 0.8,
            neighbor_pool: 12,
            max_bundle: 4,
            seed: 0x0510_CEA7,
        }
    }

    /// Sets the size range; sizes are drawn log-uniformly so the ratio
    /// `size_max / size_min` spans the paper's "about 2 orders of magnitude"
    /// with the defaults.
    pub fn size_range(mut self, min: Size, max: Size) -> Self {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        self.size_min = min;
        self.size_max = max;
        self
    }

    /// Probability that a wire's far endpoint is drawn from the near
    /// endpoint's spatial neighborhood rather than uniformly (0 = random
    /// graph, 1 = fully local). Default 0.8.
    pub fn locality(mut self, locality: f64) -> Self {
        assert!((0.0..=1.0).contains(&locality), "locality in [0, 1]");
        self.locality = locality;
        self
    }

    /// Maximum wires added per sampled pair (bundles model buses). Default 4.
    pub fn max_bundle(mut self, max_bundle: Cost) -> Self {
        assert!(max_bundle >= 1, "bundle size must be positive");
        self.max_bundle = max_bundle;
        self
    }

    /// RNG seed — generation is fully deterministic per seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the generator was configured with zero components but a
    /// positive wire count (wires need two distinct endpoints, so at least
    /// two components are required).
    pub fn build(&self) -> Circuit {
        self.build_with_positions().0
    }

    /// Generates the circuit together with the virtual unit-square positions
    /// used for clustering — useful for planting spatially coherent witness
    /// assignments (see `qbp-gen`'s suite builder).
    ///
    /// # Panics
    ///
    /// Same conditions as [`SyntheticCircuit::build`].
    pub fn build_with_positions(&self) -> (Circuit, Vec<(f64, f64)>) {
        assert!(
            self.wires == 0 || self.components >= 2,
            "wires require at least two components"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.components;
        let mut circuit = Circuit::with_capacity(n);
        // Log-uniform sizes.
        let (lo, hi) = ((self.size_min as f64).ln(), (self.size_max as f64).ln());
        for j in 0..n {
            let size = (lo + (hi - lo) * rng.random::<f64>()).exp().round() as Size;
            circuit.add_component(format!("blk{j}"), size.max(1));
        }
        // Virtual positions in the unit square; neighbor pools by distance.
        let pos: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        if n < 2 || self.wires == 0 {
            return (circuit, pos);
        }
        let pool = self.neighbor_pool.min(n - 1).max(1);
        let neighbors: Vec<Vec<u32>> = (0..n)
            .map(|j| {
                let mut order: Vec<u32> = (0..n as u32).filter(|&k| k as usize != j).collect();
                order.sort_by(|&a, &b| {
                    let da = dist2(pos[j], pos[a as usize]);
                    let db = dist2(pos[j], pos[b as usize]);
                    da.total_cmp(&db)
                });
                order.truncate(pool);
                order
            })
            .collect();
        let mut remaining = self.wires;
        while remaining > 0 {
            let j1 = rng.random_range(0..n);
            let j2 = if rng.random::<f64>() < self.locality {
                let pool = &neighbors[j1];
                pool[rng.random_range(0..pool.len())] as usize
            } else {
                let mut k = rng.random_range(0..n);
                while k == j1 {
                    k = rng.random_range(0..n);
                }
                k
            };
            if j1 == j2 {
                continue;
            }
            let w = rng.random_range(1..=self.max_bundle).min(remaining);
            circuit
                .add_wires(ComponentId::new(j1), ComponentId::new(j2), w)
                .expect("generated endpoints are valid and distinct");
            remaining -= w;
        }
        (circuit, pos)
    }
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_requested_statistics() {
        let c = SyntheticCircuit::new(100, 500).seed(3).build();
        assert_eq!(c.len(), 100);
        assert_eq!(c.total_wire_weight(), 1000); // symmetric double count
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticCircuit::new(40, 200).seed(5).build();
        let b = SyntheticCircuit::new(40, 200).seed(5).build();
        let c = SyntheticCircuit::new(40, 200).seed(6).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sizes_span_two_orders_of_magnitude() {
        let c = SyntheticCircuit::new(300, 100).seed(1).build();
        let sizes: Vec<u64> = c.iter().map(|(_, comp)| comp.size()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 1);
        assert!(
            max as f64 / min as f64 >= 30.0,
            "expected wide size spread, got {min}..{max}"
        );
    }

    #[test]
    fn locality_increases_clustering() {
        // With high locality, the average number of *distinct* partners per
        // component is lower (wires concentrate in neighbor pools).
        let local = SyntheticCircuit::new(80, 600).locality(0.95).seed(9).build();
        let global = SyntheticCircuit::new(80, 600).locality(0.0).seed(9).build();
        assert!(local.directed_edge_count() < global.directed_edge_count());
    }

    #[test]
    fn no_self_loops_and_symmetric() {
        let c = SyntheticCircuit::new(30, 150).seed(11).build();
        for (a, b, w) in c.edges() {
            assert_ne!(a, b);
            assert_eq!(c.connection(b, a), c.connection(a, b), "symmetric A");
            assert!(w > 0);
        }
    }

    #[test]
    fn custom_size_range_respected() {
        let c = SyntheticCircuit::new(50, 0).size_range(10, 20).seed(2).build();
        for (_, comp) in c.iter() {
            assert!((10..=20).contains(&comp.size()), "size {}", comp.size());
        }
    }

    #[test]
    fn zero_wires_allowed() {
        let c = SyntheticCircuit::new(5, 0).build();
        assert_eq!(c.directed_edge_count(), 0);
    }
}
