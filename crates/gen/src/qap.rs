//! Random Quadratic Assignment Problem instances (§2.2.3): `M = N`
//! facilities with unit sizes on a grid of unit-capacity locations.

use qbp_core::{Circuit, ComponentId, Cost, Error, PartitionTopology, Problem, ProblemBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`random_qap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QapSpec {
    /// Number of facilities = number of locations.
    pub n: usize,
    /// Probability that an unordered facility pair has flow.
    pub density: f64,
    /// Flows are drawn uniformly from `1..=max_flow`.
    pub max_flow: Cost,
    /// RNG seed.
    pub seed: u64,
}

impl QapSpec {
    /// A dense-ish random QAP of size `n`.
    pub fn new(n: usize) -> Self {
        QapSpec {
            n,
            density: 0.5,
            max_flow: 9,
            seed: 0x9A9,
        }
    }
}

/// Generates a QAP instance: locations are the first `n` cells of the
/// smallest square grid that fits them (Manhattan distances), facilities
/// have unit size, locations unit capacity, and symmetric random flows.
///
/// The result satisfies [`QapSolver::validate`](../qbp_solver/struct.QapSolver.html)
/// and can also be fed to the general GAP-based solver — the QAP-comparison
/// bench does exactly that.
///
/// # Errors
///
/// Returns an error when `n == 0`.
pub fn random_qap(spec: &QapSpec) -> Result<Problem, Error> {
    if spec.n == 0 {
        return Err(Error::EmptyCircuit);
    }
    let n = spec.n;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut circuit = Circuit::with_capacity(n);
    for j in 0..n {
        circuit.add_component(format!("fac{j}"), 1);
    }
    for a in 0..n {
        for b in a + 1..n {
            if rng.random::<f64>() < spec.density {
                let flow = rng.random_range(1..=spec.max_flow);
                circuit.add_wires(ComponentId::new(a), ComponentId::new(b), flow)?;
            }
        }
    }
    // Smallest square grid holding n cells; distances between the first n.
    let side = (n as f64).sqrt().ceil() as usize;
    let full = PartitionTopology::grid(side, side, 1)?;
    let dist = |a: usize, b: usize| full.wire_cost()[(a, b)];
    let b = qbp_core::DenseMatrix::from_fn(n, n, dist);
    let topology = PartitionTopology::new(vec![1; n], b.clone(), b)?;
    ProblemBuilder::new(circuit, topology).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_qap() {
        let p = random_qap(&QapSpec::new(9)).unwrap();
        assert_eq!(p.m(), 9);
        assert_eq!(p.n(), 9);
        assert!(p.topology().capacities().iter().all(|&c| c == 1));
        for j in 0..9 {
            assert_eq!(p.circuit().size(ComponentId::new(j)), 1);
        }
    }

    #[test]
    fn flows_are_symmetric() {
        let p = random_qap(&QapSpec::new(8)).unwrap();
        for (a, b, w) in p.circuit().edges() {
            assert_eq!(p.circuit().connection(b, a), w);
        }
    }

    #[test]
    fn density_zero_and_one() {
        let empty = random_qap(&QapSpec {
            density: 0.0,
            ..QapSpec::new(6)
        })
        .unwrap();
        assert_eq!(empty.circuit().directed_edge_count(), 0);
        let full = random_qap(&QapSpec {
            density: 1.0,
            ..QapSpec::new(6)
        })
        .unwrap();
        assert_eq!(full.circuit().directed_edge_count(), 6 * 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_qap(&QapSpec::new(7)).unwrap();
        let b = random_qap(&QapSpec::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_empty() {
        assert!(random_qap(&QapSpec::new(0)).is_err());
    }

    #[test]
    fn non_square_counts_still_metric() {
        // n = 5 on a 3×3 grid's first five cells: distances must be
        // symmetric with zero diagonal.
        let p = random_qap(&QapSpec::new(5)).unwrap();
        let b = p.topology().wire_cost();
        for i in 0..5 {
            assert_eq!(b[(i, i)], 0);
            for j in 0..5 {
                assert_eq!(b[(i, j)], b[(j, i)]);
            }
        }
    }
}
