//! Instance generators for the QBP partitioning suite.
//!
//! The paper's evaluation uses seven proprietary industrial circuits; only
//! their statistics are published (Table I). This crate substitutes
//! statistically matched synthetic instances (see `DESIGN.md` §2 for the
//! substitution argument):
//!
//! * [`SyntheticCircuit`] — clustered circuits with log-uniform sizes;
//! * [`ConstraintSampler`] — sparse critical timing constraints with
//!   controlled tightness;
//! * [`PAPER_SUITE`] / [`paper_suite`] — the seven Table-I instances on the
//!   paper's 16-partition 4×4 Manhattan grid;
//! * [`random_qap`] — Quadratic Assignment instances for the §2.2.3 special
//!   case.
//!
//! Everything is deterministic per seed.
//!
//! # Example
//!
//! ```
//! use qbp_gen::{build_instance, scaled_spec, SuiteOptions, PAPER_SUITE};
//!
//! # fn main() -> Result<(), qbp_core::Error> {
//! // A 10%-scale cktb for quick experiments.
//! let spec = scaled_spec(&PAPER_SUITE[1], 0.1);
//! let problem = build_instance(&spec, &SuiteOptions::default())?;
//! assert_eq!(problem.m(), 16);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clustered;
mod constraints;
mod eco;
mod hierarchy;
mod qap;
mod suite;
mod synthetic;

pub use clustered::ClusteredCircuit;
pub use constraints::ConstraintSampler;
pub use eco::{eco_edit_stream, eco_script, EcoStreamOptions};
pub use hierarchy::HierarchicalCircuit;
pub use qap::{random_qap, QapSpec};
pub use suite::{
    build_instance, build_instance_with_witness, paper_suite, planted_witness, scaled_spec,
    CircuitSpec, SuiteOptions, PAPER_SUITE,
};
pub use synthetic::SyntheticCircuit;
