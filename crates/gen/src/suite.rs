//! The seven-circuit evaluation suite matching the paper's Table I
//! statistics, on the paper's 16-partition setup.

use crate::{ConstraintSampler, SyntheticCircuit};
use qbp_core::{Cost, Error, PartitionTopology, Problem, ProblemBuilder, Size};

/// Published statistics of one evaluation circuit (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// "# of components".
    pub components: usize,
    /// "# of wires".
    pub wires: Cost,
    /// "# of Timing Constraints" (critical constraints only).
    pub timing_constraints: usize,
}

/// Table I, verbatim.
pub const PAPER_SUITE: [CircuitSpec; 7] = [
    CircuitSpec { name: "ckta", components: 339, wires: 8200, timing_constraints: 3464 },
    CircuitSpec { name: "cktb", components: 357, wires: 3017, timing_constraints: 1325 },
    CircuitSpec { name: "cktc", components: 545, wires: 12141, timing_constraints: 11545 },
    CircuitSpec { name: "cktd", components: 521, wires: 6309, timing_constraints: 6009 },
    CircuitSpec { name: "ckte", components: 380, wires: 3831, timing_constraints: 3760 },
    CircuitSpec { name: "cktf", components: 607, wires: 4809, timing_constraints: 4683 },
    CircuitSpec { name: "cktg", components: 472, wires: 3376, timing_constraints: 3376 },
];

/// Suite construction knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteOptions {
    /// Capacity slack: total capacity = `slack × total size`, split evenly
    /// over the 16 partitions. The paper stresses "very tight ... Capacity
    /// Constraints"; 1.08 leaves ~8 % headroom.
    pub capacity_slack: f64,
    /// Tightness of the sampled *critical* timing limits (see
    /// [`ConstraintSampler::tightness`]); with the default tight fraction,
    /// ~40 % of constraints are confined to limits 1–2 on the 4×4 grid and
    /// the rest draw from the full delay range — tight enough that
    /// unconstrained optimization violates them, loose enough that the
    /// feasible region is navigable (the regime the paper's Table III
    /// improvements imply).
    pub timing_tightness: f64,
    /// Base RNG seed; each circuit derives its own stream from this and its
    /// index.
    pub seed: u64,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            capacity_slack: 1.08,
            timing_tightness: 0.35,
            seed: 1993, // the paper's year; any seed works
        }
    }
}

/// Builds one suite instance on the paper's partition setup: 16 partitions
/// in a 4×4 grid, `B = D =` Manhattan distance (total Manhattan wire length
/// objective), uniform tight capacities, and the spec's number of sampled
/// timing constraints.
///
/// # Errors
///
/// Propagates problem-validation errors (they indicate a bug in the
/// generator configuration rather than user error).
pub fn build_instance(spec: &CircuitSpec, options: &SuiteOptions) -> Result<Problem, Error> {
    build_instance_with_witness(spec, options).map(|(p, _)| p)
}

/// Like [`build_instance`], additionally returning the planted witness
/// assignment — a feasible solution that exists by construction. Harnesses
/// use it as a last-resort initial solution when the feasibility searchers
/// come up empty (the analogue of the paper's designer-provided manual
/// assignment).
///
/// # Errors
///
/// Propagates problem-validation errors.
pub fn build_instance_with_witness(
    spec: &CircuitSpec,
    options: &SuiteOptions,
) -> Result<(Problem, qbp_core::Assignment), Error> {
    let index = PAPER_SUITE
        .iter()
        .position(|s| s.name == spec.name)
        .unwrap_or(7) as u64;
    let seed = options.seed.wrapping_mul(1000).wrapping_add(index);
    let (circuit, positions) = SyntheticCircuit::new(spec.components, spec.wires)
        .seed(seed)
        .build_with_positions();
    let total_size: Size = circuit.total_size();
    let m = 16;
    let max_size = circuit.iter().map(|(_, c)| c.size()).max().unwrap_or(1);
    // Tight uniform capacities, but never below the largest single component
    // (matters only for heavily scaled-down instances).
    let capacity =
        (((total_size as f64) * options.capacity_slack / m as f64).ceil() as Size).max(max_size);
    let topology = PartitionTopology::grid(4, 4, capacity)?;
    // Plant a spatially coherent witness so the timing constraints are tight
    // yet jointly satisfiable (the paper's industrial circuits obviously
    // admitted feasible solutions; this reproduces that property).
    let witness = planted_witness(&circuit, &topology, &positions, 4, 4);
    let timing = ConstraintSampler::new(spec.timing_constraints)
        .tightness(options.timing_tightness)
        .seed(seed.wrapping_add(17))
        .sample_with_witness(&circuit, &topology, &witness);
    let problem = ProblemBuilder::new(circuit, topology).timing(timing).build()?;
    debug_assert!(qbp_core::check_feasibility(&problem, &witness).is_feasible());
    Ok((problem, witness))
}

/// Maps virtual unit-square positions onto the grid cells and repairs
/// capacity overflow by relocating the smallest members to the nearest cell
/// with room — producing a capacity-feasible, spatially clustered
/// assignment.
///
/// # Panics
///
/// Panics when the total capacity cannot hold the circuit even after
/// repair (the suite's capacity slack rules this out).
pub fn planted_witness(
    circuit: &qbp_core::Circuit,
    topology: &PartitionTopology,
    positions: &[(f64, f64)],
    rows: usize,
    cols: usize,
) -> qbp_core::Assignment {
    use qbp_core::ComponentId;
    let n = circuit.len();
    assert_eq!(positions.len(), n, "one position per component");
    let m = rows * cols;
    assert_eq!(topology.len(), m, "grid shape must match topology");
    let cell_of = |p: (f64, f64)| -> usize {
        let r = ((p.0 * rows as f64) as usize).min(rows - 1);
        let c = ((p.1 * cols as f64) as usize).min(cols - 1);
        r * cols + c
    };
    // First-fit-decreasing with spatial preference: big components first,
    // each into the cell nearest its virtual position that has room
    // (tie-break: most remaining space). Big-first packing makes fitting the
    // tail of small components easy even at 15 % slack.
    let dist = topology.wire_cost();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(circuit.size(ComponentId::new(j))));
    let mut used: Vec<Size> = vec![0; m];
    let mut parts: Vec<u32> = vec![0; n];
    for j in order {
        let size = circuit.size(ComponentId::new(j));
        let home = cell_of(positions[j]);
        let target = (0..m)
            .filter(|&t| used[t] + size <= topology.capacity(qbp_core::PartitionId::new(t)))
            .min_by_key(|&t| (dist[(home, t)], used[t]))
            .expect("capacity slack guarantees room for FFD packing");
        parts[j] = target as u32;
        used[target] += size;
    }
    qbp_core::Assignment::from_parts(parts).expect("non-empty circuit")
}

/// Builds the whole Table-I suite (with witnesses).
///
/// # Errors
///
/// Propagates the first construction error, if any.
pub fn paper_suite(
    options: &SuiteOptions,
) -> Result<Vec<(CircuitSpec, Problem, qbp_core::Assignment)>, Error> {
    PAPER_SUITE
        .iter()
        .map(|spec| build_instance_with_witness(spec, options).map(|(p, w)| (*spec, p, w)))
        .collect()
}

/// A scaled-down copy of a spec (same wire/constraint *density*), for tests
/// and debug-mode sanity runs where the full circuits are too slow.
pub fn scaled_spec(spec: &CircuitSpec, factor: f64) -> CircuitSpec {
    let components = ((spec.components as f64 * factor).round() as usize).max(4);
    let ratio = components as f64 / spec.components as f64;
    CircuitSpec {
        name: spec.name,
        components,
        wires: ((spec.wires as f64 * ratio).round() as Cost).max(1),
        timing_constraints: ((spec.timing_constraints as f64 * ratio).round() as usize).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_statistics_reproduced() {
        // Build the smallest circuit fully and check its printed stats.
        let spec = PAPER_SUITE[1]; // cktb: 357 / 3017 / 1325
        let problem = build_instance(&spec, &SuiteOptions::default()).unwrap();
        assert_eq!(problem.n(), 357);
        assert_eq!(problem.circuit().total_wire_weight(), 2 * 3017);
        assert_eq!(problem.timing().len(), 1325);
        assert_eq!(problem.m(), 16);
    }

    #[test]
    fn capacities_are_tight_but_sufficient() {
        let spec = scaled_spec(&PAPER_SUITE[0], 0.2);
        let problem = build_instance(&spec, &SuiteOptions::default()).unwrap();
        let total_cap = problem.topology().total_capacity();
        let total_size = problem.circuit().total_size();
        assert!(total_cap >= total_size);
        // Tight up to rounding and the largest-component floor.
        let max_size = problem.circuit().iter().map(|(_, c)| c.size()).max().unwrap();
        let bound = ((total_size as f64) * 1.15 / 16.0).ceil().max(max_size as f64) * 16.0;
        assert!(total_cap as f64 <= bound);
    }

    #[test]
    fn deterministic_per_options() {
        let spec = scaled_spec(&PAPER_SUITE[2], 0.05);
        let a = build_instance(&spec, &SuiteOptions::default()).unwrap();
        let b = build_instance(&spec, &SuiteOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_spec_preserves_density() {
        let s = scaled_spec(&PAPER_SUITE[0], 0.1);
        assert_eq!(s.components, 34);
        let wire_density = s.wires as f64 / s.components as f64;
        let orig_density = PAPER_SUITE[0].wires as f64 / PAPER_SUITE[0].components as f64;
        assert!((wire_density - orig_density).abs() / orig_density < 0.05);
    }

    #[test]
    fn suite_covers_all_seven() {
        assert_eq!(PAPER_SUITE.len(), 7);
        let names: Vec<_> = PAPER_SUITE.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["ckta", "cktb", "cktc", "cktd", "ckte", "cktf", "cktg"]);
    }
}
