//! Hierarchical circuit generation — a second synthetic family with the
//! recursive module structure (and Rent-style wire-length statistics) that
//! real RTL hierarchies exhibit.
//!
//! Components are the leaves of a balanced module tree; wires are drawn
//! between pairs whose lowest common ancestor sits at a tree level chosen
//! from a geometric distribution: most wires stay inside leaf modules, a
//! controlled fraction crosses higher levels. This family stresses
//! partitioners differently from [`SyntheticCircuit`](crate::SyntheticCircuit)'s
//! spatial clustering: the "natural clusters" are exactly the modules, so a
//! good partitioner's cut should track module boundaries.

use qbp_core::{Circuit, ComponentId, Cost, Size};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configurable hierarchical generator.
///
/// ```
/// use qbp_gen::HierarchicalCircuit;
///
/// let circuit = HierarchicalCircuit::new(64, 300).seed(3).build();
/// assert_eq!(circuit.len(), 64);
/// assert_eq!(circuit.total_wire_weight(), 2 * 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalCircuit {
    components: usize,
    wires: Cost,
    branching: usize,
    locality: f64,
    size_min: Size,
    size_max: Size,
    seed: u64,
}

impl HierarchicalCircuit {
    /// A generator for `components` leaves and `wires` symmetric wires.
    pub fn new(components: usize, wires: Cost) -> Self {
        HierarchicalCircuit {
            components,
            wires,
            branching: 4,
            locality: 0.65,
            size_min: 2,
            size_max: 200,
            seed: 0x4149,
        }
    }

    /// Module-tree branching factor (default 4).
    pub fn branching(mut self, branching: usize) -> Self {
        assert!(branching >= 2, "branching must be at least 2");
        self.branching = branching;
        self
    }

    /// Probability that a wire stays within the current module at each tree
    /// level (default 0.65): higher = more local wiring, fewer global nets.
    pub fn locality(mut self, locality: f64) -> Self {
        assert!((0.0..1.0).contains(&locality), "locality in [0, 1)");
        self.locality = locality;
        self
    }

    /// Component size range (log-uniform, like the paper's circuits).
    pub fn size_range(mut self, min: Size, max: Size) -> Self {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        self.size_min = min;
        self.size_max = max;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the circuit.
    ///
    /// # Panics
    ///
    /// Panics when wires are requested with fewer than two components.
    pub fn build(&self) -> Circuit {
        assert!(
            self.wires == 0 || self.components >= 2,
            "wires require at least two components"
        );
        let n = self.components;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut circuit = Circuit::with_capacity(n);
        let (lo, hi) = ((self.size_min as f64).ln(), (self.size_max as f64).ln());
        for j in 0..n {
            let size = (lo + (hi - lo) * rng.random::<f64>()).exp().round() as Size;
            circuit.add_component(format!("leaf{j}"), size.max(1));
        }
        if n < 2 || self.wires == 0 {
            return circuit;
        }
        // Leaves in index order are the tree's leaf order; the module at
        // level L containing leaf j spans `branching^L` consecutive leaves.
        let mut remaining = self.wires;
        while remaining > 0 {
            let a = rng.random_range(0..n);
            // Walk up the tree geometrically: stay local with probability
            // `locality` per level.
            let mut span = self.branching;
            while span < n && rng.random::<f64>() > self.locality {
                span *= self.branching;
            }
            let span = span.min(n);
            let base = (a / span) * span;
            let width = span.min(n - base);
            if width < 2 {
                continue;
            }
            let mut b = base + rng.random_range(0..width);
            let mut guard = 0;
            while b == a && guard < 8 {
                b = base + rng.random_range(0..width);
                guard += 1;
            }
            if b == a {
                continue;
            }
            let w = rng.random_range(1..=3).min(remaining);
            circuit
                .add_wires(ComponentId::new(a), ComponentId::new(b), w)
                .expect("valid distinct pair");
            remaining -= w;
        }
        circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_requested_statistics() {
        let c = HierarchicalCircuit::new(100, 400).seed(1).build();
        assert_eq!(c.len(), 100);
        assert_eq!(c.total_wire_weight(), 800);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HierarchicalCircuit::new(50, 200).seed(9).build();
        let b = HierarchicalCircuit::new(50, 200).seed(9).build();
        let c = HierarchicalCircuit::new(50, 200).seed(10).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn locality_concentrates_wires_in_modules() {
        // Count wires fully inside the 16-leaf level-2 modules.
        let inside = |c: &Circuit| -> usize {
            c.edges()
                .filter(|(a, b, _)| a.index() / 16 == b.index() / 16)
                .count()
        };
        let local = HierarchicalCircuit::new(64, 400).locality(0.9).seed(4).build();
        let global = HierarchicalCircuit::new(64, 400).locality(0.05).seed(4).build();
        assert!(
            inside(&local) > inside(&global),
            "high locality must concentrate wires ({} vs {})",
            inside(&local),
            inside(&global)
        );
    }

    #[test]
    fn no_self_loops_and_symmetric() {
        let c = HierarchicalCircuit::new(40, 200).seed(6).build();
        for (a, b, w) in c.edges() {
            assert_ne!(a, b);
            assert!(w > 0);
            assert_eq!(c.connection(b, a), c.connection(a, b));
        }
    }

    #[test]
    fn zero_wires_and_custom_branching() {
        let c = HierarchicalCircuit::new(27, 0).branching(3).build();
        assert_eq!(c.directed_edge_count(), 0);
        let c = HierarchicalCircuit::new(27, 100).branching(3).seed(2).build();
        assert_eq!(c.total_wire_weight(), 200);
    }

    #[test]
    fn partitioner_recovers_module_structure() {
        // Four 16-leaf modules onto four partitions: the min-cut partition
        // should place most of each module together.
        use qbp_core::{PartitionTopology, ProblemBuilder};
        let circuit = HierarchicalCircuit::new(64, 500)
            .locality(0.9)
            .size_range(2, 4)
            .seed(8)
            .build();
        let total = circuit.total_size();
        let topo = PartitionTopology::uniform(4, total / 4 + 24).expect("uniform");
        let problem = ProblemBuilder::new(circuit, topo).build().expect("problem");
        let out = qbp_solver::QbpSolver::new(qbp_solver::QbpConfig {
            iterations: 60,
            ..qbp_solver::QbpConfig::default()
        })
        .solve(&problem, None)
        .expect("solve");
        assert!(out.feasible);
        // The cut should be well below a random 4-way partition's expected
        // 75% of wires.
        let cut = out.objective / 2;
        let wires = problem.circuit().total_wire_weight() / 2;
        assert!(
            cut * 2 < wires,
            "cut {cut} should be far below half the {wires} wires"
        );
    }
}
