//! The ECO stream generator's contract: a feasible problem stays feasible
//! across the whole stream. The planted witness of the generated instance
//! must satisfy every evolved problem — bound edits only loosen, remove, or
//! add at the delay ceiling, and wire edits never touch the constraint set.
//! (A below-ceiling bound on a fresh pair once slipped through here and
//! compounded into genuinely infeasible problems deep into long streams.)

use qbp_core::check_feasibility;
use qbp_eco::{EcoConfig, EcoSession, NetlistDelta};
use qbp_gen::{
    build_instance_with_witness, eco_edit_stream, scaled_spec, EcoStreamOptions, SuiteOptions,
    PAPER_SUITE,
};
use qbp_observe::NoopObserver;
use qbp_solver::QbpConfig;

#[test]
fn stream_preserves_planted_witness() {
    let spec = scaled_spec(&PAPER_SUITE[0], 0.1);
    let (problem, witness) =
        build_instance_with_witness(&spec, &SuiteOptions::default()).unwrap();
    assert!(check_feasibility(&problem, &witness).is_feasible());
    let stream = eco_edit_stream(
        &problem,
        &EcoStreamOptions {
            edits: 300,
            seed: 1993,
            structural: true,
        },
    );
    let config = EcoConfig {
        solver: QbpConfig {
            iterations: 20,
            ..QbpConfig::default()
        },
        ..EcoConfig::default()
    };
    let mut session = EcoSession::with_assignment(problem, witness.clone(), config).unwrap();
    for (k, op) in stream.iter().enumerate() {
        let mut delta = NetlistDelta::new();
        delta.push(op.clone());
        let (_, solve) = session.apply_and_resolve(&delta, &mut NoopObserver).unwrap();
        assert!(
            check_feasibility(session.problem(), &witness).is_feasible(),
            "edit {k} ({op:?}) broke the planted witness"
        );
        assert!(
            solve.feasible,
            "edit {k} ({op:?}) left the warm re-solve infeasible on a \
             feasibility-preserving stream"
        );
    }
    assert!(session.state_matches_fresh());
}
