//! Solver observability: a single event taxonomy for every solver in the
//! workspace (QBP, QAP, GFM, GKL, simulated annealing) plus the built-in
//! observers that consume it.
//!
//! The paper's STEP 1–8 loop, the interchange baselines and the annealer all
//! expose very different inner structure; what they share is a small set of
//! *moments* worth instrumenting — an iteration starting and finishing, an
//! `η` linearization being recomputed (fully or patched incrementally), a
//! GAP/LAP subproblem being solved, a penalty term firing, a move being
//! accepted or rejected, a multistart run completing. [`SolveEvent`] names
//! those moments; [`SolveObserver`] receives them.
//!
//! # Observers
//!
//! * [`NoopObserver`] — the zero-cost default: every hook is an empty
//!   default method, so an uninstrumented solve pays one virtual call per
//!   event and nothing else.
//! * [`CountersObserver`] — atomic counters per event class (η full vs.
//!   incremental, GAP/LAP calls, repairs, stall resets, move
//!   accept/reject). Cheap enough to leave on in production.
//! * [`TraceObserver`] — streams every event as one JSON object per line
//!   (JSONL) with a monotonic nanosecond timestamp, for offline analysis
//!   with `jq` and friends (see `docs/OBSERVABILITY.md`).
//! * [`ProgressObserver`] — records the best-value-so-far curve, the
//!   convergence picture behind the paper's "the more CPU time spent, the
//!   better the results".
//! * [`TeeObserver`] — fans one event stream out to several observers.
//!
//! # Example
//!
//! ```
//! use qbp_observe::{CountersObserver, SolveEvent, SolveObserver, SolverId};
//!
//! let mut counters = CountersObserver::new();
//! counters.on_event(&SolveEvent::SolveStarted {
//!     solver: SolverId::Qbp,
//!     components: 8,
//!     partitions: 4,
//! });
//! counters.on_event(&SolveEvent::EtaComputed { iteration: 1, incremental: false });
//! counters.on_event(&SolveEvent::EtaComputed { iteration: 2, incremental: true });
//! let snap = counters.snapshot();
//! assert_eq!(snap.eta_full, 1);
//! assert_eq!(snap.eta_incremental, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unused_must_use)]

use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

#[allow(unused_imports)]
use serde::{Deserialize, Serialize};

/// Which solver produced an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverId {
    /// The generalized Burkard heuristic (GAP subproblems).
    Qbp,
    /// Burkard's original heuristic (LAP subproblems, `M = N`).
    Qap,
    /// Generalized Fiduccia–Mattheyses.
    Gfm,
    /// Generalized Kernighan–Lin.
    Gkl,
    /// Simulated annealing on the embedded objective.
    Anneal,
    /// Multilevel coarsen–solve–refine V-cycle around the QBP solver.
    Mlqbp,
}

impl SolverId {
    /// Stable lower-case name used in traces and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            SolverId::Qbp => "qbp",
            SolverId::Qap => "qap",
            SolverId::Gfm => "gfm",
            SolverId::Gkl => "gkl",
            SolverId::Anneal => "anneal",
            SolverId::Mlqbp => "mlqbp",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "qbp" => SolverId::Qbp,
            "qap" => SolverId::Qap,
            "gfm" => SolverId::Gfm,
            "gkl" => SolverId::Gkl,
            "anneal" => SolverId::Anneal,
            "mlqbp" => SolverId::Mlqbp,
            _ => return None,
        })
    }
}

impl fmt::Display for SolverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which inner subproblem a [`SolveEvent::SubproblemSolved`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubproblemKind {
    /// Generalized Assignment Problem (STEP 4/6 of the generalized loop).
    Gap,
    /// Linear Assignment Problem (STEP 4/6 of the QAP special case).
    Lap,
}

impl SubproblemKind {
    /// Stable lower-case name used in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            SubproblemKind::Gap => "gap",
            SubproblemKind::Lap => "lap",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "gap" => SubproblemKind::Gap,
            "lap" => SubproblemKind::Lap,
            _ => return None,
        })
    }
}

/// Which kind of local change a [`SolveEvent::MoveEvaluated`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MoveKind {
    /// Relocating one component to another partition.
    Shift,
    /// Exchanging the partitions of two components.
    Swap,
}

impl MoveKind {
    /// Stable lower-case name used in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            MoveKind::Shift => "shift",
            MoveKind::Swap => "swap",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "shift" => MoveKind::Shift,
            "swap" => MoveKind::Swap,
            _ => return None,
        })
    }
}

/// Which refinement phase a [`SolveEvent::ParallelBatch`] fanned out for.
/// Distinguishing the phases lets trace consumers attribute parallel work to
/// η rows, gain tables, speculative sweep batches, profile syncs, GAP
/// subproblem lanes, repair scans, coarsening, or prolongation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchPhase {
    /// η-row fan-out (`QMatrix::eta_profiled_par`).
    Eta,
    /// Full partition-profile rebuild chunked across source rows.
    ProfileSync,
    /// Initial gain-table / pair-table build of an interchange pass.
    GainTable,
    /// Speculative move/swap batches of a refinement sweep (parallel gain
    /// revalidation plus fanned post-apply gain refreshes).
    Sweep,
    /// Independent GAP desirability lanes of one subproblem solve.
    Gap,
    /// Repair-scan (descent) delta tables.
    Repair,
    /// Coarsener matching candidate scan.
    Coarsen,
    /// Prolongation of a coarse assignment across row chunks.
    Prolong,
}

impl BatchPhase {
    /// Stable lower-case name used in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            BatchPhase::Eta => "eta",
            BatchPhase::ProfileSync => "profile_sync",
            BatchPhase::GainTable => "gain_table",
            BatchPhase::Sweep => "sweep",
            BatchPhase::Gap => "gap",
            BatchPhase::Repair => "repair",
            BatchPhase::Coarsen => "coarsen",
            BatchPhase::Prolong => "prolong",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "eta" => BatchPhase::Eta,
            "profile_sync" => BatchPhase::ProfileSync,
            "gain_table" => BatchPhase::GainTable,
            "sweep" => BatchPhase::Sweep,
            "gap" => BatchPhase::Gap,
            "repair" => BatchPhase::Repair,
            "coarsen" => BatchPhase::Coarsen,
            "prolong" => BatchPhase::Prolong,
            _ => return None,
        })
    }
}

/// Why an iteration fell back to the full `O(E·M)` η recomputation instead
/// of the incremental `O(moved·deg·M)` patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EtaFallbackReason {
    /// No patch basis existed yet (first iteration, or the η buffer did not
    /// match the problem dimensions).
    Cold,
    /// A stall reset replaced the iterate with a fresh random assignment,
    /// discarding the patch basis.
    Stall,
    /// Too many components moved since the basis iterate (above the
    /// moved-fraction threshold), so patching would cost more than
    /// recomputing.
    MovedFraction,
}

impl EtaFallbackReason {
    /// Stable lower-case name used in traces.
    pub fn as_str(self) -> &'static str {
        match self {
            EtaFallbackReason::Cold => "cold",
            EtaFallbackReason::Stall => "stall",
            EtaFallbackReason::MovedFraction => "moved_fraction",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "cold" => EtaFallbackReason::Cold,
            "stall" => EtaFallbackReason::Stall,
            "moved_fraction" => EtaFallbackReason::MovedFraction,
            _ => return None,
        })
    }
}

/// One instrumentable moment in a solve. All payloads are plain scalars so
/// emitting an event never allocates.
///
/// The meaning of `iteration` is per-solver: a Burkard iteration (QBP/QAP),
/// an FM pass (GFM), an outer loop (GKL), or a temperature level (anneal).
/// `value` is the solver's native objective: the embedded `yᵀQ̂y` for the
/// penalty-driven solvers, the plain wire cost for the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolveEvent {
    /// A solve began.
    SolveStarted {
        /// The solver emitting the stream.
        solver: SolverId,
        /// Number of components `N`.
        components: usize,
        /// Number of partitions `M`.
        partitions: usize,
    },
    /// An iteration (pass / outer loop / temperature level) began.
    IterationStarted {
        /// 1-based iteration number.
        iteration: usize,
    },
    /// The `η` linearization was computed: `incremental` tells whether the
    /// `O(moved·deg·M)` patch was applied or the full sparse sweep ran.
    EtaComputed {
        /// Iteration the computation belongs to.
        iteration: usize,
        /// `true` when the incremental patch sufficed.
        incremental: bool,
    },
    /// A [`PartitionProfile`](https://docs.rs/qbp-core) backing a profiled
    /// gain kernel was synced to a new assignment: `rebuilt` tells whether
    /// the full `O(E + T)` rebuild ran or the `O(moved·deg)` patch sufficed.
    ProfileUpdated {
        /// Iteration the sync belongs to.
        iteration: usize,
        /// `true` when the full rebuild path ran (cold profile or more than
        /// `3N/4` components moved).
        rebuilt: bool,
        /// Number of components whose partition changed.
        moved: usize,
    },
    /// A GAP or LAP subproblem was solved.
    SubproblemSolved {
        /// Iteration the subproblem belongs to.
        iteration: usize,
        /// GAP or LAP.
        kind: SubproblemKind,
        /// Subproblem objective value (the `z` of STEP 4, or STEP 6's `h·u`).
        cost: f64,
        /// Whether the subproblem answer respects all capacities.
        feasible: bool,
    },
    /// Penalty terms fired in the current iterate: `violations` timing
    /// constraints were unsatisfied.
    PenaltyHits {
        /// Iteration observed.
        iteration: usize,
        /// Number of violated directed timing constraints.
        violations: usize,
    },
    /// A repair sweep (embedded/clean descent) ran on an infeasible
    /// candidate; `cleaned` tells whether it removed every violation.
    RepairApplied {
        /// Iteration the repair belongs to.
        iteration: usize,
        /// `true` when the candidate ended violation-free.
        cleaned: bool,
    },
    /// A candidate move or swap was evaluated and accepted or rejected.
    MoveEvaluated {
        /// Iteration the move belongs to.
        iteration: usize,
        /// Shift or swap.
        kind: MoveKind,
        /// Objective delta of the move (negative = improving).
        delta: i64,
        /// Whether the move was applied.
        accepted: bool,
    },
    /// The stall window detected a fixed point or short cycle and the solver
    /// restarted from a fresh iterate (incumbent kept).
    StallReset {
        /// Iteration at which the reset fired.
        iteration: usize,
    },
    /// An iteration finished.
    IterationFinished {
        /// 1-based iteration number.
        iteration: usize,
        /// Solver-native objective of the iterate this iteration produced.
        value: i64,
        /// Whether that iterate was capacity-feasible.
        feasible: bool,
        /// Whether it improved the incumbent.
        improved: bool,
    },
    /// One multistart run finished. Emitted in run order regardless of
    /// worker-thread scheduling, so multistart traces are deterministic.
    RunCompleted {
        /// 0-based run index.
        run: usize,
        /// The run's final (embedded) value.
        value: i64,
        /// Whether the run's answer was fully feasible.
        feasible: bool,
    },
    /// The solve finished.
    SolveFinished {
        /// Iterations executed.
        iterations: usize,
        /// Final solver-native objective.
        value: i64,
        /// Whether the final assignment satisfies C1 and C2.
        feasible: bool,
    },
    /// A multilevel coarsener produced one coarser level by heavy-edge
    /// matching.
    LevelCoarsened {
        /// 1-based level index (level 0 is the original problem).
        level: usize,
        /// Components before the matching (the finer side).
        from_components: usize,
        /// Components after the matching (the coarser side).
        to_components: usize,
    },
    /// A multilevel driver finished refining one level on the way back up
    /// the V-cycle.
    LevelRefined {
        /// 1-based level index that was prolonged into and refined.
        level: usize,
        /// Plain objective after refinement at this level.
        value: i64,
        /// Whether refinement improved on the prolonged assignment.
        improved: bool,
    },
    /// A deterministic intra-solve parallel batch ran: an η-row fan-out, a
    /// gain-table rebuild, or a matching candidate scan was chunked across
    /// worker threads (results are bit-identical to the serial loop; see
    /// `qbp_core::par`). Emitted only when more than one chunk actually ran.
    ParallelBatch {
        /// Iteration (or pass / level) the batch belongs to.
        iteration: usize,
        /// Which refinement phase fanned out.
        phase: BatchPhase,
        /// Number of worker chunks the batch was split into.
        tasks: usize,
        /// The resolved thread budget the batch ran under.
        threads: usize,
    },
    /// An iteration fell back to the full η recomputation instead of the
    /// incremental patch; `reason` tells why the patch basis was unusable.
    /// Emitted alongside `EtaComputed { incremental: false }` by solvers
    /// that track a patch basis.
    EtaFallback {
        /// Iteration the fallback happened in.
        iteration: usize,
        /// Why the incremental path was skipped.
        reason: EtaFallbackReason,
    },
    /// An ECO netlist delta was applied to a live [`EcoSession`]: the
    /// problem was mutated in place and the incremental solver state (CSR
    /// `Q̂` body rows, timing-class tables, partition profiles) was synced —
    /// by local row patches when the delta was small, by a full rebuild when
    /// it crossed the staleness threshold.
    ///
    /// [`EcoSession`]: https://docs.rs/qbp-eco
    DeltaApplied {
        /// 1-based delta sequence number within the session.
        delta: usize,
        /// Canonical edit ops the delta contained after dedup/merge.
        ops: usize,
        /// CSR rows re-derived and spliced in place (0 on the rebuild path).
        patched_rows: usize,
        /// Whether the staleness threshold forced a full state rebuild.
        rebuilt: bool,
    },
    /// A warm re-solve after an ECO delta finished: a localized descent over
    /// the dirty component set, escalated to a capped full solve only when
    /// the local pass could not restore feasibility or quality.
    WarmSolve {
        /// 1-based delta sequence number the solve belongs to.
        delta: usize,
        /// Dirty components seeding the localized pass.
        dirty: usize,
        /// Whether the capped full solver ran after the localized pass.
        escalated: bool,
        /// Final embedded objective of the re-solve.
        value: i64,
        /// Whether the result satisfies C1 and C2 on the patched problem.
        feasible: bool,
    },
    /// A solve's [`Budget`](https://docs.rs/qbp-core) expired (deadline or
    /// iteration cap) at a cooperative check: the solver wound down and
    /// returned its best feasible iterate with `ExecStatus::TimedOut`.
    BudgetExhausted {
        /// 1-based iteration the check fired at.
        iteration: usize,
    },
    /// A fired `CancelToken` was observed at a cooperative check: the solver
    /// wound down and returned its best feasible iterate with
    /// `ExecStatus::Cancelled`.
    Cancelled {
        /// 1-based iteration the check fired at.
        iteration: usize,
    },
    /// A worker (multistart run) panicked and was caught at the
    /// `catch_unwind` isolation boundary; sibling runs' results survive.
    /// Emitted in run order, so traces stay deterministic.
    WorkerPanicked {
        /// 0-based run index of the poisoned worker.
        run: usize,
    },
    /// Hardware-adaptive auto-configuration ran (CLI `--auto`): solver
    /// parameters were derived from the detected host and problem size
    /// before the solve started.
    AutoConfigured {
        /// Detected CPU cores.
        cores: usize,
        /// Available RAM in MiB at detection time (0 when unknown).
        ram_mb: u64,
        /// Chosen thread budget.
        threads: usize,
        /// Chosen mlqbp coarsening level cap.
        levels: usize,
        /// Chosen mlqbp minimum coarse size.
        min_size: usize,
        /// Chosen multistart width.
        width: usize,
    },
}

impl SolveEvent {
    /// Stable snake_case name of the event variant (the `"event"` field of
    /// trace lines).
    pub fn name(&self) -> &'static str {
        match self {
            SolveEvent::SolveStarted { .. } => "solve_started",
            SolveEvent::IterationStarted { .. } => "iteration_started",
            SolveEvent::EtaComputed { .. } => "eta_computed",
            SolveEvent::ProfileUpdated { .. } => "profile_updated",
            SolveEvent::SubproblemSolved { .. } => "subproblem_solved",
            SolveEvent::PenaltyHits { .. } => "penalty_hits",
            SolveEvent::RepairApplied { .. } => "repair_applied",
            SolveEvent::MoveEvaluated { .. } => "move_evaluated",
            SolveEvent::StallReset { .. } => "stall_reset",
            SolveEvent::IterationFinished { .. } => "iteration_finished",
            SolveEvent::RunCompleted { .. } => "run_completed",
            SolveEvent::SolveFinished { .. } => "solve_finished",
            SolveEvent::LevelCoarsened { .. } => "level_coarsened",
            SolveEvent::LevelRefined { .. } => "level_refined",
            SolveEvent::ParallelBatch { .. } => "parallel_batch",
            SolveEvent::EtaFallback { .. } => "eta_fallback",
            SolveEvent::DeltaApplied { .. } => "delta_applied",
            SolveEvent::WarmSolve { .. } => "warm_solve",
            SolveEvent::BudgetExhausted { .. } => "budget_exhausted",
            SolveEvent::Cancelled { .. } => "cancelled",
            SolveEvent::WorkerPanicked { .. } => "worker_panicked",
            SolveEvent::AutoConfigured { .. } => "auto_configured",
        }
    }
}

/// Receiver of [`SolveEvent`]s. Every solver in the workspace takes a
/// `&mut dyn SolveObserver`; the default method body is empty, so a solver
/// driven with [`NoopObserver`] pays one non-inlined call per event and no
/// other cost — no allocation, no branch on observer state.
pub trait SolveObserver {
    /// Called once per event, in emission order.
    fn on_event(&mut self, _event: &SolveEvent) {}
}

/// The zero-cost default observer: ignores everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SolveObserver for NoopObserver {}

/// Fans an event stream out to several observers, in order.
#[derive(Default)]
pub struct TeeObserver<'a> {
    sinks: Vec<&'a mut dyn SolveObserver>,
}

impl<'a> TeeObserver<'a> {
    /// Creates an empty tee.
    pub fn new() -> Self {
        TeeObserver { sinks: Vec::new() }
    }

    /// Adds a sink; events are delivered in insertion order.
    pub fn push(&mut self, sink: &'a mut dyn SolveObserver) {
        self.sinks.push(sink);
    }
}

impl fmt::Debug for TeeObserver<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl SolveObserver for TeeObserver<'_> {
    fn on_event(&mut self, event: &SolveEvent) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }
}

/// Plain-value snapshot of a [`CountersObserver`], suitable for comparison,
/// aggregation and JSON output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// `SolveStarted` events seen.
    pub solves: u64,
    /// Iterations started.
    pub iterations: u64,
    /// Full `η` recomputations.
    pub eta_full: u64,
    /// Incremental `η` patches.
    pub eta_incremental: u64,
    /// Full η recomputations with no patch basis at all (first iteration or
    /// dimension mismatch).
    pub eta_fallback_cold: u64,
    /// Full η recomputations forced by a stall reset discarding the basis.
    pub eta_fallback_stall: u64,
    /// Full η recomputations forced by the moved-fraction threshold.
    pub eta_fallback_moved: u64,
    /// Full partition-profile rebuilds.
    pub profile_rebuilds: u64,
    /// Incremental partition-profile patches.
    pub profile_patches: u64,
    /// GAP subproblems solved.
    pub gap_calls: u64,
    /// LAP subproblems solved.
    pub lap_calls: u64,
    /// Capacity-infeasible subproblem answers.
    pub infeasible_subproblems: u64,
    /// Total violated timing constraints reported by `PenaltyHits`.
    pub penalty_hits: u64,
    /// Repair sweeps run on infeasible candidates.
    pub repairs: u64,
    /// Repair sweeps that ended violation-free.
    pub repairs_cleaned: u64,
    /// Stall-window resets.
    pub stall_resets: u64,
    /// Moves/swaps accepted.
    pub moves_accepted: u64,
    /// Moves/swaps rejected.
    pub moves_rejected: u64,
    /// Iterations that improved the incumbent.
    pub improvements: u64,
    /// Multistart runs completed.
    pub runs: u64,
    /// Multilevel coarsening levels produced.
    pub levels_coarsened: u64,
    /// Multilevel levels refined on the way back up a V-cycle.
    pub levels_refined: u64,
    /// Intra-solve parallel batches that actually fanned out (> 1 chunk).
    pub parallel_batches: u64,
    /// Total worker chunks across all parallel batches.
    pub parallel_tasks: u64,
    /// Largest resolved thread budget any parallel batch ran under (0 when
    /// every batch ran serially).
    pub threads_used: u64,
    /// ECO netlist deltas applied to live sessions.
    pub eco_deltas: u64,
    /// Total CSR rows patched in place across all ECO deltas.
    pub eco_patched_rows: u64,
    /// ECO deltas that crossed the staleness threshold and rebuilt the
    /// solver state from scratch instead of patching.
    pub eco_rebuilds: u64,
    /// Solves wound down by an expired budget (deadline or iteration cap).
    pub budget_exhausted: u64,
    /// Solves wound down by a fired cancel token.
    pub cancelled: u64,
    /// Worker panics caught at isolation boundaries.
    pub worker_panics: u64,
}

impl CounterSnapshot {
    /// Serializes the snapshot as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"solves\": {}, \"iterations\": {}, \"eta_full\": {}, \
             \"eta_incremental\": {}, \"eta_fallback_cold\": {}, \
             \"eta_fallback_stall\": {}, \"eta_fallback_moved\": {}, \
             \"profile_rebuilds\": {}, \
             \"profile_patches\": {}, \"gap_calls\": {}, \"lap_calls\": {}, \
             \"infeasible_subproblems\": {}, \"penalty_hits\": {}, \
             \"repairs\": {}, \"repairs_cleaned\": {}, \"stall_resets\": {}, \
             \"moves_accepted\": {}, \"moves_rejected\": {}, \
             \"improvements\": {}, \"runs\": {}, \"levels_coarsened\": {}, \
             \"levels_refined\": {}, \"parallel_batches\": {}, \
             \"parallel_tasks\": {}, \"threads_used\": {}, \
             \"eco_deltas\": {}, \"eco_patched_rows\": {}, \
             \"eco_rebuilds\": {}, \"budget_exhausted\": {}, \
             \"cancelled\": {}, \"worker_panics\": {}}}",
            self.solves,
            self.iterations,
            self.eta_full,
            self.eta_incremental,
            self.eta_fallback_cold,
            self.eta_fallback_stall,
            self.eta_fallback_moved,
            self.profile_rebuilds,
            self.profile_patches,
            self.gap_calls,
            self.lap_calls,
            self.infeasible_subproblems,
            self.penalty_hits,
            self.repairs,
            self.repairs_cleaned,
            self.stall_resets,
            self.moves_accepted,
            self.moves_rejected,
            self.improvements,
            self.runs,
            self.levels_coarsened,
            self.levels_refined,
            self.parallel_batches,
            self.parallel_tasks,
            self.threads_used,
            self.eco_deltas,
            self.eco_patched_rows,
            self.eco_rebuilds,
            self.budget_exhausted,
            self.cancelled,
            self.worker_panics,
        )
    }
}

/// Atomic per-event-class counters. The atomics make `record` callable
/// through a shared reference, so one `CountersObserver` can aggregate
/// several worker threads' streams (each worker holding `&CountersObserver`
/// wrapped in its own adapter) as well as serve as a plain `&mut dyn
/// SolveObserver`.
#[derive(Debug, Default)]
pub struct CountersObserver {
    solves: AtomicU64,
    iterations: AtomicU64,
    eta_full: AtomicU64,
    eta_incremental: AtomicU64,
    eta_fallback_cold: AtomicU64,
    eta_fallback_stall: AtomicU64,
    eta_fallback_moved: AtomicU64,
    profile_rebuilds: AtomicU64,
    profile_patches: AtomicU64,
    gap_calls: AtomicU64,
    lap_calls: AtomicU64,
    infeasible_subproblems: AtomicU64,
    penalty_hits: AtomicU64,
    repairs: AtomicU64,
    repairs_cleaned: AtomicU64,
    stall_resets: AtomicU64,
    moves_accepted: AtomicU64,
    moves_rejected: AtomicU64,
    improvements: AtomicU64,
    runs: AtomicU64,
    levels_coarsened: AtomicU64,
    levels_refined: AtomicU64,
    parallel_batches: AtomicU64,
    parallel_tasks: AtomicU64,
    threads_used: AtomicU64,
    eco_deltas: AtomicU64,
    eco_patched_rows: AtomicU64,
    eco_rebuilds: AtomicU64,
    budget_exhausted: AtomicU64,
    cancelled: AtomicU64,
    worker_panics: AtomicU64,
}

impl CountersObserver {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one event. Shared-reference variant of
    /// [`SolveObserver::on_event`] for multi-threaded aggregation.
    pub fn record(&self, event: &SolveEvent) {
        const R: Ordering = Ordering::Relaxed;
        match event {
            SolveEvent::SolveStarted { .. } => {
                self.solves.fetch_add(1, R);
            }
            SolveEvent::IterationStarted { .. } => {
                self.iterations.fetch_add(1, R);
            }
            SolveEvent::EtaComputed { incremental, .. } => {
                if *incremental {
                    self.eta_incremental.fetch_add(1, R);
                } else {
                    self.eta_full.fetch_add(1, R);
                }
            }
            SolveEvent::EtaFallback { reason, .. } => {
                match reason {
                    EtaFallbackReason::Cold => self.eta_fallback_cold.fetch_add(1, R),
                    EtaFallbackReason::Stall => self.eta_fallback_stall.fetch_add(1, R),
                    EtaFallbackReason::MovedFraction => self.eta_fallback_moved.fetch_add(1, R),
                };
            }
            SolveEvent::ProfileUpdated { rebuilt, .. } => {
                if *rebuilt {
                    self.profile_rebuilds.fetch_add(1, R);
                } else {
                    self.profile_patches.fetch_add(1, R);
                }
            }
            SolveEvent::SubproblemSolved { kind, feasible, .. } => {
                match kind {
                    SubproblemKind::Gap => self.gap_calls.fetch_add(1, R),
                    SubproblemKind::Lap => self.lap_calls.fetch_add(1, R),
                };
                if !feasible {
                    self.infeasible_subproblems.fetch_add(1, R);
                }
            }
            SolveEvent::PenaltyHits { violations, .. } => {
                self.penalty_hits.fetch_add(*violations as u64, R);
            }
            SolveEvent::RepairApplied { cleaned, .. } => {
                self.repairs.fetch_add(1, R);
                if *cleaned {
                    self.repairs_cleaned.fetch_add(1, R);
                }
            }
            SolveEvent::MoveEvaluated { accepted, .. } => {
                if *accepted {
                    self.moves_accepted.fetch_add(1, R);
                } else {
                    self.moves_rejected.fetch_add(1, R);
                }
            }
            SolveEvent::StallReset { .. } => {
                self.stall_resets.fetch_add(1, R);
            }
            SolveEvent::IterationFinished { improved, .. } => {
                if *improved {
                    self.improvements.fetch_add(1, R);
                }
            }
            SolveEvent::RunCompleted { .. } => {
                self.runs.fetch_add(1, R);
            }
            SolveEvent::SolveFinished { .. } => {}
            SolveEvent::LevelCoarsened { .. } => {
                self.levels_coarsened.fetch_add(1, R);
            }
            SolveEvent::LevelRefined { .. } => {
                self.levels_refined.fetch_add(1, R);
            }
            SolveEvent::ParallelBatch { tasks, threads, .. } => {
                self.parallel_batches.fetch_add(1, R);
                self.parallel_tasks.fetch_add(*tasks as u64, R);
                self.threads_used.fetch_max(*threads as u64, R);
            }
            SolveEvent::DeltaApplied {
                patched_rows,
                rebuilt,
                ..
            } => {
                self.eco_deltas.fetch_add(1, R);
                self.eco_patched_rows.fetch_add(*patched_rows as u64, R);
                if *rebuilt {
                    self.eco_rebuilds.fetch_add(1, R);
                }
            }
            SolveEvent::WarmSolve { .. } => {}
            SolveEvent::BudgetExhausted { .. } => {
                self.budget_exhausted.fetch_add(1, R);
            }
            SolveEvent::Cancelled { .. } => {
                self.cancelled.fetch_add(1, R);
            }
            SolveEvent::WorkerPanicked { .. } => {
                self.worker_panics.fetch_add(1, R);
            }
            SolveEvent::AutoConfigured { .. } => {}
        }
    }

    /// Copies the current values out.
    pub fn snapshot(&self) -> CounterSnapshot {
        const R: Ordering = Ordering::Relaxed;
        CounterSnapshot {
            solves: self.solves.load(R),
            iterations: self.iterations.load(R),
            eta_full: self.eta_full.load(R),
            eta_incremental: self.eta_incremental.load(R),
            eta_fallback_cold: self.eta_fallback_cold.load(R),
            eta_fallback_stall: self.eta_fallback_stall.load(R),
            eta_fallback_moved: self.eta_fallback_moved.load(R),
            profile_rebuilds: self.profile_rebuilds.load(R),
            profile_patches: self.profile_patches.load(R),
            gap_calls: self.gap_calls.load(R),
            lap_calls: self.lap_calls.load(R),
            infeasible_subproblems: self.infeasible_subproblems.load(R),
            penalty_hits: self.penalty_hits.load(R),
            repairs: self.repairs.load(R),
            repairs_cleaned: self.repairs_cleaned.load(R),
            stall_resets: self.stall_resets.load(R),
            moves_accepted: self.moves_accepted.load(R),
            moves_rejected: self.moves_rejected.load(R),
            improvements: self.improvements.load(R),
            runs: self.runs.load(R),
            levels_coarsened: self.levels_coarsened.load(R),
            levels_refined: self.levels_refined.load(R),
            parallel_batches: self.parallel_batches.load(R),
            parallel_tasks: self.parallel_tasks.load(R),
            threads_used: self.threads_used.load(R),
            eco_deltas: self.eco_deltas.load(R),
            eco_patched_rows: self.eco_patched_rows.load(R),
            eco_rebuilds: self.eco_rebuilds.load(R),
            budget_exhausted: self.budget_exhausted.load(R),
            cancelled: self.cancelled.load(R),
            worker_panics: self.worker_panics.load(R),
        }
    }
}

impl SolveObserver for CountersObserver {
    fn on_event(&mut self, event: &SolveEvent) {
        self.record(event);
    }
}

/// One point on a [`ProgressObserver`] curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressPoint {
    /// Iteration (or run, for multistart streams) at which the incumbent
    /// improved.
    pub iteration: usize,
    /// The new best value.
    pub value: i64,
}

/// Records the best-value-so-far curve: one point per strict improvement of
/// the incumbent among feasible iterates/runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgressObserver {
    curve: Vec<ProgressPoint>,
    best: Option<i64>,
}

impl ProgressObserver {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// The improvement curve, in event order.
    pub fn curve(&self) -> &[ProgressPoint] {
        &self.curve
    }

    /// Best feasible value seen, if any.
    pub fn best(&self) -> Option<i64> {
        self.best
    }

    fn offer(&mut self, iteration: usize, value: i64) {
        if self.best.is_none_or(|b| value < b) {
            self.best = Some(value);
            self.curve.push(ProgressPoint { iteration, value });
        }
    }
}

impl SolveObserver for ProgressObserver {
    fn on_event(&mut self, event: &SolveEvent) {
        match *event {
            SolveEvent::IterationFinished {
                iteration,
                value,
                feasible: true,
                ..
            } => self.offer(iteration, value),
            SolveEvent::RunCompleted {
                run,
                value,
                feasible: true,
            } => self.offer(run, value),
            _ => {}
        }
    }
}

/// Streams every event as one JSON object per line with a monotonic
/// nanosecond timestamp relative to observer creation.
///
/// Write errors do not panic mid-solve: the first error is stored and all
/// further events are dropped; [`TraceObserver::finish`] surfaces it.
#[derive(Debug)]
pub struct TraceObserver<W: Write> {
    sink: W,
    start: Instant,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceObserver<W> {
    /// Wraps a writer; timestamps count from this moment.
    pub fn new(sink: W) -> Self {
        TraceObserver {
            sink,
            start: Instant::now(),
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the writer, or the first write error encountered.
    ///
    /// # Errors
    ///
    /// Returns the stored write error, or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write> SolveObserver for TraceObserver<W> {
    fn on_event(&mut self, event: &SolveEvent) {
        if self.error.is_some() {
            return;
        }
        let t_ns = self.start.elapsed().as_nanos() as u64;
        let line = trace_line(t_ns, event);
        match self.sink.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Serializes one trace line (including the trailing newline) for `t_ns`
/// nanoseconds and `event`. This is the exact format [`TraceObserver`]
/// writes and [`parse_trace_line`] reads.
pub fn trace_line(t_ns: u64, event: &SolveEvent) -> String {
    let mut s = format!("{{\"t_ns\": {t_ns}, \"event\": \"{}\"", event.name());
    match *event {
        SolveEvent::SolveStarted {
            solver,
            components,
            partitions,
        } => {
            s.push_str(&format!(
                ", \"solver\": \"{solver}\", \"components\": {components}, \
                 \"partitions\": {partitions}"
            ));
        }
        SolveEvent::IterationStarted { iteration } | SolveEvent::StallReset { iteration } => {
            s.push_str(&format!(", \"iteration\": {iteration}"));
        }
        SolveEvent::EtaComputed {
            iteration,
            incremental,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"incremental\": {incremental}"
            ));
        }
        SolveEvent::ProfileUpdated {
            iteration,
            rebuilt,
            moved,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"rebuilt\": {rebuilt}, \"moved\": {moved}"
            ));
        }
        SolveEvent::SubproblemSolved {
            iteration,
            kind,
            cost,
            feasible,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"kind\": \"{}\", \"cost\": {cost:?}, \
                 \"feasible\": {feasible}",
                kind.as_str()
            ));
        }
        SolveEvent::PenaltyHits {
            iteration,
            violations,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"violations\": {violations}"
            ));
        }
        SolveEvent::RepairApplied { iteration, cleaned } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"cleaned\": {cleaned}"
            ));
        }
        SolveEvent::MoveEvaluated {
            iteration,
            kind,
            delta,
            accepted,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"kind\": \"{}\", \"delta\": {delta}, \
                 \"accepted\": {accepted}",
                kind.as_str()
            ));
        }
        SolveEvent::IterationFinished {
            iteration,
            value,
            feasible,
            improved,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"value\": {value}, \
                 \"feasible\": {feasible}, \"improved\": {improved}"
            ));
        }
        SolveEvent::RunCompleted {
            run,
            value,
            feasible,
        } => {
            s.push_str(&format!(
                ", \"run\": {run}, \"value\": {value}, \"feasible\": {feasible}"
            ));
        }
        SolveEvent::SolveFinished {
            iterations,
            value,
            feasible,
        } => {
            s.push_str(&format!(
                ", \"iterations\": {iterations}, \"value\": {value}, \"feasible\": {feasible}"
            ));
        }
        SolveEvent::LevelCoarsened {
            level,
            from_components,
            to_components,
        } => {
            s.push_str(&format!(
                ", \"level\": {level}, \"from_components\": {from_components}, \
                 \"to_components\": {to_components}"
            ));
        }
        SolveEvent::LevelRefined {
            level,
            value,
            improved,
        } => {
            s.push_str(&format!(
                ", \"level\": {level}, \"value\": {value}, \"improved\": {improved}"
            ));
        }
        SolveEvent::ParallelBatch {
            iteration,
            phase,
            tasks,
            threads,
        } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"phase\": \"{}\", \"tasks\": {tasks}, \
                 \"threads\": {threads}",
                phase.as_str()
            ));
        }
        SolveEvent::EtaFallback { iteration, reason } => {
            s.push_str(&format!(
                ", \"iteration\": {iteration}, \"reason\": \"{}\"",
                reason.as_str()
            ));
        }
        SolveEvent::DeltaApplied {
            delta,
            ops,
            patched_rows,
            rebuilt,
        } => {
            s.push_str(&format!(
                ", \"delta\": {delta}, \"ops\": {ops}, \"patched_rows\": {patched_rows}, \
                 \"rebuilt\": {rebuilt}"
            ));
        }
        SolveEvent::WarmSolve {
            delta,
            dirty,
            escalated,
            value,
            feasible,
        } => {
            s.push_str(&format!(
                ", \"delta\": {delta}, \"dirty\": {dirty}, \"escalated\": {escalated}, \
                 \"value\": {value}, \"feasible\": {feasible}"
            ));
        }
        SolveEvent::BudgetExhausted { iteration } => {
            s.push_str(&format!(", \"iteration\": {iteration}"));
        }
        SolveEvent::Cancelled { iteration } => {
            s.push_str(&format!(", \"iteration\": {iteration}"));
        }
        SolveEvent::WorkerPanicked { run } => {
            s.push_str(&format!(", \"run\": {run}"));
        }
        SolveEvent::AutoConfigured {
            cores,
            ram_mb,
            threads,
            levels,
            min_size,
            width,
        } => {
            s.push_str(&format!(
                ", \"cores\": {cores}, \"ram_mb\": {ram_mb}, \"threads\": {threads}, \
                 \"levels\": {levels}, \"min_size\": {min_size}, \"width\": {width}"
            ));
        }
    }
    s.push_str("}\n");
    s
}

/// A parsed trace line: the timestamp plus the event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Monotonic nanoseconds since the trace began.
    pub t_ns: u64,
    /// The event.
    pub event: SolveEvent,
}

/// Errors from [`parse_trace_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The line is not a flat JSON object of scalars.
    Malformed(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field holds a value of the wrong type or an unknown name.
    BadField(&'static str),
    /// The `"event"` name is not part of the taxonomy.
    UnknownEvent(String),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Malformed(why) => write!(f, "malformed trace line: {why}"),
            TraceParseError::MissingField(name) => write!(f, "missing field `{name}`"),
            TraceParseError::BadField(name) => write!(f, "bad value for field `{name}`"),
            TraceParseError::UnknownEvent(name) => write!(f, "unknown event `{name}`"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// One scalar JSON value as found in a trace line.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Num(String),
    Bool(bool),
    Str(String),
}

/// Minimal parser for the flat JSON objects [`trace_line`] emits (keys and
/// scalar values only, no nesting, no string escapes — the taxonomy never
/// produces any).
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, TraceParseError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| TraceParseError::Malformed("not wrapped in { }".into()))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| TraceParseError::Malformed(format!("expected key at `{rest}`")))?;
        let end = after_quote
            .find('"')
            .ok_or_else(|| TraceParseError::Malformed("unterminated key".into()))?;
        let key = after_quote[..end].to_string();
        let after_key = after_quote[end + 1..].trim_start();
        let after_colon = after_key
            .strip_prefix(':')
            .ok_or_else(|| TraceParseError::Malformed(format!("expected `:` after `{key}`")))?
            .trim_start();
        let (value, tail) = if let Some(vs) = after_colon.strip_prefix('"') {
            let vend = vs
                .find('"')
                .ok_or_else(|| TraceParseError::Malformed("unterminated string".into()))?;
            (Scalar::Str(vs[..vend].to_string()), &vs[vend + 1..])
        } else {
            let vend = after_colon
                .find([',', '}'])
                .unwrap_or(after_colon.len());
            let raw = after_colon[..vend].trim();
            let value = match raw {
                "true" => Scalar::Bool(true),
                "false" => Scalar::Bool(false),
                num if !num.is_empty()
                    && num
                        .chars()
                        .all(|c| c.is_ascii_digit() || "+-.eE".contains(c)) =>
                {
                    Scalar::Num(num.to_string())
                }
                other => {
                    return Err(TraceParseError::Malformed(format!(
                        "unsupported value `{other}` for `{key}`"
                    )))
                }
            };
            (value, &after_colon[vend..])
        };
        fields.push((key, value));
        rest = tail.trim_start();
        if let Some(t) = rest.strip_prefix(',') {
            rest = t.trim_start();
        } else if !rest.is_empty() {
            return Err(TraceParseError::Malformed(format!(
                "expected `,` at `{rest}`"
            )));
        }
    }
    Ok(fields)
}

struct Fields(Vec<(String, Scalar)>);

impl Fields {
    fn scalar(&self, name: &'static str) -> Result<&Scalar, TraceParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or(TraceParseError::MissingField(name))
    }

    fn num<T: std::str::FromStr>(&self, name: &'static str) -> Result<T, TraceParseError> {
        match self.scalar(name)? {
            Scalar::Num(raw) => raw.parse().map_err(|_| TraceParseError::BadField(name)),
            _ => Err(TraceParseError::BadField(name)),
        }
    }

    fn bool(&self, name: &'static str) -> Result<bool, TraceParseError> {
        match self.scalar(name)? {
            Scalar::Bool(b) => Ok(*b),
            _ => Err(TraceParseError::BadField(name)),
        }
    }

    fn str(&self, name: &'static str) -> Result<&str, TraceParseError> {
        match self.scalar(name)? {
            Scalar::Str(s) => Ok(s),
            _ => Err(TraceParseError::BadField(name)),
        }
    }
}

/// Parses one line previously produced by [`trace_line`] /
/// [`TraceObserver`]. The round trip `parse_trace_line(trace_line(t, e))`
/// reproduces `(t, e)` exactly (floats are emitted with Rust's shortest
/// round-trippable representation).
///
/// # Errors
///
/// Returns a [`TraceParseError`] describing the first structural or type
/// problem found.
pub fn parse_trace_line(line: &str) -> Result<TraceRecord, TraceParseError> {
    let fields = Fields(parse_flat_object(line)?);
    let t_ns = fields.num("t_ns")?;
    let name = fields.str("event")?;
    let event = match name {
        "solve_started" => SolveEvent::SolveStarted {
            solver: SolverId::from_str(fields.str("solver")?)
                .ok_or(TraceParseError::BadField("solver"))?,
            components: fields.num("components")?,
            partitions: fields.num("partitions")?,
        },
        "iteration_started" => SolveEvent::IterationStarted {
            iteration: fields.num("iteration")?,
        },
        "eta_computed" => SolveEvent::EtaComputed {
            iteration: fields.num("iteration")?,
            incremental: fields.bool("incremental")?,
        },
        "profile_updated" => SolveEvent::ProfileUpdated {
            iteration: fields.num("iteration")?,
            rebuilt: fields.bool("rebuilt")?,
            moved: fields.num("moved")?,
        },
        "subproblem_solved" => SolveEvent::SubproblemSolved {
            iteration: fields.num("iteration")?,
            kind: SubproblemKind::from_str(fields.str("kind")?)
                .ok_or(TraceParseError::BadField("kind"))?,
            cost: fields.num("cost")?,
            feasible: fields.bool("feasible")?,
        },
        "penalty_hits" => SolveEvent::PenaltyHits {
            iteration: fields.num("iteration")?,
            violations: fields.num("violations")?,
        },
        "repair_applied" => SolveEvent::RepairApplied {
            iteration: fields.num("iteration")?,
            cleaned: fields.bool("cleaned")?,
        },
        "move_evaluated" => SolveEvent::MoveEvaluated {
            iteration: fields.num("iteration")?,
            kind: MoveKind::from_str(fields.str("kind")?)
                .ok_or(TraceParseError::BadField("kind"))?,
            delta: fields.num("delta")?,
            accepted: fields.bool("accepted")?,
        },
        "stall_reset" => SolveEvent::StallReset {
            iteration: fields.num("iteration")?,
        },
        "iteration_finished" => SolveEvent::IterationFinished {
            iteration: fields.num("iteration")?,
            value: fields.num("value")?,
            feasible: fields.bool("feasible")?,
            improved: fields.bool("improved")?,
        },
        "run_completed" => SolveEvent::RunCompleted {
            run: fields.num("run")?,
            value: fields.num("value")?,
            feasible: fields.bool("feasible")?,
        },
        "solve_finished" => SolveEvent::SolveFinished {
            iterations: fields.num("iterations")?,
            value: fields.num("value")?,
            feasible: fields.bool("feasible")?,
        },
        "level_coarsened" => SolveEvent::LevelCoarsened {
            level: fields.num("level")?,
            from_components: fields.num("from_components")?,
            to_components: fields.num("to_components")?,
        },
        "level_refined" => SolveEvent::LevelRefined {
            level: fields.num("level")?,
            value: fields.num("value")?,
            improved: fields.bool("improved")?,
        },
        "parallel_batch" => SolveEvent::ParallelBatch {
            iteration: fields.num("iteration")?,
            phase: BatchPhase::from_str(fields.str("phase")?)
                .ok_or(TraceParseError::BadField("phase"))?,
            tasks: fields.num("tasks")?,
            threads: fields.num("threads")?,
        },
        "eta_fallback" => SolveEvent::EtaFallback {
            iteration: fields.num("iteration")?,
            reason: EtaFallbackReason::from_str(fields.str("reason")?)
                .ok_or(TraceParseError::BadField("reason"))?,
        },
        "delta_applied" => SolveEvent::DeltaApplied {
            delta: fields.num("delta")?,
            ops: fields.num("ops")?,
            patched_rows: fields.num("patched_rows")?,
            rebuilt: fields.bool("rebuilt")?,
        },
        "warm_solve" => SolveEvent::WarmSolve {
            delta: fields.num("delta")?,
            dirty: fields.num("dirty")?,
            escalated: fields.bool("escalated")?,
            value: fields.num("value")?,
            feasible: fields.bool("feasible")?,
        },
        "budget_exhausted" => SolveEvent::BudgetExhausted {
            iteration: fields.num("iteration")?,
        },
        "cancelled" => SolveEvent::Cancelled {
            iteration: fields.num("iteration")?,
        },
        "worker_panicked" => SolveEvent::WorkerPanicked {
            run: fields.num("run")?,
        },
        "auto_configured" => SolveEvent::AutoConfigured {
            cores: fields.num("cores")?,
            ram_mb: fields.num("ram_mb")?,
            threads: fields.num("threads")?,
            levels: fields.num("levels")?,
            min_size: fields.num("min_size")?,
            width: fields.num("width")?,
        },
        other => return Err(TraceParseError::UnknownEvent(other.to_string())),
    };
    Ok(TraceRecord { t_ns, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_by_class() {
        let mut c = CountersObserver::new();
        c.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Qbp,
            components: 4,
            partitions: 2,
        });
        for k in 1..=3 {
            c.on_event(&SolveEvent::IterationStarted { iteration: k });
            c.on_event(&SolveEvent::EtaComputed {
                iteration: k,
                incremental: k > 1,
            });
            c.on_event(&SolveEvent::SubproblemSolved {
                iteration: k,
                kind: SubproblemKind::Gap,
                cost: 1.0,
                feasible: k != 2,
            });
        }
        c.on_event(&SolveEvent::PenaltyHits {
            iteration: 3,
            violations: 5,
        });
        c.on_event(&SolveEvent::RepairApplied {
            iteration: 3,
            cleaned: true,
        });
        c.on_event(&SolveEvent::StallReset { iteration: 3 });
        c.on_event(&SolveEvent::ProfileUpdated {
            iteration: 1,
            rebuilt: true,
            moved: 4,
        });
        c.on_event(&SolveEvent::ProfileUpdated {
            iteration: 2,
            rebuilt: false,
            moved: 1,
        });
        c.on_event(&SolveEvent::ParallelBatch {
            iteration: 1,
            phase: BatchPhase::Eta,
            tasks: 4,
            threads: 4,
        });
        c.on_event(&SolveEvent::ParallelBatch {
            iteration: 2,
            phase: BatchPhase::Sweep,
            tasks: 2,
            threads: 2,
        });
        c.on_event(&SolveEvent::EtaFallback {
            iteration: 1,
            reason: EtaFallbackReason::Cold,
        });
        c.on_event(&SolveEvent::EtaFallback {
            iteration: 3,
            reason: EtaFallbackReason::Stall,
        });
        let s = c.snapshot();
        assert_eq!(s.solves, 1);
        assert_eq!(s.iterations, 3);
        assert_eq!(s.eta_full, 1);
        assert_eq!(s.eta_incremental, 2);
        assert_eq!(s.gap_calls, 3);
        assert_eq!(s.lap_calls, 0);
        assert_eq!(s.infeasible_subproblems, 1);
        assert_eq!(s.penalty_hits, 5);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.repairs_cleaned, 1);
        assert_eq!(s.stall_resets, 1);
        assert_eq!(s.profile_rebuilds, 1);
        assert_eq!(s.profile_patches, 1);
        assert_eq!(s.parallel_batches, 2);
        assert_eq!(s.parallel_tasks, 6);
        assert_eq!(s.threads_used, 4);
        assert_eq!(s.eta_fallback_cold, 1);
        assert_eq!(s.eta_fallback_stall, 1);
        assert_eq!(s.eta_fallback_moved, 0);
    }

    #[test]
    fn progress_tracks_strict_feasible_improvements() {
        let mut p = ProgressObserver::new();
        let fin = |iteration, value, feasible| SolveEvent::IterationFinished {
            iteration,
            value,
            feasible,
            improved: false,
        };
        p.on_event(&fin(1, 100, true));
        p.on_event(&fin(2, 100, true)); // tie: not an improvement
        p.on_event(&fin(3, 40, false)); // infeasible: ignored
        p.on_event(&fin(4, 70, true));
        assert_eq!(p.best(), Some(70));
        assert_eq!(
            p.curve(),
            &[
                ProgressPoint {
                    iteration: 1,
                    value: 100
                },
                ProgressPoint {
                    iteration: 4,
                    value: 70
                }
            ]
        );
    }

    #[test]
    fn trace_observer_writes_parseable_jsonl() {
        let mut trace = TraceObserver::new(Vec::new());
        trace.on_event(&SolveEvent::SolveStarted {
            solver: SolverId::Gkl,
            components: 6,
            partitions: 3,
        });
        trace.on_event(&SolveEvent::MoveEvaluated {
            iteration: 1,
            kind: MoveKind::Swap,
            delta: -4,
            accepted: true,
        });
        assert_eq!(trace.lines_written(), 2);
        let buf = trace.finish().expect("no io error");
        let text = String::from_utf8(buf).expect("utf8");
        let records: Vec<TraceRecord> = text
            .lines()
            .map(|l| parse_trace_line(l).expect("parses"))
            .collect();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            records[0].event,
            SolveEvent::SolveStarted {
                solver: SolverId::Gkl,
                components: 6,
                partitions: 3
            }
        ));
        // Timestamps are monotonic.
        assert!(records[0].t_ns <= records[1].t_ns);
    }

    #[test]
    fn tee_delivers_to_all_sinks() {
        let mut a = CountersObserver::new();
        let mut b = ProgressObserver::new();
        {
            let mut tee = TeeObserver::new();
            tee.push(&mut a);
            tee.push(&mut b);
            tee.on_event(&SolveEvent::IterationFinished {
                iteration: 1,
                value: 9,
                feasible: true,
                improved: true,
            });
        }
        assert_eq!(a.snapshot().improvements, 1);
        assert_eq!(b.best(), Some(9));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_trace_line("not json").is_err());
        assert!(parse_trace_line("{\"t_ns\": 1}").is_err()); // no event
        assert!(parse_trace_line("{\"t_ns\": 1, \"event\": \"nope\"}").is_err());
        assert!(
            parse_trace_line("{\"t_ns\": 1, \"event\": \"iteration_started\"}").is_err(),
            "missing iteration field"
        );
    }

    #[test]
    fn counter_snapshot_json_is_flat_and_complete() {
        let json = CounterSnapshot::default().to_json();
        for key in [
            "solves",
            "iterations",
            "eta_full",
            "eta_incremental",
            "profile_rebuilds",
            "profile_patches",
            "gap_calls",
            "lap_calls",
            "penalty_hits",
            "repairs",
            "stall_resets",
            "moves_accepted",
            "moves_rejected",
            "runs",
            "levels_coarsened",
            "levels_refined",
            "parallel_batches",
            "parallel_tasks",
            "threads_used",
            "eco_deltas",
            "eco_patched_rows",
            "eco_rebuilds",
        ] {
            assert!(json.contains(key), "snapshot json lacks {key}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The vendored proptest stub has no `prop_oneof!`/`any::<T>()`, so
    /// events are assembled from a variant index plus one shared field
    /// tuple. `delta` doubles as the f64 `cost` source via an exact `/8.0`
    /// so the float round trip stays bit-precise.
    fn arb_event() -> impl Strategy<Value = SolveEvent> {
        (
            (0usize..22, 0usize..6, 0usize..2),
            (1usize..10_000, 0usize..500, 1usize..64, 0usize..10_000),
            (
                -1_000_000_000_000i64..1_000_000_000_000,
                proptest::bool::ANY,
                proptest::bool::ANY,
                proptest::bool::ANY,
            ),
        )
            .prop_map(
                |(
                    (variant, solver_idx, kind_idx),
                    (iteration, components, partitions, violations),
                    (delta, b1, b2, b3),
                )| {
                    let solver = [
                        SolverId::Qbp,
                        SolverId::Qap,
                        SolverId::Gfm,
                        SolverId::Gkl,
                        SolverId::Anneal,
                        SolverId::Mlqbp,
                    ][solver_idx];
                    let sub_kind = [SubproblemKind::Gap, SubproblemKind::Lap][kind_idx];
                    let move_kind = [MoveKind::Shift, MoveKind::Swap][kind_idx];
                    let cost = delta as f64 / 8.0;
                    match variant {
                        0 => SolveEvent::SolveStarted {
                            solver,
                            components,
                            partitions,
                        },
                        1 => SolveEvent::IterationStarted { iteration },
                        2 => SolveEvent::EtaComputed {
                            iteration,
                            incremental: b1,
                        },
                        3 => SolveEvent::SubproblemSolved {
                            iteration,
                            kind: sub_kind,
                            cost,
                            feasible: b1,
                        },
                        4 => SolveEvent::PenaltyHits {
                            iteration,
                            violations,
                        },
                        5 => SolveEvent::RepairApplied {
                            iteration,
                            cleaned: b1,
                        },
                        6 => SolveEvent::MoveEvaluated {
                            iteration,
                            kind: move_kind,
                            delta,
                            accepted: b1,
                        },
                        7 => SolveEvent::StallReset { iteration },
                        8 => SolveEvent::IterationFinished {
                            iteration,
                            value: delta,
                            feasible: b2,
                            improved: b3,
                        },
                        9 => SolveEvent::RunCompleted {
                            run: violations,
                            value: delta,
                            feasible: b2,
                        },
                        10 => SolveEvent::SolveFinished {
                            iterations: iteration,
                            value: delta,
                            feasible: b2,
                        },
                        11 => SolveEvent::LevelCoarsened {
                            level: iteration,
                            from_components: components,
                            to_components: violations,
                        },
                        12 => SolveEvent::LevelRefined {
                            level: iteration,
                            value: delta,
                            improved: b1,
                        },
                        13 => SolveEvent::ParallelBatch {
                            iteration,
                            phase: [
                                BatchPhase::Eta,
                                BatchPhase::ProfileSync,
                                BatchPhase::GainTable,
                                BatchPhase::Sweep,
                                BatchPhase::Gap,
                                BatchPhase::Repair,
                            ][solver_idx],
                            tasks: partitions,
                            threads: components,
                        },
                        14 => SolveEvent::ProfileUpdated {
                            iteration,
                            rebuilt: b1,
                            moved: violations,
                        },
                        15 => SolveEvent::DeltaApplied {
                            delta: iteration,
                            ops: partitions,
                            patched_rows: components,
                            rebuilt: b1,
                        },
                        16 => SolveEvent::WarmSolve {
                            delta: iteration,
                            dirty: components,
                            escalated: b1,
                            value: delta,
                            feasible: b2,
                        },
                        17 => SolveEvent::BudgetExhausted { iteration },
                        18 => SolveEvent::Cancelled { iteration },
                        19 => SolveEvent::WorkerPanicked { run: violations },
                        21 => SolveEvent::EtaFallback {
                            iteration,
                            reason: [
                                EtaFallbackReason::Cold,
                                EtaFallbackReason::Stall,
                                EtaFallbackReason::MovedFraction,
                            ][solver_idx % 3],
                        },
                        _ => SolveEvent::AutoConfigured {
                            cores: partitions,
                            ram_mb: violations as u64,
                            threads: partitions,
                            levels: iteration.min(12),
                            min_size: components,
                            width: partitions,
                        },
                    }
                },
            )
    }

    proptest! {
        #[test]
        fn trace_lines_round_trip(t_ns in 0u64..u64::MAX, event in arb_event()) {
            let line = trace_line(t_ns, &event);
            prop_assert!(line.ends_with('\n'));
            let record = parse_trace_line(&line).expect("round trip parses");
            prop_assert_eq!(record.t_ns, t_ns);
            prop_assert_eq!(record.event, event);
        }

        #[test]
        fn trace_observer_stream_round_trips(events in proptest::collection::vec(arb_event(), 1..40)) {
            let mut trace = TraceObserver::new(Vec::new());
            for e in &events {
                trace.on_event(e);
            }
            let buf = trace.finish().expect("no io error");
            let text = String::from_utf8(buf).expect("utf8");
            let parsed: Vec<SolveEvent> = text
                .lines()
                .map(|l| parse_trace_line(l).expect("parses").event)
                .collect();
            prop_assert_eq!(parsed, events);
        }
    }
}
