//! Ctrl-C → cooperative cancellation.
//!
//! `qbp solve` and `qbp eco` install a SIGINT handler that flips one static
//! flag; the solvers watch it through a [`CancelToken`] at their iteration
//! boundaries, finish the current iteration, and return the best feasible
//! assignment found so far. The CLI then writes that assignment and exits
//! 130 (the conventional `128 + SIGINT`). A *second* Ctrl-C restores the
//! default disposition, so an unresponsive run can still be killed.
//!
//! Only the raw `signal(2)` entry point is used — setting a handler that
//! stores to an `AtomicBool` is async-signal-safe and needs no extra
//! dependency. On non-Unix targets the returned token simply never fires.

use qbp_core::CancelToken;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the first SIGINT; read by [`super::install`]'s token.
    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    /// `SIGINT` on every Unix the workspace targets.
    const SIGINT: i32 = 2;
    /// `SIG_DFL` — the default disposition (terminate).
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(sig: i32) {
        INTERRUPTED.store(true, Ordering::Relaxed);
        // Second Ctrl-C kills: restore the default disposition from inside
        // the handler (signal(2) is async-signal-safe).
        unsafe {
            signal(sig, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

/// Installs the SIGINT handler (idempotent) and returns the token the
/// solvers should poll. On non-Unix targets no handler is installed and the
/// token never fires.
pub fn install() -> CancelToken {
    #[cfg(unix)]
    {
        imp::install();
        CancelToken::from_static(&imp::INTERRUPTED)
    }
    #[cfg(not(unix))]
    {
        CancelToken::new()
    }
}
