//! `qbp` — command-line performance-driven partitioner, as a library.
//!
//! The binary in `main.rs` is a thin shell over this crate; the pieces live
//! here so other workspace tools (the bench harness's `tables` and
//! `perf_snapshot` binaries) can reuse the same flag parser and typed
//! accessors instead of re-implementing `--seed`/`--runs`/`--threads`
//! handling with drifting defaults.
//!
//! Problem and assignment files use the text formats documented in
//! [`qbp_core::io`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;

/// Usage text shared by `qbp help` and error paths.
pub const USAGE: &str = "\
qbp — performance-driven system partitioning (Shih & Kuh, DAC'93)

USAGE:
  qbp solve <problem.qbp> [--method qbp|qap|gfm|gkl|anneal|mlqbp]
            [--iterations N] [--seed S] [--runs R] [--threads T]
            [--stall-window W] [--ml-levels L] [--ml-min-size K]
            [--initial file] [--output file] [--quiet]
            [--trace file.jsonl] [--counters]

  --runs R        multistart restarts for --method qbp (winner is the best
                  run; deterministic for a fixed seed regardless of threads)
  --threads T     worker threads for the multistart (0 = all cores)
  --stall-window W  stall-detection window for qbp/qap (0 disables restarts)
  --ml-levels L   max coarsening levels for --method mlqbp (default 8)
  --ml-min-size K stop coarsening at K components for --method mlqbp
                  (default 64)
  --trace FILE    write the solver's event stream as JSON Lines to FILE
  --counters      print aggregate event counters as JSON on stderr
  qbp check <problem.qbp> <assignment.txt>
  qbp feasible <problem.qbp> [--seed S] [--output file]
  qbp gen <ckta|cktb|cktc|cktd|ckte|cktf|cktg|qap> [--scale F] [--seed S]
            [--size N] [--output file]
  qbp stats <problem.qbp>

Problem files use the `.qbp` text format (see the qbp-core::io docs).
";

/// Boolean flags (no value) understood by the CLI; pass to
/// [`args::Args::parse`].
pub const SWITCHES: &[&str] = &["quiet", "no-timing", "counters"];
