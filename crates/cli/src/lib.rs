//! `qbp` — command-line performance-driven partitioner, as a library.
//!
//! The binary in `main.rs` is a thin shell over this crate; the pieces live
//! here so other workspace tools (the bench harness's `tables` and
//! `perf_snapshot` binaries) can reuse the same flag parser and typed
//! accessors instead of re-implementing `--seed`/`--runs`/`--threads`
//! handling with drifting defaults.
//!
//! Problem and assignment files use the text formats documented in
//! [`qbp_core::io`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod interrupt;

use qbp_core::QbpError;
use std::process::ExitCode;

/// Usage text shared by `qbp help` and error paths.
pub const USAGE: &str = "\
qbp — performance-driven system partitioning (Shih & Kuh, DAC'93)

USAGE:
  qbp solve <problem.qbp> [--method qbp|qap|gfm|gkl|anneal|mlqbp]
            [--iterations N] [--seed S] [--runs R] [--threads T]
            [--stall-window W] [--mlqbp-levels L] [--mlqbp-min-size K]
            [--auto] [--initial file] [--output file] [--quiet]
            [--trace file.jsonl] [--counters] [--time-limit-ms MS]

  --runs R        multistart restarts for --method qbp (winner is the best
                  run; deterministic for a fixed seed regardless of threads)
  --threads T     worker threads for the multistart (0 = all cores)
  --auto          derive unset knobs (--threads, --runs, --mlqbp-levels,
                  --mlqbp-min-size) from the detected host (cores, available
                  RAM) and the problem size; explicit flags always win. The
                  chosen profile is recorded in the JSONL trace as an
                  auto_configured event.
  --stall-window W  stall-detection window for qbp/qap (0 disables restarts)
  --mlqbp-levels L   max coarsening levels for --method mlqbp (default 8)
  --mlqbp-min-size K stop coarsening at K components for --method mlqbp
                  (default 64; --ml-levels/--ml-min-size are deprecated
                  aliases)
  --trace FILE    write the solver's event stream as JSON Lines to FILE
  --counters      print aggregate event counters as JSON on stderr
  --time-limit-ms MS  deadline for the whole solve: when it expires the
                  solver stops at the next iteration boundary and the best
                  feasible assignment found so far is written, with
                  status: \"timed_out\" reported on stderr (also accepted
                  by `qbp eco`, where the script stops between lines)
  Ctrl-C (SIGINT) cancels cooperatively the same way: the current best
                  feasible assignment is written and the exit code is 130
                  (a second Ctrl-C kills immediately)

  qbp eco <problem.qbp> --script <edits.jsonl>
            [--eco-rebuild-threshold PCT] [--eco-penalty B]
            [--eco-refresh-every K]
            [--iterations N] [--seed S] [--initial file] [--output file]
            [--quiet] [--trace file.jsonl] [--counters] [--time-limit-ms MS]

  --script FILE   JSONL edit script: one op per line, e.g.
                  {\"op\": \"reweight_pair\", \"a\": 3, \"b\": 17, \"weight\": 9}
                  (see the qbp-eco::script docs for the op taxonomy)
  --eco-rebuild-threshold PCT  rebuild instead of patching when a delta
                  touches at least PCT% of all rows (default 75)
  --eco-penalty B freeze the timing penalty at B instead of auto-resolving
  --eco-refresh-every K  re-anchor quality with a capped full solve every
                  K edits (default 32; 0 disables)

  qbp check <problem.qbp> <assignment.txt>
  qbp feasible <problem.qbp> [--seed S] [--output file]
  qbp gen <ckta|cktb|cktc|cktd|ckte|cktf|cktg|qap> [--scale F] [--seed S]
            [--size N] [--output file]
            [--eco-script file.jsonl] [--eco-edits N]
  qbp gen --gen-clustered --components N [--cluster-size C] [--seed S]
            [--output file]
                  stream a seeded clustered circuit (intra-cluster rings and
                  chords, sparse inter-cluster links) of N components; edges
                  are written as they are generated, so million-component
                  files need only constant working memory (`clustered` as
                  the instance name does the same)
  qbp stats <problem.qbp>

EXIT CODES:
  0 success; 2 result infeasible; 64 usage error; 65 parse error;
  66 file I/O error; 67 invalid model; 70 internal error (worker panic);
  130 interrupted (SIGINT; best-so-far assignment is still written)

Problem files use the `.qbp` text format (see the qbp-core::io docs).
";

/// Exit code for a usage error (mirrors BSD `EX_USAGE`).
pub const EXIT_USAGE: u8 = 64;
/// Exit code for a malformed problem/assignment/script file (`EX_DATAERR`).
pub const EXIT_PARSE: u8 = 65;
/// Exit code for a file read/write failure (`EX_NOINPUT`).
pub const EXIT_IO: u8 = 66;
/// Exit code for a semantically invalid model (capacity overflow, bad ids).
pub const EXIT_MODEL: u8 = 67;
/// Exit code for an internal failure, e.g. an isolated worker panic
/// (mirrors BSD `EX_SOFTWARE`).
pub const EXIT_INTERNAL: u8 = 70;
/// Exit code after a cooperative SIGINT cancellation (`128 + SIGINT`); the
/// best-so-far assignment is written before exiting.
pub const EXIT_INTERRUPTED: u8 = 130;

/// Maps an error's *kind* to the CLI's exit code, so scripts can branch on
/// what failed without parsing stderr.
pub fn exit_code_for(err: &QbpError) -> ExitCode {
    ExitCode::from(match err {
        QbpError::Usage(_) => EXIT_USAGE,
        QbpError::Parse(_) => EXIT_PARSE,
        QbpError::Io { .. } => EXIT_IO,
        QbpError::Model(_) => EXIT_MODEL,
        QbpError::Internal(_) => EXIT_INTERNAL,
        _ => 1,
    })
}

/// Boolean flags (no value) understood by the CLI; pass to
/// [`args::Args::parse`].
pub const SWITCHES: &[&str] = &["quiet", "no-timing", "counters", "auto", "gen-clustered"];
