//! Minimal flag parser for the CLI — no external dependencies, just
//! `--flag value` pairs and positionals, with typed accessors.
//!
//! The solver-facing accessors ([`Args::common_opts`], [`Args::runs`]) are
//! the single source of truth for the shared flags' names and defaults;
//! `solve` and the bench binaries all parse through them, so the defaults
//! cannot drift apart again.

use qbp_core::QbpError;
use qbp_solver::CommonOpts;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Mutex;

/// Default RNG seed for every driver: the paper's publication year.
pub const DEFAULT_SEED: u64 = 1993;

/// A parsed command line: positionals in order, flags as key → value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// `--flag` appeared at the end with no value (and is not a known
    /// switch).
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// What was expected.
        expected: &'static str,
        /// The value found.
        found: String,
    },
    /// A required flag or positional was absent.
    Missing(&'static str),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgsError::BadValue {
                flag,
                expected,
                found,
            } => write!(f, "flag --{flag}: expected {expected}, got `{found}`"),
            ArgsError::Missing(what) => write!(f, "missing required {what}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl From<ArgsError> for QbpError {
    fn from(e: ArgsError) -> Self {
        QbpError::Usage(e.to_string())
    }
}

/// Deprecated flag names that have already warned, so each alias warns at
/// most once per process however many commands parse it.
static WARNED_ALIASES: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

impl Args {
    /// Parses raw arguments. `switch_names` lists boolean flags that take no
    /// value.
    ///
    /// # Errors
    ///
    /// Returns an error when a value-taking flag ends the argument list.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        switch_names: &[&str],
    ) -> Result<Self, ArgsError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if switch_names.contains(&name) {
                    out.switches.push(name.to_string());
                } else {
                    match iter.next() {
                        Some(v) => {
                            out.flags.insert(name.to_string(), v);
                        }
                        None => return Err(ArgsError::MissingValue(name.to_string())),
                    }
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional argument at `index`.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// Required positional argument.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Missing`] when absent.
    pub fn required(&self, index: usize, what: &'static str) -> Result<&str, ArgsError> {
        self.positional(index).ok_or(ArgsError::Missing(what))
    }

    /// String flag value.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Typed flag value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                expected,
                found: v.clone(),
            }),
        }
    }

    /// Typed flag value that may be absent (no default to fall back on).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_parsed_opt<T: std::str::FromStr>(
        &self,
        flag: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgsError> {
        match self.flags.get(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                expected,
                found: v.clone(),
            }),
        }
    }

    /// Typed optional flag under its method-scoped canonical name, also
    /// accepting a deprecated alias that warns once per process on stderr.
    /// The canonical name wins when both are given.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when the winning flag fails to parse.
    pub fn get_parsed_opt_aliased<T: std::str::FromStr>(
        &self,
        canonical: &'static str,
        deprecated: &'static str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgsError> {
        if let Some(v) = self.get_parsed_opt(canonical, expected)? {
            return Ok(Some(v));
        }
        if self.get(deprecated).is_some() {
            let mut warned = WARNED_ALIASES.lock().expect("alias registry lock");
            if warned.insert(deprecated) {
                eprintln!(
                    "warning: --{deprecated} is deprecated; use --{canonical}"
                );
            }
            return self.get_parsed_opt(deprecated, expected);
        }
        Ok(None)
    }

    /// The shared solver knobs: `--seed` (default [`DEFAULT_SEED`]),
    /// `--iterations`, `--stall-window` (absent = keep the method's
    /// default), and `--threads` (default 0 = all cores).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when any flag fails to parse.
    pub fn common_opts(&self) -> Result<CommonOpts, ArgsError> {
        Ok(CommonOpts {
            seed: self.get_parsed("seed", DEFAULT_SEED, "an integer")?,
            iterations: self.get_parsed_opt("iterations", "an integer")?,
            stall_window: self.get_parsed_opt("stall-window", "an integer (0 disables)")?,
            threads: self.get_parsed("threads", 0usize, "an integer (0 = all cores)")?,
        })
    }

    /// `--runs` (default 1), rejecting 0.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when unparsable or 0.
    pub fn runs(&self) -> Result<usize, ArgsError> {
        match self.get_parsed("runs", 1usize, "an integer >= 1")? {
            0 => Err(ArgsError::BadValue {
                flag: "runs".to_string(),
                expected: "an integer >= 1",
                found: "0".to_string(),
            }),
            r => Ok(r),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Number of positionals.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str], switches: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(tokens.iter().map(|s| s.to_string()), switches)
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(
            &["solve", "file.qbp", "--method", "gfm", "--seed", "7"],
            &[],
        )
        .expect("parses");
        assert_eq!(a.positional(0), Some("solve"));
        assert_eq!(a.positional(1), Some("file.qbp"));
        assert_eq!(a.get("method"), Some("gfm"));
        assert_eq!(a.get_parsed("seed", 0u64, "int").expect("u64"), 7);
        assert_eq!(a.get_parsed("iterations", 100usize, "int").expect("usize"), 100);
    }

    #[test]
    fn switches_take_no_value() {
        let a = parse(&["check", "--quiet", "f.qbp"], &["quiet"]).expect("parses");
        assert!(a.switch("quiet"));
        assert_eq!(a.positional(1), Some("f.qbp"));
    }

    #[test]
    fn trailing_flag_without_value_is_error() {
        assert_eq!(
            parse(&["solve", "--seed"], &[]),
            Err(ArgsError::MissingValue("seed".into()))
        );
    }

    #[test]
    fn bad_typed_value_is_error() {
        let a = parse(&["--seed", "abc"], &[]).expect("parses");
        assert!(matches!(
            a.get_parsed("seed", 0u64, "an integer"),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn aliased_flags_prefer_canonical() {
        let a = parse(
            &["solve", "--mlqbp-levels", "3", "--ml-levels", "9"],
            &[],
        )
        .expect("parses");
        assert_eq!(
            a.get_parsed_opt_aliased::<usize>("mlqbp-levels", "ml-levels", "an integer")
                .expect("parses"),
            Some(3),
            "canonical name wins over the deprecated alias"
        );
        let a = parse(&["solve", "--ml-min-size", "7"], &[]).expect("parses");
        assert_eq!(
            a.get_parsed_opt_aliased::<usize>("mlqbp-min-size", "ml-min-size", "an integer")
                .expect("parses"),
            Some(7),
            "deprecated alias still works"
        );
        let a = parse(&["solve"], &[]).expect("parses");
        assert_eq!(
            a.get_parsed_opt_aliased::<usize>("mlqbp-levels", "ml-levels", "an integer")
                .expect("parses"),
            None
        );
    }

    #[test]
    fn args_error_lifts_to_usage() {
        let e: QbpError = ArgsError::Missing("problem file").into();
        assert!(matches!(e, QbpError::Usage(_)));
        assert!(e.to_string().contains("problem file"));
    }

    #[test]
    fn required_positional() {
        let a = parse(&["solve"], &[]).expect("parses");
        assert!(a.required(0, "command").is_ok());
        assert_eq!(
            a.required(1, "problem file"),
            Err(ArgsError::Missing("problem file"))
        );
    }
}
