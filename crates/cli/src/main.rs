//! `qbp` — command-line performance-driven partitioner.
//!
//! ```text
//! qbp solve <problem.qbp> [--method qbp|gfm|gkl] [--iterations N]
//!           [--seed S] [--runs R] [--threads T]
//!           [--initial assignment.txt] [--output assignment.txt]
//! qbp check <problem.qbp> <assignment.txt>
//! qbp feasible <problem.qbp> [--seed S] [--output assignment.txt]
//! qbp gen <ckta..cktg|qap> [--scale F] [--seed S] [--output problem.qbp]
//! qbp stats <problem.qbp>
//! ```
//!
//! Problem and assignment files use the text formats documented in
//! [`qbp_core::io`].

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
qbp — performance-driven system partitioning (Shih & Kuh, DAC'93)

USAGE:
  qbp solve <problem.qbp> [--method qbp|gfm|gkl] [--iterations N]
            [--seed S] [--runs R] [--threads T]
            [--initial file] [--output file] [--quiet]

  --runs R     multistart restarts for --method qbp (winner is the best
               run; deterministic for a fixed seed regardless of threads)
  --threads T  worker threads for the multistart (0 = all cores)
  qbp check <problem.qbp> <assignment.txt>
  qbp feasible <problem.qbp> [--seed S] [--output file]
  qbp gen <ckta|cktb|cktc|cktd|ckte|cktf|cktg|qap> [--scale F] [--seed S]
            [--size N] [--output file]
  qbp stats <problem.qbp>

Problem files use the `.qbp` text format (see the qbp-core::io docs).
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw, &["quiet", "no-timing"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.positional(0) {
        Some("solve") => commands::solve(&args),
        Some("check") => commands::check(&args),
        Some("feasible") => commands::feasible(&args),
        Some("gen") => commands::generate(&args),
        Some("stats") => commands::stats(&args),
        Some("help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
