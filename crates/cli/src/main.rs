//! `qbp` — command-line performance-driven partitioner. See [`qbp_cli`] for
//! the implementation; this binary only dispatches subcommands.

use qbp_cli::args::Args;
use qbp_cli::{commands, exit_code_for, EXIT_USAGE, SWITCHES, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw, SWITCHES) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let result = match args.positional(0) {
        Some("solve") => commands::solve(&args),
        Some("eco") => commands::eco(&args),
        Some("check") => commands::check(&args),
        Some("feasible") => commands::feasible(&args),
        Some("gen") => commands::generate(&args),
        Some("stats") => commands::stats(&args),
        Some("help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            exit_code_for(&e)
        }
    }
}
