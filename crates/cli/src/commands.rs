//! Implementations of the CLI subcommands.

use crate::args::Args;
use qbp_core::io::{parse_assignment, parse_problem, write_assignment, write_problem};
use qbp_core::{check_feasibility, Assignment, ComponentId, Evaluator, Problem};
use qbp_multilevel::{build_solver, MlqbpConfig, MlqbpSolver, SOLVER_NAMES};
use qbp_observe::{CountersObserver, SolveObserver, TeeObserver, TraceObserver};
use qbp_solver::{
    greedy_first_fit, moved_from, CommonOpts, Configure, QbpConfig, QbpSolver, SolveReport,
};
use std::error::Error;
use std::fs::{self, File};
use std::io::BufWriter;
use std::process::ExitCode;

type CommandResult = Result<ExitCode, Box<dyn Error>>;

fn load_problem(path: &str) -> Result<Problem, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(parse_problem(&text).map_err(|e| format!("parsing {path}: {e}"))?)
}

fn emit(output: Option<&str>, contents: &str) -> Result<(), Box<dyn Error>> {
    match output {
        Some(path) => {
            fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))?;
        }
        None => print!("{contents}"),
    }
    Ok(())
}

/// `qbp solve` — run one method on a problem file, optionally streaming the
/// solver's event trace (`--trace file.jsonl`) and printing aggregate event
/// counters (`--counters`).
pub fn solve(args: &Args) -> CommandResult {
    let path = args.required(1, "problem file")?;
    let problem = load_problem(path)?;
    let method = args.get("method").unwrap_or("qbp").to_lowercase();
    let opts = args.common_opts()?;
    let runs = args.runs()?;
    let ml = MlFlags {
        levels: args.get_parsed_opt("ml-levels", "an integer")?,
        min_size: args.get_parsed_opt("ml-min-size", "an integer")?,
    };
    let quiet = args.switch("quiet");

    let initial = match args.get("initial") {
        Some(p) => {
            let text = fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
            Some(parse_assignment(&text, &problem, false).map_err(|e| format!("parsing {p}: {e}"))?)
        }
        None => None,
    };

    // Observers: counters and/or a JSONL trace, fed through one tee. The
    // tee borrows both, so it lives in an inner scope.
    let use_counters = args.switch("counters");
    let mut counters_sink = CountersObserver::new();
    let mut trace = match args.get("trace") {
        Some(p) => {
            let file = File::create(p).map_err(|e| format!("creating {p}: {e}"))?;
            Some(TraceObserver::new(BufWriter::new(file)))
        }
        None => None,
    };

    let report = {
        let mut tee = TeeObserver::new();
        if use_counters {
            tee.push(&mut counters_sink);
        }
        if let Some(t) = trace.as_mut() {
            tee.push(t);
        }
        run_method(&problem, &method, &opts, runs, &ml, initial.as_ref(), &mut tee)?
    };

    let label = method.to_uppercase();
    if !report.feasible {
        eprintln!(
            "warning: {label} found no fully feasible solution; best has {} timing violation(s)",
            check_feasibility(&problem, &report.assignment).timing.len()
        );
    }
    if use_counters {
        eprintln!("{}", counters_sink.snapshot().to_json());
    }
    if let Some(t) = trace {
        t.finish().map_err(|e| format!("writing trace: {e}"))?;
    }

    let feas = check_feasibility(&problem, &report.assignment);
    if !quiet {
        eprintln!(
            "{label}: cost = {}, feasible = {}",
            Evaluator::new(&problem).cost(&report.assignment),
            feas.is_feasible()
        );
    }
    emit(args.get("output"), &write_assignment(&problem, &report.assignment))?;
    Ok(if feas.is_feasible() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// The multilevel-only tuning flags, parsed whether or not `--method mlqbp`
/// was chosen so that stray uses on other methods are rejected loudly.
struct MlFlags {
    levels: Option<usize>,
    min_size: Option<usize>,
}

/// Dispatches one solve through the method registry (or the qbp multistart
/// driver when `--runs` asks for more than one), behind `&dyn Solver`.
fn run_method(
    problem: &Problem,
    method: &str,
    opts: &CommonOpts,
    runs: usize,
    ml: &MlFlags,
    initial: Option<&Assignment>,
    obs: &mut dyn SolveObserver,
) -> Result<SolveReport, Box<dyn Error>> {
    if method != "mlqbp" && (ml.levels.is_some() || ml.min_size.is_some()) {
        return Err("--ml-levels/--ml-min-size only apply to --method mlqbp".into());
    }
    if runs > 1 {
        if method != "qbp" {
            return Err(format!("--runs {runs} only applies to --method qbp").into());
        }
        let solver = QbpSolver::new(QbpConfig::default().with_common(opts));
        let out = solver.solve_multistart_observed(problem, initial, runs, obs)?;
        return Ok(SolveReport {
            solver: "qbp",
            moves_applied: moved_from(initial, &out.assignment),
            objective: out.objective,
            embedded_value: Some(out.embedded_value),
            feasible: out.feasible,
            iterations: out.iterations,
            elapsed: out.elapsed,
            assignment: out.assignment,
        });
    }
    if method == "mlqbp" {
        let mut config = MlqbpConfig::default().with_common(opts);
        if let Some(levels) = ml.levels {
            config.max_levels = levels;
        }
        if let Some(min_size) = ml.min_size {
            config.min_size = min_size;
        }
        return Ok(MlqbpSolver::new(config).solve_observed(problem, initial, obs)?);
    }
    let solver = build_solver(method, opts).ok_or_else(|| {
        format!("unknown method `{method}` (use {})", SOLVER_NAMES.join(", "))
    })?;
    Ok(solver.solve(problem, initial, obs)?)
}

fn find_start(problem: &Problem, seed: u64) -> Result<Assignment, Box<dyn Error>> {
    if let Some(a) = QbpSolver::new(QbpConfig {
        iterations: 60,
        seed,
        ..QbpConfig::default()
    })
    .find_feasible(problem)?
    {
        return Ok(a);
    }
    if let Some(a) = greedy_first_fit(problem, seed, 200) {
        return Ok(a);
    }
    Err("no feasible initial solution found (GFM/GKL need one; try `qbp solve --method qbp`)".into())
}

/// `qbp check` — audit an assignment against a problem.
pub fn check(args: &Args) -> CommandResult {
    if args.positional_count() > 3 {
        return Err("check takes exactly two files: <problem.qbp> <assignment.txt>".into());
    }
    let problem = load_problem(args.required(1, "problem file")?)?;
    let asg_path = args.required(2, "assignment file")?;
    let text = fs::read_to_string(asg_path).map_err(|e| format!("reading {asg_path}: {e}"))?;
    let assignment =
        parse_assignment(&text, &problem, false).map_err(|e| format!("parsing {asg_path}: {e}"))?;
    let eval = Evaluator::new(&problem);
    let report = check_feasibility(&problem, &assignment);
    println!("cost      {}", eval.cost(&assignment));
    println!("  linear    {}", eval.linear_cost(&assignment));
    println!("  quadratic {}", eval.quadratic_cost(&assignment));
    println!("capacity violations: {}", report.capacity.len());
    for v in &report.capacity {
        println!("  partition {}: {} used / {} capacity", v.partition, v.used, v.capacity);
    }
    println!("timing violations:   {}", report.timing.len());
    for v in report.timing.iter().take(20) {
        println!("  {} -> {}: delay {} > limit {}", v.from, v.to, v.delay, v.limit);
    }
    if report.timing.len() > 20 {
        println!("  ... and {} more", report.timing.len() - 20);
    }
    Ok(if report.is_feasible() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `qbp feasible` — find a feasible assignment (the `B = 0` phase).
pub fn feasible(args: &Args) -> CommandResult {
    let problem = load_problem(args.required(1, "problem file")?)?;
    let seed = args.get_parsed("seed", 1993u64, "an integer")?;
    let start = find_start(&problem, seed)?;
    eprintln!(
        "feasible solution found: cost = {}",
        Evaluator::new(&problem).cost(&start)
    );
    emit(args.get("output"), &write_assignment(&problem, &start))?;
    Ok(ExitCode::SUCCESS)
}

/// `qbp gen` — generate a suite or QAP instance as a `.qbp` file.
pub fn generate(args: &Args) -> CommandResult {
    let what = args.required(1, "instance name (ckta..cktg or qap)")?;
    let seed = args.get_parsed("seed", 1993u64, "an integer")?;
    let problem = if what == "qap" {
        let n = args.get_parsed("size", 16usize, "an integer")?;
        qbp_gen::random_qap(&qbp_gen::QapSpec {
            seed,
            ..qbp_gen::QapSpec::new(n)
        })?
    } else {
        let spec = qbp_gen::PAPER_SUITE
            .iter()
            .find(|s| s.name == what)
            .ok_or_else(|| format!("unknown instance `{what}` (ckta..cktg or qap)"))?;
        let scale = args.get_parsed("scale", 1.0f64, "a number in (0, 1]")?;
        if !(0.0..=1.0).contains(&scale) || scale <= 0.0 {
            return Err("--scale must be in (0, 1]".into());
        }
        let spec = qbp_gen::scaled_spec(spec, scale);
        let options = qbp_gen::SuiteOptions {
            seed,
            ..qbp_gen::SuiteOptions::default()
        };
        let timing = !args.switch("no-timing");
        let (p, _w) = qbp_gen::build_instance_with_witness(&spec, &options)?;
        if timing {
            p
        } else {
            p.without_timing()
        }
    };
    emit(args.get("output"), &write_problem(&problem))?;
    eprintln!(
        "generated: {} components, {} wires, {} timing constraints, {} partitions",
        problem.n(),
        problem.circuit().total_wire_weight() / 2,
        problem.timing().len(),
        problem.m()
    );
    Ok(ExitCode::SUCCESS)
}

/// `qbp stats` — print circuit statistics.
pub fn stats(args: &Args) -> CommandResult {
    let problem = load_problem(args.required(1, "problem file")?)?;
    let circuit = problem.circuit();
    let n = problem.n();
    println!("components          {n}");
    println!("partitions          {}", problem.m());
    println!("wires (symmetric)   {}", circuit.total_wire_weight() / 2);
    println!("directed pairs      {}", circuit.directed_edge_count());
    println!("timing constraints  {}", problem.timing().len());
    let sizes: Vec<u64> = (0..n).map(|j| circuit.size(ComponentId::new(j))).collect();
    let total: u64 = sizes.iter().sum();
    println!(
        "sizes               total {total}, min {}, max {}",
        sizes.iter().min().expect("non-empty"),
        sizes.iter().max().expect("non-empty"),
    );
    println!(
        "capacity            total {}, slack {:.1}%",
        problem.topology().total_capacity(),
        100.0 * (problem.topology().total_capacity() as f64 - total as f64) / total as f64,
    );
    let degrees: Vec<usize> = (0..n)
        .map(|j| circuit.out_degree(ComponentId::new(j)))
        .collect();
    println!(
        "out-degree          mean {:.1}, max {}",
        degrees.iter().sum::<usize>() as f64 / n as f64,
        degrees.iter().max().expect("non-empty"),
    );
    if !problem.timing().is_empty() {
        let mut hist = std::collections::BTreeMap::new();
        for (_, _, dc) in problem.timing().iter() {
            *hist.entry(dc).or_insert(0usize) += 1;
        }
        let parts: Vec<String> = hist.iter().map(|(dc, c)| format!("{dc}:{c}")).collect();
        println!("timing limits       {}", parts.join(" "));
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use std::path::PathBuf;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()), crate::SWITCHES).expect("parse")
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qbp-cli-test-{}-{name}", std::process::id()));
        p
    }

    const SAMPLE: &str = "\
qbp 1
component alu 40
component cache 60
component bus 10
wires alu cache 5
wire cache bus 2
grid 2 2 80
timing alu cache 1
";

    #[test]
    fn solve_check_roundtrip() {
        let problem_path = temp_path("p.qbp");
        let asg_path = temp_path("a.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--iterations",
            "30",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let code = check(&args(&[
            "check",
            problem_path.to_str().expect("utf8"),
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("check runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn solve_all_methods() {
        let problem_path = temp_path("methods.qbp");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        for method in ["qbp", "gfm", "gkl", "anneal", "mlqbp"] {
            let out = temp_path(&format!("{method}.txt"));
            let code = solve(&args(&[
                "solve",
                problem_path.to_str().expect("utf8"),
                "--method",
                method,
                "--quiet",
                "--output",
                out.to_str().expect("utf8"),
            ]))
            .expect("solve runs");
            assert_eq!(code, ExitCode::SUCCESS, "method {method}");
            let _ = fs::remove_file(out);
        }
        assert!(solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--method",
            "simplex",
        ]))
        .is_err());
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn solve_writes_parseable_trace() {
        let problem_path = temp_path("trace.qbp");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        for method in ["qbp", "gfm"] {
            let trace_path = temp_path(&format!("trace-{method}.jsonl"));
            let code = solve(&args(&[
                "solve",
                problem_path.to_str().expect("utf8"),
                "--method",
                method,
                "--iterations",
                "10",
                "--quiet",
                "--counters",
                "--trace",
                trace_path.to_str().expect("utf8"),
            ]))
            .expect("solve runs");
            assert_eq!(code, ExitCode::SUCCESS, "method {method}");
            let text = fs::read_to_string(&trace_path).expect("trace written");
            let records: Vec<_> = text
                .lines()
                .map(|l| qbp_observe::parse_trace_line(l).expect("line parses"))
                .collect();
            assert!(
                records.len() >= 3,
                "method {method}: expected a start, iterations and a finish"
            );
            assert_eq!(records.first().expect("nonempty").event.name(), "solve_started");
            assert_eq!(records.last().expect("nonempty").event.name(), "solve_finished");
            let _ = fs::remove_file(trace_path);
        }
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn solve_multistart_flags() {
        let problem_path = temp_path("multistart.qbp");
        let asg_path = temp_path("multistart.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--iterations",
            "20",
            "--runs",
            "4",
            "--threads",
            "2",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        assert!(solve(&args(&["solve", problem_path.to_str().expect("utf8"), "--runs", "0"]))
            .is_err());
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn solve_mlqbp_flags() {
        let problem_path = temp_path("mlflags.qbp");
        let asg_path = temp_path("mlflags.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--method",
            "mlqbp",
            "--ml-levels",
            "2",
            "--ml-min-size",
            "2",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        assert!(
            solve(&args(&[
                "solve",
                problem_path.to_str().expect("utf8"),
                "--ml-levels",
                "2",
            ]))
            .is_err(),
            "ml flags must be rejected for non-mlqbp methods"
        );
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn gen_stats_feasible_pipeline() {
        let problem_path = temp_path("gen.qbp");
        let code = generate(&args(&[
            "gen",
            "cktb",
            "--scale",
            "0.05",
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let code = stats(&args(&["stats", problem_path.to_str().expect("utf8")]))
            .expect("stats runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn gen_qap_instance() {
        let problem_path = temp_path("qap.qbp");
        let code = generate(&args(&[
            "gen",
            "qap",
            "--size",
            "9",
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let problem = load_problem(problem_path.to_str().expect("utf8")).expect("parses");
        assert_eq!(problem.m(), 9);
        assert_eq!(problem.n(), 9);
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn missing_files_are_reported() {
        assert!(solve(&args(&["solve", "/nonexistent/x.qbp"])).is_err());
        assert!(stats(&args(&["stats", "/nonexistent/x.qbp"])).is_err());
        assert!(generate(&args(&["gen", "unknown-circuit"])).is_err());
    }

    #[test]
    fn check_detects_violations() {
        let problem_path = temp_path("viol.qbp");
        let asg_path = temp_path("viol.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        // alu and cache crammed into one partition: capacity 100 > 80.
        fs::write(&asg_path, "assign alu 0\nassign cache 0\nassign bus 1\n")
            .expect("write assignment");
        let code = check(&args(&[
            "check",
            problem_path.to_str().expect("utf8"),
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("check runs");
        assert_eq!(code, ExitCode::from(2), "violations exit with code 2");
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }
}
