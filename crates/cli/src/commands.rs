//! Implementations of the CLI subcommands.

use crate::args::Args;
use qbp_core::hw::{AutoProfile, HostInfo};
use qbp_core::io::{parse_assignment, read_problem, write_assignment, write_problem};
use qbp_core::{
    check_feasibility, Assignment, Budget, ComponentId, Evaluator, ExecCtx, ExecStatus, Problem,
    QbpError,
};
use qbp_eco::{run_script_exec, EcoConfig, EcoSession};
use qbp_multilevel::{build_solver, MlqbpConfig, MlqbpSolver, SOLVER_NAMES};
use qbp_observe::{CountersObserver, SolveEvent, SolveObserver, TeeObserver, TraceObserver};
use qbp_solver::{
    greedy_first_fit, moved_from, CommonOpts, Configure, QbpConfig, QbpSolver, SolveReport,
};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

/// Every subcommand returns a typed [`QbpError`] so `main` can map the
/// failure *kind* to a distinct exit code (see [`crate::exit_code_for`]).
type CommandResult = Result<ExitCode, QbpError>;

fn read_file(path: &str) -> Result<String, QbpError> {
    fs::read_to_string(path).map_err(|e| QbpError::io(path, &e))
}

/// Loads a `.qbp` file through the streaming reader: the CSR problem is
/// assembled line by line off a [`BufReader`], so a million-component file
/// never materializes as one `String` first.
fn load_problem(path: &str) -> Result<Problem, QbpError> {
    let file = File::open(path).map_err(|e| QbpError::io(path, &e))?;
    Ok(read_problem(BufReader::new(file))?)
}

fn emit(output: Option<&str>, contents: &str) -> Result<(), QbpError> {
    match output {
        Some(path) => {
            fs::write(path, contents).map_err(|e| QbpError::io(path, &e))?;
        }
        None => print!("{contents}"),
    }
    Ok(())
}

/// Builds the execution context for a budgeted command: `--time-limit-ms`
/// becomes a wall-clock budget, and SIGINT is routed to a cancel token so
/// Ctrl-C degrades to best-so-far instead of killing the process. With no
/// time limit the budget is unlimited (cancellation still works).
fn exec_ctx(args: &Args) -> Result<ExecCtx, QbpError> {
    let budget = match args.get_parsed_opt::<u64>("time-limit-ms", "a duration in milliseconds")? {
        Some(ms) => Budget::with_time_limit(std::time::Duration::from_millis(ms)),
        None => Budget::unlimited(),
    };
    Ok(ExecCtx::with_budget(budget).cancel_token(crate::interrupt::install()))
}

/// Reports how a budgeted run ended (stderr, machine-greppable) and maps a
/// cooperative cancellation to exit code 130. The fallback code is what the
/// command would have returned on a completed run.
fn status_exit(status: ExecStatus, quiet: bool, fallback: ExitCode) -> ExitCode {
    if !quiet {
        eprintln!("status: \"{}\"", status.as_str());
    }
    match status {
        ExecStatus::Cancelled => {
            eprintln!("interrupted: wrote best-so-far assignment");
            ExitCode::from(crate::EXIT_INTERRUPTED)
        }
        _ => fallback,
    }
}

/// `qbp solve` — run one method on a problem file, optionally streaming the
/// solver's event trace (`--trace file.jsonl`) and printing aggregate event
/// counters (`--counters`).
pub fn solve(args: &Args) -> CommandResult {
    let path = args.required(1, "problem file")?;
    let problem = load_problem(path)?;
    let method = args.get("method").unwrap_or("qbp").to_lowercase();
    let mut opts = args.common_opts()?;
    let mut runs = args.runs()?;
    let mut ml = MlFlags {
        levels: args.get_parsed_opt_aliased("mlqbp-levels", "ml-levels", "an integer")?,
        min_size: args.get_parsed_opt_aliased("mlqbp-min-size", "ml-min-size", "an integer")?,
    };
    let quiet = args.switch("quiet");

    // `--auto`: fill whichever knobs the user left unset from the detected
    // host and the problem size. Explicit flags always win.
    let auto_profile = if args.switch("auto") {
        let profile = AutoProfile::for_problem(&HostInfo::detect(), problem.n());
        if args.get("threads").is_none() {
            opts.threads = profile.threads;
        }
        if method == "qbp" && args.get("runs").is_none() {
            runs = profile.multistart_width;
        }
        if method == "mlqbp" {
            if ml.levels.is_none() {
                ml.levels = Some(profile.mlqbp_levels);
            }
            if ml.min_size.is_none() {
                ml.min_size = Some(profile.mlqbp_min_size);
            }
        }
        Some(profile)
    } else {
        None
    };

    let initial = match args.get("initial") {
        Some(p) => Some(parse_assignment(&read_file(p)?, &problem, false)?),
        None => None,
    };
    let exec = exec_ctx(args)?;

    // Observers: counters and/or a JSONL trace, fed through one tee. The
    // tee borrows both, so it lives in an inner scope.
    let use_counters = args.switch("counters");
    let mut counters_sink = CountersObserver::new();
    let mut trace = open_trace(args)?;

    let mut report = {
        let mut tee = TeeObserver::new();
        if use_counters {
            tee.push(&mut counters_sink);
        }
        if let Some(t) = trace.as_mut() {
            tee.push(t);
        }
        if let Some(p) = auto_profile {
            tee.on_event(&SolveEvent::AutoConfigured {
                cores: p.cores,
                ram_mb: p.available_ram_mb,
                threads: p.threads,
                levels: p.mlqbp_levels,
                min_size: p.mlqbp_min_size,
                width: p.multistart_width,
            });
        }
        run_method(&problem, &method, &opts, runs, &ml, initial.as_ref(), &exec, &mut tee)?
    };
    report.auto_profile = auto_profile;

    let label = method.to_uppercase();
    if !report.feasible {
        eprintln!(
            "warning: {label} found no fully feasible solution; best has {} timing violation(s)",
            check_feasibility(&problem, &report.assignment).timing.len()
        );
    }
    if use_counters {
        eprintln!("{}", counters_sink.snapshot().to_json());
    }
    if let Some(t) = trace {
        finish_trace(args, t)?;
    }

    let feas = check_feasibility(&problem, &report.assignment);
    if !quiet {
        eprintln!(
            "{label}: cost = {}, feasible = {}",
            Evaluator::new(&problem).cost(&report.assignment),
            feas.is_feasible()
        );
    }
    emit(args.get("output"), &write_assignment(&problem, &report.assignment))?;
    let fallback = if feas.is_feasible() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    };
    Ok(status_exit(report.status, quiet, fallback))
}

/// The multilevel-only tuning flags, parsed whether or not `--method mlqbp`
/// was chosen so that stray uses on other methods are rejected loudly.
struct MlFlags {
    levels: Option<usize>,
    min_size: Option<usize>,
}

/// Opens the `--trace` JSONL sink when requested.
fn open_trace(args: &Args) -> Result<Option<TraceObserver<BufWriter<File>>>, QbpError> {
    match args.get("trace") {
        Some(p) => {
            let file = File::create(p).map_err(|e| QbpError::io(p, &e))?;
            Ok(Some(TraceObserver::new(BufWriter::new(file))))
        }
        None => Ok(None),
    }
}

/// Flushes the `--trace` sink, surfacing deferred write errors.
fn finish_trace(args: &Args, trace: TraceObserver<BufWriter<File>>) -> Result<(), QbpError> {
    let path = args.get("trace").unwrap_or("trace");
    trace.finish().map_err(|e| QbpError::io(path, &e))?;
    Ok(())
}

/// Dispatches one solve through the method registry (or the qbp multistart
/// driver when `--runs` asks for more than one), behind `&dyn Solver`.
#[allow(clippy::too_many_arguments)]
fn run_method(
    problem: &Problem,
    method: &str,
    opts: &CommonOpts,
    runs: usize,
    ml: &MlFlags,
    initial: Option<&Assignment>,
    exec: &ExecCtx,
    obs: &mut dyn SolveObserver,
) -> Result<SolveReport, QbpError> {
    if method != "mlqbp" && (ml.levels.is_some() || ml.min_size.is_some()) {
        return Err(QbpError::Usage(
            "--mlqbp-levels/--mlqbp-min-size only apply to --method mlqbp".into(),
        ));
    }
    if runs > 1 {
        if method != "qbp" {
            return Err(QbpError::Usage(format!(
                "--runs {runs} only applies to --method qbp"
            )));
        }
        let solver = QbpSolver::new(QbpConfig::default().with_common(opts));
        let out = solver.solve_multistart_exec(problem, initial, runs, exec, obs)?;
        return Ok(SolveReport {
            solver: "qbp",
            moves_applied: moved_from(initial, &out.assignment),
            objective: out.objective,
            embedded_value: Some(out.embedded_value),
            feasible: out.feasible,
            iterations: out.iterations,
            elapsed: out.elapsed,
            auto_profile: None,
            status: out.status,
            assignment: out.assignment,
        });
    }
    if method == "mlqbp" {
        let mut config = MlqbpConfig::default().with_common(opts);
        if let Some(levels) = ml.levels {
            config.max_levels = levels;
        }
        if let Some(min_size) = ml.min_size {
            config.min_size = min_size;
        }
        return Ok(MlqbpSolver::new(config).solve_observed_exec(problem, initial, exec, obs)?);
    }
    let solver = build_solver(method, opts).ok_or_else(|| {
        QbpError::Usage(format!(
            "unknown method `{method}` (use {})",
            SOLVER_NAMES.join(", ")
        ))
    })?;
    Ok(solver.solve_exec(problem, initial, exec, obs)?)
}

fn find_start(problem: &Problem, seed: u64) -> Result<Assignment, QbpError> {
    if let Some(a) = QbpSolver::new(QbpConfig {
        iterations: 60,
        seed,
        ..QbpConfig::default()
    })
    .find_feasible(problem)?
    {
        return Ok(a);
    }
    if let Some(a) = greedy_first_fit(problem, seed, 200) {
        return Ok(a);
    }
    Err(QbpError::Usage(
        "no feasible initial solution found (GFM/GKL need one; try `qbp solve --method qbp`)"
            .into(),
    ))
}

/// `qbp eco` — open an incremental session on a problem and drive it with a
/// JSONL edit script (`--script edits.jsonl`): every line is applied as a
/// [`NetlistDelta`](qbp_eco::NetlistDelta) and warm-resolved in order. The
/// final assignment goes to `--output` (or stdout); exit code 2 flags any
/// infeasible warm solve along the way.
pub fn eco(args: &Args) -> CommandResult {
    let path = args.required(1, "problem file")?;
    let problem = load_problem(path)?;
    let script_path = args
        .get("script")
        .ok_or_else(|| QbpError::Usage("eco requires --script <edits.jsonl>".into()))?;
    let script = read_file(script_path)?;
    let opts = args.common_opts()?;
    let quiet = args.switch("quiet");
    let threshold = args.get_parsed(
        "eco-rebuild-threshold",
        75usize,
        "a percentage of rows (1-100)",
    )?;
    let config = EcoConfig {
        penalty: args.get_parsed_opt("eco-penalty", "an integer")?,
        rebuild_threshold_pct: threshold,
        solver: QbpConfig::default().with_common(&opts),
        refresh_every: args.get_parsed(
            "eco-refresh-every",
            EcoConfig::default().refresh_every,
            "an edit count (0 disables)",
        )?,
    };

    let mut session = match args.get("initial") {
        Some(p) => {
            let initial = parse_assignment(&read_file(p)?, &problem, false)?;
            EcoSession::with_assignment(problem, initial, config)?
        }
        None => EcoSession::new(problem, config)?,
    };

    let exec = exec_ctx(args)?;
    let use_counters = args.switch("counters");
    let mut counters_sink = CountersObserver::new();
    let mut trace = open_trace(args)?;
    let summary = {
        let mut tee = TeeObserver::new();
        if use_counters {
            tee.push(&mut counters_sink);
        }
        if let Some(t) = trace.as_mut() {
            tee.push(t);
        }
        run_script_exec(&mut session, &script, &exec, &mut tee)?
    };

    if use_counters {
        eprintln!("{}", counters_sink.snapshot().to_json());
    }
    if let Some(t) = trace {
        finish_trace(args, t)?;
    }
    if !quiet {
        eprintln!(
            "ECO: {} edits, {} rebuilds, {} escalations, final value = {}, all feasible = {}",
            summary.edits,
            summary.rebuilds,
            summary.escalations,
            summary.final_value,
            summary.all_feasible
        );
    }
    emit(
        args.get("output"),
        &write_assignment(session.problem(), session.assignment()),
    )?;
    let fallback = if summary.all_feasible {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    };
    Ok(status_exit(summary.status, quiet, fallback))
}

/// `qbp check` — audit an assignment against a problem.
pub fn check(args: &Args) -> CommandResult {
    if args.positional_count() > 3 {
        return Err(QbpError::Usage(
            "check takes exactly two files: <problem.qbp> <assignment.txt>".into(),
        ));
    }
    let problem = load_problem(args.required(1, "problem file")?)?;
    let asg_path = args.required(2, "assignment file")?;
    let assignment = parse_assignment(&read_file(asg_path)?, &problem, false)?;
    let eval = Evaluator::new(&problem);
    let report = check_feasibility(&problem, &assignment);
    println!("cost      {}", eval.cost(&assignment));
    println!("  linear    {}", eval.linear_cost(&assignment));
    println!("  quadratic {}", eval.quadratic_cost(&assignment));
    println!("capacity violations: {}", report.capacity.len());
    for v in &report.capacity {
        println!("  partition {}: {} used / {} capacity", v.partition, v.used, v.capacity);
    }
    println!("timing violations:   {}", report.timing.len());
    for v in report.timing.iter().take(20) {
        println!("  {} -> {}: delay {} > limit {}", v.from, v.to, v.delay, v.limit);
    }
    if report.timing.len() > 20 {
        println!("  ... and {} more", report.timing.len() - 20);
    }
    Ok(if report.is_feasible() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `qbp feasible` — find a feasible assignment (the `B = 0` phase).
pub fn feasible(args: &Args) -> CommandResult {
    let problem = load_problem(args.required(1, "problem file")?)?;
    let seed = args.get_parsed("seed", 1993u64, "an integer")?;
    let start = find_start(&problem, seed)?;
    eprintln!(
        "feasible solution found: cost = {}",
        Evaluator::new(&problem).cost(&start)
    );
    emit(args.get("output"), &write_assignment(&problem, &start))?;
    Ok(ExitCode::SUCCESS)
}

/// `qbp gen --gen-clustered` — stream a seeded clustered circuit of
/// `--components N` straight to the output. The edge set is generated and
/// written on the fly, so a million-component instance costs `O(cluster)`
/// working memory instead of holding the full circuit.
fn generate_clustered(args: &Args) -> CommandResult {
    let seed = args.get_parsed("seed", 1993u64, "an integer")?;
    let components = args.get_parsed("components", 10_000usize, "a component count >= 2")?;
    // Degenerate shapes are rejected here, before any output file is
    // created: a usage error (exit 64) must never leave an empty .qbp
    // behind, and the builder's own assertions must stay unreachable.
    if components < 2 {
        return Err(QbpError::Usage("--components must be at least 2".into()));
    }
    let cluster_size = args.get_parsed_opt::<usize>("cluster-size", "a cluster size >= 2")?;
    if let Some(c) = cluster_size {
        if c < 2 {
            return Err(QbpError::Usage(
                "--cluster-size must be at least 2 (a cluster of fewer components has no ring)"
                    .into(),
            ));
        }
        if c > components {
            return Err(QbpError::Usage(format!(
                "--cluster-size {c} exceeds --components {components}; \
                 a cluster cannot be larger than the whole circuit"
            )));
        }
    }
    let mut gen = qbp_gen::ClusteredCircuit::new(components).seed(seed);
    if let Some(c) = cluster_size {
        gen = gen.cluster_size(c);
    }
    match args.get("output") {
        Some(path) => {
            let file = File::create(path).map_err(|e| QbpError::io(path, &e))?;
            let mut w = BufWriter::new(file);
            gen.write_qbp(&mut w).map_err(|e| QbpError::io(path, &e))?;
            w.flush().map_err(|e| QbpError::io(path, &e))?;
        }
        None => {
            let stdout = std::io::stdout();
            gen.write_qbp(stdout.lock())
                .map_err(|e| QbpError::io("stdout", &e))?;
        }
    }
    eprintln!(
        "generated: {components} clustered components on a {} -partition grid (seed {seed})",
        gen.partitions()
    );
    Ok(ExitCode::SUCCESS)
}

/// `qbp gen` — generate a suite, QAP, or streamed clustered instance as a
/// `.qbp` file.
pub fn generate(args: &Args) -> CommandResult {
    if args.switch("gen-clustered") || args.positional(1) == Some("clustered") {
        return generate_clustered(args);
    }
    let what = args.required(1, "instance name (ckta..cktg, qap, or clustered)")?;
    let seed = args.get_parsed("seed", 1993u64, "an integer")?;
    let problem = if what == "qap" {
        let n = args.get_parsed("size", 16usize, "an integer")?;
        qbp_gen::random_qap(&qbp_gen::QapSpec {
            seed,
            ..qbp_gen::QapSpec::new(n)
        })?
    } else {
        let spec = qbp_gen::PAPER_SUITE
            .iter()
            .find(|s| s.name == what)
            .ok_or_else(|| QbpError::Usage(format!("unknown instance `{what}` (ckta..cktg or qap)")))?;
        let scale = args.get_parsed("scale", 1.0f64, "a number in (0, 1]")?;
        if !(0.0..=1.0).contains(&scale) || scale <= 0.0 {
            return Err(QbpError::Usage("--scale must be in (0, 1]".into()));
        }
        let spec = qbp_gen::scaled_spec(spec, scale);
        let options = qbp_gen::SuiteOptions {
            seed,
            ..qbp_gen::SuiteOptions::default()
        };
        let timing = !args.switch("no-timing");
        let (p, _w) = qbp_gen::build_instance_with_witness(&spec, &options)?;
        if timing {
            p
        } else {
            p.without_timing()
        }
    };
    emit(args.get("output"), &write_problem(&problem))?;
    // A companion seeded ECO edit script for the generated instance, ready
    // for `qbp eco --script`.
    if let Some(script_path) = args.get("eco-script") {
        let edits = args.get_parsed("eco-edits", 200usize, "an integer >= 1")?;
        let script = qbp_gen::eco_script(
            &problem,
            &qbp_gen::EcoStreamOptions {
                edits,
                seed,
                structural: true,
            },
        );
        fs::write(script_path, script).map_err(|e| QbpError::io(script_path, &e))?;
        eprintln!("wrote {edits}-edit ECO script to {script_path}");
    }
    eprintln!(
        "generated: {} components, {} wires, {} timing constraints, {} partitions",
        problem.n(),
        problem.circuit().total_wire_weight() / 2,
        problem.timing().len(),
        problem.m()
    );
    Ok(ExitCode::SUCCESS)
}

/// `qbp stats` — print circuit statistics.
pub fn stats(args: &Args) -> CommandResult {
    let problem = load_problem(args.required(1, "problem file")?)?;
    let circuit = problem.circuit();
    let n = problem.n();
    println!("components          {n}");
    println!("partitions          {}", problem.m());
    println!("wires (symmetric)   {}", circuit.total_wire_weight() / 2);
    println!("directed pairs      {}", circuit.directed_edge_count());
    println!("timing constraints  {}", problem.timing().len());
    let sizes: Vec<u64> = (0..n).map(|j| circuit.size(ComponentId::new(j))).collect();
    let total: u64 = sizes.iter().sum();
    println!(
        "sizes               total {total}, min {}, max {}",
        sizes.iter().min().expect("non-empty"),
        sizes.iter().max().expect("non-empty"),
    );
    println!(
        "capacity            total {}, slack {:.1}%",
        problem.topology().total_capacity(),
        100.0 * (problem.topology().total_capacity() as f64 - total as f64) / total as f64,
    );
    let degrees: Vec<usize> = (0..n)
        .map(|j| circuit.out_degree(ComponentId::new(j)))
        .collect();
    println!(
        "out-degree          mean {:.1}, max {}",
        degrees.iter().sum::<usize>() as f64 / n as f64,
        degrees.iter().max().expect("non-empty"),
    );
    if !problem.timing().is_empty() {
        let mut hist = std::collections::BTreeMap::new();
        for (_, _, dc) in problem.timing().iter() {
            *hist.entry(dc).or_insert(0usize) += 1;
        }
        let parts: Vec<String> = hist.iter().map(|(dc, c)| format!("{dc}:{c}")).collect();
        println!("timing limits       {}", parts.join(" "));
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use std::path::PathBuf;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()), crate::SWITCHES).expect("parse")
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qbp-cli-test-{}-{name}", std::process::id()));
        p
    }

    const SAMPLE: &str = "\
qbp 1
component alu 40
component cache 60
component bus 10
wires alu cache 5
wire cache bus 2
grid 2 2 80
timing alu cache 1
";

    #[test]
    fn solve_check_roundtrip() {
        let problem_path = temp_path("p.qbp");
        let asg_path = temp_path("a.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--iterations",
            "30",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let code = check(&args(&[
            "check",
            problem_path.to_str().expect("utf8"),
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("check runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn solve_all_methods() {
        let problem_path = temp_path("methods.qbp");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        for method in ["qbp", "gfm", "gkl", "anneal", "mlqbp"] {
            let out = temp_path(&format!("{method}.txt"));
            let code = solve(&args(&[
                "solve",
                problem_path.to_str().expect("utf8"),
                "--method",
                method,
                "--quiet",
                "--output",
                out.to_str().expect("utf8"),
            ]))
            .expect("solve runs");
            assert_eq!(code, ExitCode::SUCCESS, "method {method}");
            let _ = fs::remove_file(out);
        }
        assert!(solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--method",
            "simplex",
        ]))
        .is_err());
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn solve_writes_parseable_trace() {
        let problem_path = temp_path("trace.qbp");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        for method in ["qbp", "gfm"] {
            let trace_path = temp_path(&format!("trace-{method}.jsonl"));
            let code = solve(&args(&[
                "solve",
                problem_path.to_str().expect("utf8"),
                "--method",
                method,
                "--iterations",
                "10",
                "--quiet",
                "--counters",
                "--trace",
                trace_path.to_str().expect("utf8"),
            ]))
            .expect("solve runs");
            assert_eq!(code, ExitCode::SUCCESS, "method {method}");
            let text = fs::read_to_string(&trace_path).expect("trace written");
            let records: Vec<_> = text
                .lines()
                .map(|l| qbp_observe::parse_trace_line(l).expect("line parses"))
                .collect();
            assert!(
                records.len() >= 3,
                "method {method}: expected a start, iterations and a finish"
            );
            assert_eq!(records.first().expect("nonempty").event.name(), "solve_started");
            assert_eq!(records.last().expect("nonempty").event.name(), "solve_finished");
            let _ = fs::remove_file(trace_path);
        }
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn solve_multistart_flags() {
        let problem_path = temp_path("multistart.qbp");
        let asg_path = temp_path("multistart.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--iterations",
            "20",
            "--runs",
            "4",
            "--threads",
            "2",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        assert!(solve(&args(&["solve", problem_path.to_str().expect("utf8"), "--runs", "0"]))
            .is_err());
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn solve_mlqbp_flags() {
        let problem_path = temp_path("mlflags.qbp");
        let asg_path = temp_path("mlflags.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--method",
            "mlqbp",
            "--mlqbp-levels",
            "2",
            "--mlqbp-min-size",
            "2",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        // The deprecated aliases still steer the same knobs.
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--method",
            "mlqbp",
            "--ml-levels",
            "2",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        assert!(
            matches!(
                solve(&args(&[
                    "solve",
                    problem_path.to_str().expect("utf8"),
                    "--mlqbp-levels",
                    "2",
                ])),
                Err(QbpError::Usage(_))
            ),
            "mlqbp flags must be rejected for non-mlqbp methods"
        );
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn solve_auto_records_profile_in_trace() {
        let problem_path = temp_path("auto.qbp");
        let trace_path = temp_path("auto-trace.jsonl");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--auto",
            "--iterations",
            "20",
            "--quiet",
            "--trace",
            trace_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let text = fs::read_to_string(&trace_path).expect("trace written");
        let first = qbp_observe::parse_trace_line(text.lines().next().expect("nonempty"))
            .expect("line parses");
        assert_eq!(
            first.event.name(),
            "auto_configured",
            "the auto profile must lead the trace"
        );
        // Explicit flags beat the profile: --threads 1 must survive --auto.
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--auto",
            "--threads",
            "1",
            "--iterations",
            "20",
            "--quiet",
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(trace_path);
    }

    #[test]
    fn gen_clustered_streams_a_solvable_instance() {
        let problem_path = temp_path("clustered.qbp");
        let code = generate(&args(&[
            "gen",
            "--gen-clustered",
            "--components",
            "200",
            "--seed",
            "5",
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let problem = load_problem(problem_path.to_str().expect("utf8")).expect("parses");
        assert_eq!(problem.n(), 200);
        assert_eq!(problem.m(), 16);
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--iterations",
            "20",
            "--quiet",
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        // The positional spelling generates the identical file.
        let alias_path = temp_path("clustered-alias.qbp");
        generate(&args(&[
            "gen",
            "clustered",
            "--components",
            "200",
            "--seed",
            "5",
            "--output",
            alias_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(
            fs::read_to_string(&problem_path).expect("read"),
            fs::read_to_string(&alias_path).expect("read")
        );
        assert!(matches!(
            generate(&args(&["gen", "--gen-clustered", "--components", "1"])),
            Err(QbpError::Usage(_))
        ));
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(alias_path);
    }

    #[test]
    fn eco_runs_script_and_writes_assignment() {
        let problem_path = temp_path("eco.qbp");
        let script_path = temp_path("eco.jsonl");
        let asg_path = temp_path("eco-out.txt");
        let trace_path = temp_path("eco-trace.jsonl");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        fs::write(
            &script_path,
            "# three edits\n\
             {\"op\": \"reweight_pair\", \"a\": \"alu\", \"b\": \"cache\", \"weight\": 9}\n\
             {\"op\": \"add_pair\", \"a\": 0, \"b\": 2, \"weight\": 3}\n\
             {\"op\": \"set_timing_bound\", \"a\": \"alu\", \"b\": \"cache\", \"bound\": 2}\n",
        )
        .expect("write script");
        let code = eco(&args(&[
            "eco",
            problem_path.to_str().expect("utf8"),
            "--script",
            script_path.to_str().expect("utf8"),
            "--iterations",
            "20",
            "--quiet",
            "--counters",
            "--trace",
            trace_path.to_str().expect("utf8"),
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("eco runs");
        assert_eq!(code, ExitCode::SUCCESS);
        // The written assignment checks clean against the *edited* problem
        // only as far as component names go; at minimum it must exist and
        // parse back onto the original component set.
        let text = fs::read_to_string(&asg_path).expect("assignment written");
        assert_eq!(text.lines().count(), 3, "one line per component");
        // The trace carries the ECO event stream.
        let trace = fs::read_to_string(&trace_path).expect("trace written");
        let names: Vec<String> = trace
            .lines()
            .map(|l| {
                qbp_observe::parse_trace_line(l)
                    .expect("line parses")
                    .event
                    .name()
                    .to_string()
            })
            .collect();
        assert!(names.iter().any(|n| n == "delta_applied"));
        assert!(names.iter().any(|n| n == "warm_solve"));
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(script_path);
        let _ = fs::remove_file(asg_path);
        let _ = fs::remove_file(trace_path);
    }

    #[test]
    fn eco_error_kinds_are_typed() {
        let problem_path = temp_path("eco-err.qbp");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        // Missing --script is a usage error.
        assert!(matches!(
            eco(&args(&["eco", problem_path.to_str().expect("utf8")])),
            Err(QbpError::Usage(_))
        ));
        // A script referencing an unknown component is a model error.
        let script_path = temp_path("eco-err.jsonl");
        fs::write(
            &script_path,
            "{\"op\": \"add_pair\", \"a\": \"ghost\", \"b\": \"alu\", \"weight\": 1}\n",
        )
        .expect("write script");
        assert!(matches!(
            eco(&args(&[
                "eco",
                problem_path.to_str().expect("utf8"),
                "--script",
                script_path.to_str().expect("utf8"),
                "--iterations",
                "10",
                "--quiet",
            ])),
            Err(QbpError::Model(qbp_core::Error::UnknownComponentName(_)))
        ));
        // A malformed script line is a parse error.
        fs::write(&script_path, "not json\n").expect("write script");
        assert!(matches!(
            eco(&args(&[
                "eco",
                problem_path.to_str().expect("utf8"),
                "--script",
                script_path.to_str().expect("utf8"),
                "--iterations",
                "10",
                "--quiet",
            ])),
            Err(QbpError::Parse(_))
        ));
        // A missing script file is an I/O error.
        assert!(matches!(
            eco(&args(&[
                "eco",
                problem_path.to_str().expect("utf8"),
                "--script",
                "/nonexistent/edits.jsonl",
            ])),
            Err(QbpError::Io { .. })
        ));
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(script_path);
    }

    #[test]
    fn exit_codes_distinguish_error_kinds() {
        use crate::{exit_code_for, EXIT_INTERNAL, EXIT_IO, EXIT_MODEL, EXIT_PARSE, EXIT_USAGE};
        assert_eq!(
            exit_code_for(&QbpError::Usage("bad flag".into())),
            ExitCode::from(EXIT_USAGE)
        );
        assert_eq!(
            exit_code_for(&QbpError::Parse(qbp_core::io::ParseError::BadHeader { line: 1 })),
            ExitCode::from(EXIT_PARSE)
        );
        assert_eq!(
            exit_code_for(&QbpError::Io {
                path: "x".into(),
                message: "gone".into()
            }),
            ExitCode::from(EXIT_IO)
        );
        assert_eq!(
            exit_code_for(&QbpError::Model(qbp_core::Error::EmptyCircuit)),
            ExitCode::from(EXIT_MODEL)
        );
        assert_eq!(
            exit_code_for(&QbpError::Internal("worker panicked".into())),
            ExitCode::from(EXIT_INTERNAL)
        );
    }

    #[test]
    fn index_overflow_reaches_the_exit_code_layer_as_model() {
        use crate::{exit_code_for, EXIT_MODEL};
        // A real IndexOverflow from the CSR stream layer (tiny record cap),
        // lifted exactly the way `main` sees solver errors: Error ->
        // QbpError -> exit code. It must classify as a model error (67),
        // not fall through to the generic failure code.
        let problem = qbp_core::io::parse_problem(SAMPLE).expect("sample parses");
        let err = qbp_core::QBody::build_with_index_cap(&problem, 1, 2)
            .expect_err("a 2-record cap must overflow");
        assert!(matches!(err, qbp_core::Error::IndexOverflow { .. }));
        let lifted: QbpError = err.into();
        assert!(matches!(
            lifted,
            QbpError::Model(qbp_core::Error::IndexOverflow { .. })
        ));
        assert_eq!(exit_code_for(&lifted), ExitCode::from(EXIT_MODEL));
    }

    #[test]
    fn gen_clustered_rejects_degenerate_shapes_without_writing() {
        // Every degenerate parameterization must be a usage error (exit 64)
        // and must not leave an output file behind.
        for (argv, label) in [
            (vec!["gen", "--gen-clustered", "--components", "0"], "0 components"),
            (vec!["gen", "--gen-clustered", "--components", "1"], "1 component"),
            (
                vec!["gen", "--gen-clustered", "--components", "100", "--cluster-size", "0"],
                "0-size clusters",
            ),
            (
                vec!["gen", "--gen-clustered", "--components", "100", "--cluster-size", "1"],
                "1-size clusters",
            ),
            (
                vec!["gen", "--gen-clustered", "--components", "100", "--cluster-size", "101"],
                "cluster larger than the circuit",
            ),
        ] {
            let out = temp_path(&format!("degenerate-{}.qbp", label.replace(' ', "-")));
            let mut argv = argv.clone();
            argv.push("--output");
            argv.push(out.to_str().expect("utf8"));
            let err = generate(&args(&argv)).expect_err(label);
            assert!(
                matches!(err, QbpError::Usage(_)),
                "{label}: expected a usage error, got {err:?}"
            );
            assert_eq!(
                crate::exit_code_for(&err),
                ExitCode::from(crate::EXIT_USAGE),
                "{label}"
            );
            assert!(!out.exists(), "{label}: no output file may be created");
        }
    }

    #[test]
    fn gen_clustered_honors_cluster_size() {
        let problem_path = temp_path("cluster-size.qbp");
        let code = generate(&args(&[
            "gen",
            "--gen-clustered",
            "--components",
            "64",
            "--cluster-size",
            "8",
            "--seed",
            "7",
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let problem = load_problem(problem_path.to_str().expect("utf8")).expect("parses");
        assert_eq!(problem.n(), 64);
        // 8 clusters of 8: one timing constraint planted per cluster.
        assert_eq!(problem.timing().len(), 8);
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn solve_time_limit_reports_status_and_stays_feasible() {
        let problem_path = temp_path("deadline.qbp");
        let asg_path = temp_path("deadline.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        // A zero-ms budget expires before the first budgeted iteration; the
        // bootstrap still runs, so the result must be a written, feasible
        // assignment and a success exit (timed_out is not a failure).
        let code = solve(&args(&[
            "solve",
            problem_path.to_str().expect("utf8"),
            "--iterations",
            "500",
            "--time-limit-ms",
            "0",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("solve runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let text = fs::read_to_string(&asg_path).expect("assignment written");
        assert_eq!(text.lines().count(), 3, "one line per component");
        let code = check(&args(&[
            "check",
            problem_path.to_str().expect("utf8"),
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("check runs");
        assert_eq!(code, ExitCode::SUCCESS, "the degraded result must be feasible");
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn gen_stats_feasible_pipeline() {
        let problem_path = temp_path("gen.qbp");
        let code = generate(&args(&[
            "gen",
            "cktb",
            "--scale",
            "0.05",
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let code = stats(&args(&["stats", problem_path.to_str().expect("utf8")]))
            .expect("stats runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn gen_eco_script_pipeline() {
        let problem_path = temp_path("gen-eco.qbp");
        let script_path = temp_path("gen-eco.jsonl");
        let asg_path = temp_path("gen-eco.txt");
        let code = generate(&args(&[
            "gen",
            "ckta",
            "--scale",
            "0.05",
            "--eco-edits",
            "25",
            "--eco-script",
            script_path.to_str().expect("utf8"),
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let script = fs::read_to_string(&script_path).expect("script written");
        assert_eq!(script.lines().count(), 25);
        let code = eco(&args(&[
            "eco",
            problem_path.to_str().expect("utf8"),
            "--script",
            script_path.to_str().expect("utf8"),
            "--iterations",
            "20",
            "--quiet",
            "--output",
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("eco runs on the generated script");
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(script_path);
        let _ = fs::remove_file(asg_path);
    }

    #[test]
    fn gen_qap_instance() {
        let problem_path = temp_path("qap.qbp");
        let code = generate(&args(&[
            "gen",
            "qap",
            "--size",
            "9",
            "--output",
            problem_path.to_str().expect("utf8"),
        ]))
        .expect("gen runs");
        assert_eq!(code, ExitCode::SUCCESS);
        let problem = load_problem(problem_path.to_str().expect("utf8")).expect("parses");
        assert_eq!(problem.m(), 9);
        assert_eq!(problem.n(), 9);
        let _ = fs::remove_file(problem_path);
    }

    #[test]
    fn missing_files_are_reported() {
        assert!(solve(&args(&["solve", "/nonexistent/x.qbp"])).is_err());
        assert!(stats(&args(&["stats", "/nonexistent/x.qbp"])).is_err());
        assert!(generate(&args(&["gen", "unknown-circuit"])).is_err());
    }

    #[test]
    fn check_detects_violations() {
        let problem_path = temp_path("viol.qbp");
        let asg_path = temp_path("viol.txt");
        fs::write(&problem_path, SAMPLE).expect("write problem");
        // alu and cache crammed into one partition: capacity 100 > 80.
        fs::write(&asg_path, "assign alu 0\nassign cache 0\nassign bus 1\n")
            .expect("write assignment");
        let code = check(&args(&[
            "check",
            problem_path.to_str().expect("utf8"),
            asg_path.to_str().expect("utf8"),
        ]))
        .expect("check runs");
        assert_eq!(code, ExitCode::from(2), "violations exit with code 2");
        let _ = fs::remove_file(problem_path);
        let _ = fs::remove_file(asg_path);
    }
}
