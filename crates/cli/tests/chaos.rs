//! Chaos suite: every scheduled fault from `qbp_core::fault` must surface
//! as a typed error or a feasible degraded result — never a process abort,
//! a hang, or a silently wrong answer.
//!
//! The fault harness is process-global, so every test serializes on
//! [`GUARD`] and disarms through a drop guard even when an assertion fails.

use std::io::Cursor;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qbp_core::fault::{
    self, FaultAction, FaultPlan, POINT_COARSEN, POINT_ETA_KERNEL, POINT_IO_READ,
    POINT_PROFILE_SYNC,
};
use qbp_core::io::read_problem;
use qbp_core::{check_feasibility, Evaluator, Budget, ComponentId, ExecCtx, ExecStatus, Problem, QbpError};
use qbp_eco::{EcoConfig, EcoSession, EditOp, NetlistDelta};
use qbp_gen::ClusteredCircuit;
use qbp_multilevel::{MlqbpConfig, MlqbpSolver};
use qbp_observe::CountersObserver;
use qbp_solver::{QbpConfig, QbpSolver, SolveWorkspace};

/// Serializes the chaos tests: the harness is one process-global plan.
static GUARD: Mutex<()> = Mutex::new(());

/// Disarms on drop so a failing assertion cannot leak an armed plan into
/// the next test.
struct Armed;

impl Drop for Armed {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn arm(plan: FaultPlan) -> Armed {
    fault::arm(plan);
    Armed
}

const SAMPLE: &str = "\
qbp 1
component alu 40
component cache 60
component bus 10
wires alu cache 5
wire cache bus 2
grid 2 2 80
timing alu cache 1
";

fn sample_problem() -> Problem {
    read_problem(Cursor::new(SAMPLE)).expect("sample parses")
}

fn config(iterations: usize) -> QbpConfig {
    QbpConfig {
        iterations,
        seed: 7,
        threads: 1,
        ..QbpConfig::default()
    }
}

#[test]
fn corrupted_read_surfaces_a_located_parse_error() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let _armed = arm(FaultPlan::at_hit(POINT_IO_READ, FaultAction::Corrupt, 3));
    let err = read_problem(Cursor::new(SAMPLE)).expect_err("corruption must be detected");
    let msg = err.to_string();
    assert!(msg.contains("line 3"), "error must name the line: {msg:?}");
    assert!(matches!(QbpError::from(err), QbpError::Parse(_)));
    drop(_armed);
    // Disarmed, the same bytes parse cleanly again.
    assert!(read_problem(Cursor::new(SAMPLE)).is_ok());
}

#[test]
fn corrupted_read_reaches_the_cli_as_a_parse_error() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let path = std::env::temp_dir().join(format!("qbp-chaos-{}.qbp", std::process::id()));
    std::fs::write(&path, SAMPLE).expect("write problem");
    let _armed = arm(FaultPlan::at_hit(POINT_IO_READ, FaultAction::Corrupt, 2));
    let tokens = ["solve", path.to_str().expect("utf8"), "--quiet"];
    let args = qbp_cli::args::Args::parse(tokens.iter().map(|s| s.to_string()), qbp_cli::SWITCHES)
        .expect("parse args");
    let err = qbp_cli::commands::solve(&args).expect_err("corrupted read must fail typed");
    assert!(matches!(err, QbpError::Parse(_)), "got {err:?}");
    assert!(err.to_string().contains("line 2"), "got {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn multistart_survives_an_injected_worker_panic() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let problem = sample_problem();
    let solver = QbpSolver::new(config(30));
    let mut counters = CountersObserver::new();
    // Run 0's first η computation panics; runs 1 and 2 must survive and
    // the multistart must still return their best outcome.
    let _armed = arm(FaultPlan::first(POINT_ETA_KERNEL, FaultAction::Panic));
    let out = solver
        .solve_multistart_exec(&problem, None, 3, &ExecCtx::unbounded(), &mut counters)
        .expect("surviving runs must carry the multistart");
    assert!(out.feasible);
    assert!(check_feasibility(&problem, &out.assignment).is_feasible());
    assert_eq!(out.status, ExecStatus::Completed);
    assert_eq!(counters.snapshot().worker_panics, 1);
}

#[test]
fn eta_corruption_cannot_forge_the_reported_objective() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let problem = sample_problem();
    let solver = QbpSolver::new(config(40));
    let _armed = arm(FaultPlan::first(POINT_ETA_KERNEL, FaultAction::Corrupt));
    let out = solver
        .solve_observed_exec(
            &problem,
            None,
            &mut SolveWorkspace::new(),
            &ExecCtx::unbounded(),
            &mut CountersObserver::new(),
        )
        .expect("corrupted η degrades quality, not correctness");
    // The corrupted direction may change the trajectory, but the report
    // must still describe the returned assignment truthfully.
    assert_eq!(out.objective, Evaluator::new(&problem).cost(&out.assignment));
    assert_eq!(
        out.feasible,
        check_feasibility(&problem, &out.assignment).is_feasible()
    );
    assert_eq!(out.status, ExecStatus::Completed);
}

#[test]
fn profile_corruption_is_detected_and_rebuilt_exactly() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let problem = sample_problem();
    let solver = QbpSolver::new(config(40));
    let solve = || {
        solver
            .solve_observed_exec(
                &problem,
                None,
                &mut SolveWorkspace::new(),
                &ExecCtx::unbounded(),
                &mut CountersObserver::new(),
            )
            .expect("solve")
    };
    fault::disarm();
    let baseline = solve();
    // A corrupted profile cache is detected and rebuilt from the iterate,
    // so the run reproduces the clean trajectory bit for bit.
    let _armed = arm(FaultPlan::first(POINT_PROFILE_SYNC, FaultAction::Corrupt));
    let corrupted = solve();
    assert_eq!(corrupted.assignment, baseline.assignment);
    assert_eq!(corrupted.embedded_value, baseline.embedded_value);
    assert_eq!(corrupted.objective, baseline.objective);
}

#[test]
fn injected_stall_is_wound_down_by_the_deadline() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let problem = sample_problem();
    let solver = QbpSolver::new(config(500));
    let _armed = arm(FaultPlan::first(
        POINT_ETA_KERNEL,
        FaultAction::Stall(Duration::from_millis(150)),
    ));
    let exec = ExecCtx::with_budget(Budget::with_time_limit(Duration::from_millis(1)));
    let start = Instant::now();
    let out = solver
        .solve_observed_exec(
            &problem,
            None,
            &mut SolveWorkspace::new(),
            &exec,
            &mut CountersObserver::new(),
        )
        .expect("a stalled worker still returns best-so-far");
    let elapsed = start.elapsed();
    assert_eq!(out.status, ExecStatus::TimedOut);
    assert!(out.iterations < 500, "deadline must cut the budget short");
    assert!(check_feasibility(&problem, &out.assignment).is_feasible());
    // Overshoot is bounded by one cooperative-check interval: the stall
    // itself (150 ms) plus one iteration, far under this generous cap.
    assert!(elapsed < Duration::from_secs(5), "no hang: {elapsed:?}");
}

#[test]
fn coarsener_corruption_falls_back_to_a_flat_solve() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let (problem, _) = ClusteredCircuit::new(80)
        .cluster_size(8)
        .build_problem()
        .expect("clustered instance");
    let config = MlqbpConfig {
        min_size: 8,
        qbp: config(20),
        ..MlqbpConfig::default()
    };
    let mut counters = CountersObserver::new();
    let _armed = arm(FaultPlan::first(POINT_COARSEN, FaultAction::Corrupt));
    let report = MlqbpSolver::new(config)
        .solve_observed_exec(&problem, None, &ExecCtx::unbounded(), &mut counters)
        .expect("corrupted matching degrades to a flat solve");
    assert!(report.feasible);
    assert!(check_feasibility(&problem, &report.assignment).is_feasible());
    assert_eq!(report.status, ExecStatus::Completed);
    // The detected corruption refuses to coarsen: no levels were built.
    assert_eq!(counters.snapshot().levels_coarsened, 0);
}

#[test]
fn eco_refresh_retries_past_an_injected_panic() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let problem = sample_problem();
    let eco = EcoConfig {
        refresh_every: 1,
        solver: config(30),
        ..EcoConfig::default()
    };
    let mut session = EcoSession::new(problem, eco).expect("session");
    let mut delta = NetlistDelta::new();
    delta.push(EditOp::ReweightPair {
        a: ComponentId::new(0),
        b: ComponentId::new(1),
        weight: 9,
    });
    let mut counters = CountersObserver::new();
    // The reweight is repaired locally (no η hits), so the first η
    // computation happens inside the panic-isolated quality-refresh solve:
    // attempt 0 dies, the retry completes.
    let _armed = arm(FaultPlan::first(POINT_ETA_KERNEL, FaultAction::Panic));
    let (_apply, report) = session
        .apply_and_resolve_exec(&delta, &ExecCtx::unbounded(), &mut counters)
        .expect("refresh panic must not sink the edit");
    assert!(report.feasible);
    assert_eq!(counters.snapshot().worker_panics, 1);
    drop(_armed);
    // The session's incremental state survived the chaos bit-for-bit.
    assert!(session.state_matches_fresh());
}
