//! Property tests: the `.qbp` parsers must survive arbitrary and truncated
//! byte streams without panicking, and every rejection must be a typed
//! [`ParseError`] whose message points at a line.
//!
//! These are the robustness-layer counterpart of the round-trip tests inside
//! `qbp_core::io` — there the input is well-formed by construction, here it
//! is adversarial by construction.

use proptest::prelude::*;
use qbp_core::io::{parse_problem, read_problem, ParseError};
use qbp_core::QbpError;

/// A parse failure must locate itself: every `ParseError` message carries a
/// `line N` marker (line 0 means "input ended before the parser could point
/// anywhere"). Semantic validation errors describe the assembled problem
/// rather than a single line, and only arise from fully parseable input.
fn assert_located(err: &ParseError) {
    let msg = err.to_string();
    match err {
        ParseError::Invalid(_) => {}
        _ => assert!(
            msg.contains("line "),
            "parse error must carry a line number: {msg:?}"
        ),
    }
    // Lifting into the CLI-facing error keeps the Parse classification.
    let lifted: QbpError = err.clone().into();
    assert!(matches!(lifted, QbpError::Parse(_)));
}

/// Arbitrary bytes, full range — exercises invalid UTF-8 and control noise.
fn byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|v| v as u8)
}

/// Near-valid input fragments: valid prefixes, directives with wrong
/// arities, hostile numbers, and separator noise — steering random inputs
/// toward the interesting states of the directive parser.
fn fragment() -> impl Strategy<Value = String> {
    (0usize..12, 0u64..1 << 48).prop_map(|(pick, num)| match pick {
        0 => "qbp 1\n".to_string(),
        1 => "component a 1\n".to_string(),
        2 => format!("component c{num} {num}\n"),
        3 => "wire a a 1\n".to_string(),
        4 => format!("partitions {num}9999999999\n"),
        5 => format!("grid {num} {num} 1\n"),
        6 => "capacity 0\n".to_string(),
        7 => "timing a\n".to_string(),
        8 => format!("wires a c{num} {num}\n"),
        9 => format!("# noise {num}\n"),
        10 => format!("linear {num} {num} -{num}\n"),
        11 => format!("\t  {num}"),
        _ => unreachable!(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Completely arbitrary bytes: `read_problem` must return, never panic,
    // and every rejection must carry a line number. (Invalid UTF-8 makes
    // `read_line` fail, which must surface as a located `ParseError::Io`.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(byte(), 0..2048)) {
        match read_problem(std::io::Cursor::new(bytes)) {
            Ok(_) => {}
            Err(e) => assert_located(&e),
        }
    }

    // Directive-shaped noise: strings assembled from near-valid fragments
    // exercise every arm of the directive parser, and the streaming reader
    // must agree with the in-memory parser on accept/reject.
    #[test]
    fn directive_noise_never_panics(parts in proptest::collection::vec(fragment(), 0..24)) {
        let text = parts.concat();
        match parse_problem(&text) {
            Ok(_) => {}
            Err(e) => assert_located(&e),
        }
        let streamed = read_problem(std::io::Cursor::new(text.as_bytes()));
        prop_assert_eq!(streamed.is_ok(), parse_problem(&text).is_ok());
    }

    // Truncating a valid file at any byte boundary must yield either a
    // smaller valid problem or a located error — never a panic.
    #[test]
    fn truncated_valid_input_never_panics(cut in 0usize..400) {
        let full = "\
qbp 1
scales 1 1
component alu 40
component cache 60
component bus 10
wires alu cache 5
wire cache bus 2
grid 2 2 80
timing alu cache 1
timing cache alu 1
";
        let cut = cut.min(full.len());
        let bytes = &full.as_bytes()[..cut];
        match read_problem(std::io::Cursor::new(bytes)) {
            Ok(_) => {}
            Err(e) => assert_located(&e),
        }
    }
}
