//! The circuit (system) to be partitioned: components with sizes, and a
//! sparse, directed, weighted connection structure (the paper's `A` matrix).

use crate::{ComponentId, Cost, Error, Size};
use serde::{Deserialize, Serialize};

/// A circuit component (functional block): a name and a silicon-area demand.
///
/// In the paper's evaluation the components are high-level functional blocks
/// whose sizes span about two orders of magnitude within one circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Component {
    name: String,
    size: Size,
}

impl Component {
    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component's size (silicon-area demand), `s_j` in the paper.
    pub fn size(&self) -> Size {
        self.size
    }
}

/// A circuit: components plus the sparse interconnection matrix `A`, where
/// `a[j1][j2]` counts the wires from component `j1` to component `j2`.
///
/// The connection structure is directed (matching the paper's formulation);
/// [`Circuit::add_wires`] is a convenience that adds the same weight in both
/// directions, which is how the paper's own worked example populates `A`.
/// Self-connections are rejected — they contribute nothing to any partition
/// objective and would complicate incremental cost updates.
///
/// ```
/// use qbp_core::Circuit;
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("alu", 40);
/// let b = circuit.add_component("regfile", 25);
/// circuit.add_wires(a, b, 5)?;
/// assert_eq!(circuit.connection(a, b), 5);
/// assert_eq!(circuit.connection(b, a), 5);
/// assert_eq!(circuit.total_wire_weight(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    components: Vec<Component>,
    /// `out_edges[j]` lists `(k, a[j][k])` with `a[j][k] > 0`.
    out_edges: Vec<Vec<(u32, Cost)>>,
    /// `in_edges[j]` lists `(k, a[k][j])` with `a[k][j] > 0`.
    in_edges: Vec<Vec<(u32, Cost)>>,
    /// Σ over all ordered pairs of `a[j1][j2]`.
    total_wire_weight: Cost,
    /// Number of ordered pairs with a nonzero connection.
    directed_edge_count: usize,
}

impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        // Connection structure is a weighted edge *set*: equality ignores
        // adjacency-list insertion order (writers and parsers may differ).
        if self.components != other.components
            || self.total_wire_weight != other.total_wire_weight
            || self.directed_edge_count != other.directed_edge_count
        {
            return false;
        }
        let canon = |lists: &[Vec<(u32, Cost)>]| -> Vec<Vec<(u32, Cost)>> {
            lists
                .iter()
                .map(|l| {
                    let mut l = l.clone();
                    l.sort_unstable();
                    l
                })
                .collect()
        };
        canon(&self.out_edges) == canon(&other.out_edges)
    }
}

impl Eq for Circuit {}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Creates an empty circuit with space reserved for `n` components.
    pub fn with_capacity(n: usize) -> Self {
        Circuit {
            components: Vec::with_capacity(n),
            out_edges: Vec::with_capacity(n),
            in_edges: Vec::with_capacity(n),
            total_wire_weight: 0,
            directed_edge_count: 0,
        }
    }

    /// Adds a component and returns its id.
    pub fn add_component(&mut self, name: impl Into<String>, size: Size) -> ComponentId {
        let id = ComponentId::new(self.components.len());
        self.components.push(Component {
            name: name.into(),
            size,
        });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Number of components, `N` in the paper.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if the circuit has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns the component with the given id, if it exists.
    pub fn component(&self, id: ComponentId) -> Option<&Component> {
        self.components.get(id.index())
    }

    /// The size `s_j` of a component.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn size(&self, id: ComponentId) -> Size {
        self.components[id.index()].size
    }

    /// Sum of all component sizes.
    pub fn total_size(&self) -> Size {
        self.components.iter().map(|c| c.size).sum()
    }

    /// Iterates over `(id, component)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(j, c)| (ComponentId::new(j), c))
    }

    fn check_pair(&self, from: ComponentId, to: ComponentId) -> Result<(), Error> {
        let len = self.components.len();
        for id in [from, to] {
            if id.index() >= len {
                return Err(Error::ComponentOutOfRange { id, len });
            }
        }
        if from == to {
            return Err(Error::SelfLoop(from));
        }
        Ok(())
    }

    /// Adds `weight` wires from `from` to `to` (directed; accumulates with any
    /// existing connection).
    ///
    /// # Errors
    ///
    /// Returns an error if either id is out of range, if `from == to`, or if
    /// `weight` is negative (the QBP formulation assumes `A ≥ 0`). A zero
    /// weight is accepted and ignored.
    pub fn add_connection(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        weight: Cost,
    ) -> Result<(), Error> {
        self.check_pair(from, to)?;
        if weight < 0 {
            return Err(Error::NegativeValue {
                what: "connection weight",
                value: weight,
            });
        }
        if weight == 0 {
            return Ok(());
        }
        self.total_wire_weight += weight;
        let out = &mut self.out_edges[from.index()];
        match out.iter_mut().find(|(k, _)| *k == to.0) {
            Some((_, w)) => *w += weight,
            None => {
                out.push((to.0, weight));
                self.directed_edge_count += 1;
            }
        }
        let inc = &mut self.in_edges[to.index()];
        match inc.iter_mut().find(|(k, _)| *k == from.0) {
            Some((_, w)) => *w += weight,
            None => inc.push((from.0, weight)),
        }
        Ok(())
    }

    /// Adds `weight` wires between `a` and `b` in *both* directions, i.e.
    /// `A[a][b] += weight` and `A[b][a] += weight`, matching the symmetric `A`
    /// of the paper's worked example.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::add_connection`].
    pub fn add_wires(&mut self, a: ComponentId, b: ComponentId, weight: Cost) -> Result<(), Error> {
        self.add_connection(a, b, weight)?;
        self.add_connection(b, a, weight)
    }

    /// Expands a multi-pin net over `pins` into a symmetric clique: every
    /// unordered pin pair receives `weight` wires in each direction.
    ///
    /// This is the standard clique net model; for high-fanout nets prefer
    /// [`Circuit::add_net_star`].
    ///
    /// # Errors
    ///
    /// Returns an error if any pin is out of range or if the same pin appears
    /// twice (which would create a self-loop).
    pub fn add_net_clique(&mut self, pins: &[ComponentId], weight: Cost) -> Result<(), Error> {
        for (x, &a) in pins.iter().enumerate() {
            for &b in &pins[x + 1..] {
                self.add_wires(a, b, weight)?;
            }
        }
        Ok(())
    }

    /// Expands a multi-pin net as a star from `driver` to every sink:
    /// `A[driver][sink] += weight` for each sink (directed).
    ///
    /// # Errors
    ///
    /// Returns an error if any id is out of range or a sink equals the driver.
    pub fn add_net_star(
        &mut self,
        driver: ComponentId,
        sinks: &[ComponentId],
        weight: Cost,
    ) -> Result<(), Error> {
        for &s in sinks {
            self.add_connection(driver, s, weight)?;
        }
        Ok(())
    }

    /// Overwrites the connection `a[from][to] = weight` (an ECO edit entry
    /// point: unlike [`Circuit::add_connection`] it *replaces* rather than
    /// accumulates). A weight of 0 removes the record entirely — physically,
    /// not by zeroing it — so the adjacency lists end up in exactly the state
    /// a from-scratch construction of the edited circuit would produce.
    /// Returns the previous weight.
    ///
    /// Replacement preserves the record's position in both adjacency lists;
    /// removal closes the gap while keeping the relative order of the
    /// remaining records.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::add_connection`].
    pub fn set_connection(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        weight: Cost,
    ) -> Result<Cost, Error> {
        self.check_pair(from, to)?;
        if weight < 0 {
            return Err(Error::NegativeValue {
                what: "connection weight",
                value: weight,
            });
        }
        let out = &mut self.out_edges[from.index()];
        let pos = out.iter().position(|(k, _)| *k == to.0);
        let previous = match pos {
            Some(e) => {
                let prev = out[e].1;
                if weight == 0 {
                    out.remove(e);
                    self.directed_edge_count -= 1;
                    let inc = &mut self.in_edges[to.index()];
                    let ie = inc
                        .iter()
                        .position(|(k, _)| *k == from.0)
                        .expect("in-edge mirror out of sync");
                    inc.remove(ie);
                } else {
                    out[e].1 = weight;
                    let inc = &mut self.in_edges[to.index()];
                    let ie = inc
                        .iter()
                        .position(|(k, _)| *k == from.0)
                        .expect("in-edge mirror out of sync");
                    inc[ie].1 = weight;
                }
                prev
            }
            None => {
                if weight > 0 {
                    self.out_edges[from.index()].push((to.0, weight));
                    self.in_edges[to.index()].push((from.0, weight));
                    self.directed_edge_count += 1;
                }
                0
            }
        };
        self.total_wire_weight += weight - previous;
        Ok(previous)
    }

    /// Overwrites the connection in *both* directions
    /// (`a[a][b] = a[b][a] = weight`), the symmetric counterpart of
    /// [`Circuit::set_connection`]. Returns the previous weights.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::set_connection`].
    pub fn set_wires(
        &mut self,
        a: ComponentId,
        b: ComponentId,
        weight: Cost,
    ) -> Result<(Cost, Cost), Error> {
        let ab = self.set_connection(a, b, weight)?;
        let ba = self.set_connection(b, a, weight)?;
        Ok((ab, ba))
    }

    /// Removes the connection `a[from][to]` (equivalent to setting it to 0).
    /// Returns the removed weight (0 when the pair was not connected).
    ///
    /// # Errors
    ///
    /// Returns an error if either id is out of range or `from == to`.
    pub fn remove_connection(&mut self, from: ComponentId, to: ComponentId) -> Result<Cost, Error> {
        self.set_connection(from, to, 0)
    }

    /// Detaches a component: removes every connection incident to `j` in
    /// either direction, leaving `j` in place as an isolated component so
    /// all other component ids stay stable (the ECO semantics of
    /// "remove component"). Returns the number of directed records removed.
    ///
    /// # Errors
    ///
    /// Returns an error if `j` is out of range.
    pub fn detach_component(&mut self, j: ComponentId) -> Result<usize, Error> {
        if j.index() >= self.components.len() {
            return Err(Error::ComponentOutOfRange {
                id: j,
                len: self.components.len(),
            });
        }
        let mut removed = 0;
        let outs = std::mem::take(&mut self.out_edges[j.index()]);
        for (k, w) in outs {
            self.total_wire_weight -= w;
            self.directed_edge_count -= 1;
            removed += 1;
            let inc = &mut self.in_edges[k as usize];
            let e = inc
                .iter()
                .position(|(o, _)| *o == j.0)
                .expect("in-edge mirror out of sync");
            inc.remove(e);
        }
        let ins = std::mem::take(&mut self.in_edges[j.index()]);
        for (k, w) in ins {
            self.total_wire_weight -= w;
            self.directed_edge_count -= 1;
            removed += 1;
            let out = &mut self.out_edges[k as usize];
            let e = out
                .iter()
                .position(|(o, _)| *o == j.0)
                .expect("out-edge mirror out of sync");
            out.remove(e);
        }
        Ok(removed)
    }

    /// The connection count `a[from][to]` (0 when absent or out of range).
    pub fn connection(&self, from: ComponentId, to: ComponentId) -> Cost {
        self.out_edges
            .get(from.index())
            .and_then(|es| es.iter().find(|(k, _)| *k == to.0))
            .map_or(0, |&(_, w)| w)
    }

    /// Iterates over the nonzero out-connections `(to, a[j][to])` of `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn out_connections(&self, j: ComponentId) -> impl Iterator<Item = (ComponentId, Cost)> + '_ {
        self.out_edges[j.index()]
            .iter()
            .map(|&(k, w)| (ComponentId(k), w))
    }

    /// Iterates over the nonzero in-connections `(from, a[from][j])` of `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn in_connections(&self, j: ComponentId) -> impl Iterator<Item = (ComponentId, Cost)> + '_ {
        self.in_edges[j.index()]
            .iter()
            .map(|&(k, w)| (ComponentId(k), w))
    }

    /// Number of ordered pairs `(j1, j2)` with `a[j1][j2] > 0`.
    pub fn directed_edge_count(&self) -> usize {
        self.directed_edge_count
    }

    /// Sum of all entries of `A` (each symmetric wire pair counts twice, once
    /// per direction).
    pub fn total_wire_weight(&self) -> Cost {
        self.total_wire_weight
    }

    /// Out-degree of `j` (number of distinct out-neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn out_degree(&self, j: ComponentId) -> usize {
        self.out_edges[j.index()].len()
    }

    /// Iterates over all directed edges `(from, to, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (ComponentId, ComponentId, Cost)> + '_ {
        self.out_edges.iter().enumerate().flat_map(|(j, es)| {
            es.iter()
                .map(move |&(k, w)| (ComponentId::new(j), ComponentId(k), w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> (Circuit, ComponentId, ComponentId, ComponentId) {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 2);
        let d = c.add_component("c", 3);
        (c, a, b, d)
    }

    #[test]
    fn add_and_query_components() {
        let (c, a, b, d) = three();
        assert_eq!(c.len(), 3);
        assert_eq!(c.size(a), 1);
        assert_eq!(c.size(b), 2);
        assert_eq!(c.component(d).unwrap().name(), "c");
        assert_eq!(c.total_size(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn connections_accumulate() {
        let (mut c, a, b, _) = three();
        c.add_connection(a, b, 2).unwrap();
        c.add_connection(a, b, 3).unwrap();
        assert_eq!(c.connection(a, b), 5);
        assert_eq!(c.connection(b, a), 0);
        assert_eq!(c.directed_edge_count(), 1);
        assert_eq!(c.total_wire_weight(), 5);
    }

    #[test]
    fn symmetric_wires_match_paper_example() {
        // Paper §3.3: five wires between a and b show up as A[a][b] = A[b][a] = 5.
        let (mut c, a, b, d) = three();
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        assert_eq!(c.connection(a, b), 5);
        assert_eq!(c.connection(b, a), 5);
        assert_eq!(c.connection(b, d), 2);
        assert_eq!(c.connection(a, d), 0);
        assert_eq!(c.total_wire_weight(), 14);
        assert_eq!(c.directed_edge_count(), 4);
    }

    #[test]
    fn self_loop_rejected() {
        let (mut c, a, _, _) = three();
        assert_eq!(c.add_connection(a, a, 1), Err(Error::SelfLoop(a)));
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut c, a, _, _) = three();
        let ghost = ComponentId::new(7);
        assert!(matches!(
            c.add_connection(a, ghost, 1),
            Err(Error::ComponentOutOfRange { .. })
        ));
    }

    #[test]
    fn negative_weight_rejected_zero_ignored() {
        let (mut c, a, b, _) = three();
        assert!(matches!(
            c.add_connection(a, b, -1),
            Err(Error::NegativeValue { .. })
        ));
        c.add_connection(a, b, 0).unwrap();
        assert_eq!(c.directed_edge_count(), 0);
    }

    #[test]
    fn clique_net_expands_all_pairs() {
        let (mut c, a, b, d) = three();
        c.add_net_clique(&[a, b, d], 1).unwrap();
        assert_eq!(c.connection(a, b), 1);
        assert_eq!(c.connection(b, a), 1);
        assert_eq!(c.connection(a, d), 1);
        assert_eq!(c.connection(b, d), 1);
        assert_eq!(c.directed_edge_count(), 6);
    }

    #[test]
    fn star_net_is_directed_from_driver() {
        let (mut c, a, b, d) = three();
        c.add_net_star(a, &[b, d], 2).unwrap();
        assert_eq!(c.connection(a, b), 2);
        assert_eq!(c.connection(a, d), 2);
        assert_eq!(c.connection(b, a), 0);
    }

    #[test]
    fn clique_with_duplicate_pin_is_self_loop_error() {
        let (mut c, a, b, _) = three();
        assert!(c.add_net_clique(&[a, b, a], 1).is_err());
    }

    #[test]
    fn set_connection_replaces_removes_and_inserts() {
        let (mut c, a, b, d) = three();
        c.add_wires(a, b, 5).unwrap();
        c.add_connection(a, d, 2).unwrap();
        // Replace keeps position and fixes the aggregates.
        assert_eq!(c.set_connection(a, b, 9).unwrap(), 5);
        assert_eq!(c.connection(a, b), 9);
        assert_eq!(c.total_wire_weight(), 9 + 5 + 2);
        assert_eq!(c.directed_edge_count(), 3);
        // Remove closes the record in both mirrors.
        assert_eq!(c.set_connection(a, d, 0).unwrap(), 2);
        assert_eq!(c.connection(a, d), 0);
        assert_eq!(c.directed_edge_count(), 2);
        assert_eq!(c.in_connections(d).count(), 0);
        // Insert-on-set behaves like a fresh add.
        assert_eq!(c.set_connection(d, b, 4).unwrap(), 0);
        assert_eq!(c.connection(d, b), 4);
        assert_eq!(c.total_wire_weight(), 9 + 5 + 4);
        // Validation still applies.
        assert!(c.set_connection(a, a, 1).is_err());
        assert!(c.set_connection(a, b, -1).is_err());
        // Removing an absent pair is a no-op returning 0.
        assert_eq!(c.remove_connection(a, d).unwrap(), 0);
    }

    #[test]
    fn set_matches_fresh_construction() {
        // The edited circuit must be indistinguishable from one built
        // directly in the edited state (the ECO bit-identity contract).
        let (mut c, a, b, d) = three();
        c.add_wires(a, b, 5).unwrap();
        c.add_connection(b, d, 2).unwrap();
        c.set_connection(a, b, 7).unwrap();
        c.remove_connection(b, a).unwrap();
        let (mut fresh, fa, fb, fd) = three();
        fresh.add_connection(fa, fb, 7).unwrap();
        fresh.add_connection(fb, fd, 2).unwrap();
        assert_eq!(c, fresh);
        assert_eq!(c.total_wire_weight(), fresh.total_wire_weight());
        let _ = (a, d);
    }

    #[test]
    fn detach_component_isolates_and_keeps_ids() {
        let (mut c, a, b, d) = three();
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        c.add_connection(d, a, 3).unwrap();
        let removed = c.detach_component(b).unwrap();
        assert_eq!(removed, 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.connection(a, b), 0);
        assert_eq!(c.connection(b, d), 0);
        assert_eq!(c.connection(d, a), 3);
        assert_eq!(c.total_wire_weight(), 3);
        assert_eq!(c.directed_edge_count(), 1);
        assert!(c.detach_component(ComponentId::new(9)).is_err());
    }

    #[test]
    fn edge_iterators_are_consistent() {
        let (mut c, a, b, d) = three();
        c.add_wires(a, b, 5).unwrap();
        c.add_connection(d, b, 1).unwrap();
        let outs: Vec<_> = c.out_connections(a).collect();
        assert_eq!(outs, vec![(b, 5)]);
        let mut ins: Vec<_> = c.in_connections(b).collect();
        ins.sort();
        assert_eq!(ins, vec![(a, 5), (d, 1)]);
        assert_eq!(c.edges().count(), c.directed_edge_count());
        let total: Cost = c.edges().map(|(_, _, w)| w).sum();
        assert_eq!(total, c.total_wire_weight());
    }
}
