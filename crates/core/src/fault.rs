//! Deterministic seeded fault injection for chaos testing.
//!
//! A handful of **named injection points** are compiled into hot layers of
//! the workspace — the η update kernel, the partition-profile sync, the
//! multilevel coarsener, the IO reader. In normal operation each point is a
//! single relaxed atomic load of a global "armed" flag (false ⇒ return
//! immediately), so the harness is free to ship in release builds and adds
//! no measurable cost. A chaos test *arms* a [`FaultPlan`] naming one point,
//! an action, and the 1-based hit at which it fires:
//!
//! * [`FaultAction::Panic`] — panic at the point (exercises the
//!   `catch_unwind` isolation boundaries),
//! * [`FaultAction::Stall`] — sleep at the point (exercises deadlines:
//!   the solve must still return within one cooperative-check interval
//!   after the stall, not hang),
//! * [`FaultAction::Corrupt`] — the point is *told* to corrupt its own
//!   data in a detectable way (a mangled input line, a perturbed η entry);
//!   the surrounding layer must either surface a typed error or degrade to
//!   a result whose feasibility/objective are recomputed from ground truth.
//!
//! Scheduling is fully deterministic: the fire hit is either given directly
//! or derived from a seed via [`FaultPlan::seeded`], and a process-wide
//! counter per armed plan decides which invocation trips. Tests that arm
//! plans must serialize on a lock (the harness is process-global by
//! design — the point of chaos testing is the *real* code path, not an
//! injected dependency).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The η (interchange-gain) update kernel in the QBP/QAP solvers.
pub const POINT_ETA_KERNEL: &str = "eta_kernel";
/// The partition-profile resynchronisation step.
pub const POINT_PROFILE_SYNC: &str = "profile_sync";
/// The multilevel coarsener's matching pass.
pub const POINT_COARSEN: &str = "coarsener";
/// The problem reader's per-line loop.
pub const POINT_IO_READ: &str = "io_read";

/// All registered injection points (kept in sync with the constants above;
/// the registry is documented in `docs/ROBUSTNESS.md`).
pub const POINTS: &[&str] = &[
    POINT_ETA_KERNEL,
    POINT_PROFILE_SYNC,
    POINT_COARSEN,
    POINT_IO_READ,
];

/// What an armed injection point does when its scheduled hit arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognisable message (`injected fault at <point>`).
    Panic,
    /// Sleep for the given duration, simulating a stalled worker.
    Stall(Duration),
    /// Ask the call site to corrupt its own data detectably.
    Corrupt,
}

/// A deterministic schedule: fire `action` at the `fire_hit`-th invocation
/// (1-based) of injection point `point`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The named injection point to trip (one of [`POINTS`]).
    pub point: &'static str,
    /// What happens when the scheduled hit arrives.
    pub action: FaultAction,
    /// The 1-based invocation count at which the action fires.
    pub fire_hit: u64,
}

impl FaultPlan {
    /// Fires `action` at the first invocation of `point`.
    pub fn first(point: &'static str, action: FaultAction) -> FaultPlan {
        FaultPlan {
            point,
            action,
            fire_hit: 1,
        }
    }

    /// Fires `action` at the `fire_hit`-th invocation of `point`.
    pub fn at_hit(point: &'static str, action: FaultAction, fire_hit: u64) -> FaultPlan {
        FaultPlan {
            point,
            action,
            fire_hit: fire_hit.max(1),
        }
    }

    /// Derives the fire hit deterministically from `seed` in `1..=span`
    /// (splitmix64 finalizer) — seeded chaos runs reproduce exactly.
    pub fn seeded(point: &'static str, action: FaultAction, seed: u64, span: u64) -> FaultPlan {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultPlan {
            point,
            action,
            fire_hit: 1 + z % span.max(1),
        }
    }
}

/// What [`fault_point`] tells its call site to do. `Proceed` is the only
/// value ever seen in an unarmed process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum Injected {
    /// No fault scheduled here (or not this invocation): run normally.
    Proceed,
    /// A [`FaultAction::Corrupt`] fired: the site must corrupt its own
    /// data in the documented, detectable way.
    Corrupt,
}

impl Injected {
    /// `true` when a corruption fired at this invocation.
    pub fn is_corrupt(self) -> bool {
        matches!(self, Injected::Corrupt)
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static HITS: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Arms `plan`, replacing any previous plan and resetting the hit counter.
/// Process-global: chaos tests serialize around arm/disarm.
pub fn arm(plan: FaultPlan) {
    let mut slot = PLAN.lock().unwrap();
    HITS.store(0, Ordering::SeqCst);
    *slot = Some(plan);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the harness; all points return to the single-load fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.lock().unwrap() = None;
    HITS.store(0, Ordering::SeqCst);
}

/// `true` while a plan is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// An injection point. In an unarmed process this is one relaxed load and
/// an immediate [`Injected::Proceed`].
#[inline]
pub fn fault_point(name: &'static str) -> Injected {
    if !ARMED.load(Ordering::Relaxed) {
        return Injected::Proceed;
    }
    fault_point_armed(name)
}

#[cold]
#[inline(never)]
fn fault_point_armed(name: &'static str) -> Injected {
    let action = {
        let slot = PLAN.lock().unwrap();
        match slot.as_ref() {
            Some(plan) if plan.point == name => {
                let hit = HITS.fetch_add(1, Ordering::SeqCst) + 1;
                if hit == plan.fire_hit {
                    Some(plan.action)
                } else {
                    None
                }
            }
            _ => None,
        }
    };
    match action {
        None => Injected::Proceed,
        Some(FaultAction::Corrupt) => Injected::Corrupt,
        Some(FaultAction::Stall(d)) => {
            std::thread::sleep(d);
            Injected::Proceed
        }
        Some(FaultAction::Panic) => panic!("injected fault at {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The harness is process-global; these tests (and any future in-crate
    // chaos tests) serialize on this lock.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_points_proceed() {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        disarm();
        assert_eq!(fault_point(POINT_ETA_KERNEL), Injected::Proceed);
        assert!(!is_armed());
    }

    #[test]
    fn corrupt_fires_exactly_at_scheduled_hit() {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(FaultPlan::at_hit(POINT_IO_READ, FaultAction::Corrupt, 3));
        assert_eq!(fault_point(POINT_IO_READ), Injected::Proceed);
        // Other points never count toward this plan's hits.
        assert_eq!(fault_point(POINT_COARSEN), Injected::Proceed);
        assert_eq!(fault_point(POINT_IO_READ), Injected::Proceed);
        assert_eq!(fault_point(POINT_IO_READ), Injected::Corrupt);
        assert_eq!(fault_point(POINT_IO_READ), Injected::Proceed);
        disarm();
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(FaultPlan::first(POINT_PROFILE_SYNC, FaultAction::Panic));
        let err = crate::exec::catch_panic(|| fault_point(POINT_PROFILE_SYNC));
        disarm();
        match err {
            Err(crate::Error::Internal { message }) => {
                assert!(message.contains("injected fault at profile_sync"))
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_span() {
        let a = FaultPlan::seeded(POINT_ETA_KERNEL, FaultAction::Corrupt, 42, 100);
        let b = FaultPlan::seeded(POINT_ETA_KERNEL, FaultAction::Corrupt, 42, 100);
        assert_eq!(a.fire_hit, b.fire_hit);
        assert!((1..=100).contains(&a.fire_hit));
        let c = FaultPlan::seeded(POINT_ETA_KERNEL, FaultAction::Corrupt, 43, 100);
        // Not a hard guarantee for every pair, but these two differ.
        assert_ne!(a.fire_hit, c.fire_hit);
    }

    #[test]
    fn stall_action_sleeps_then_proceeds() {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(FaultPlan::first(
            POINT_COARSEN,
            FaultAction::Stall(Duration::from_millis(20)),
        ));
        let t0 = std::time::Instant::now();
        assert_eq!(fault_point(POINT_COARSEN), Injected::Proceed);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        disarm();
    }
}
