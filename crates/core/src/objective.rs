//! Objective evaluation: full cost, and exact incremental deltas for single
//! moves and pair swaps (the workhorses of the GFM/GKL baselines).

use crate::profile::{dot_diff, dot_diff2};
use crate::{Assignment, ComponentId, Cost, PartitionId, PartitionProfile, Problem};

/// Evaluates the `PP(α, β)` objective
/// `α·Σ_j p[A(j)][j] + β·Σ_{j1,j2} a[j1][j2]·b[A(j1)][A(j2)]`
/// and its exact deltas under single-component moves and pair swaps.
///
/// All arithmetic is exact `i64`; deltas are verified against full
/// re-evaluation by property tests.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, Assignment, Evaluator,
///                ComponentId, PartitionId};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 1);
/// let b = circuit.add_component("b", 1);
/// circuit.add_wires(a, b, 5)?;
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 10)?).build()?;
/// let eval = Evaluator::new(&problem);
///
/// let mut asg = Assignment::from_parts(vec![0, 3])?; // distance 2
/// assert_eq!(eval.cost(&asg), 2 * 5 * 2);
/// let delta = eval.move_delta(&asg, b, PartitionId::new(1)); // distance 1
/// assert_eq!(delta, -(2 * 5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    problem: &'a Problem,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over a problem.
    pub fn new(problem: &'a Problem) -> Self {
        Evaluator { problem }
    }

    /// The problem being evaluated.
    pub fn problem(&self) -> &'a Problem {
        self.problem
    }

    /// The linear term `α·Σ_j p[A(j)][j]`.
    pub fn linear_cost(&self, assignment: &Assignment) -> Cost {
        let p = match self.problem.linear_cost() {
            Some(p) => p,
            None => return 0,
        };
        let alpha = self.problem.alpha();
        (0..self.problem.n())
            .map(|j| alpha * p[(assignment.part_index(j), j)])
            .sum()
    }

    /// The quadratic term `β·Σ_{j1,j2} a[j1][j2]·b[A(j1)][A(j2)]`.
    ///
    /// Note that, as in the paper, the sum runs over *ordered* pairs: a
    /// symmetric wire bundle added with
    /// [`Circuit::add_wires`](crate::Circuit::add_wires) contributes twice
    /// (once per direction).
    pub fn quadratic_cost(&self, assignment: &Assignment) -> Cost {
        let b = self.problem.topology().wire_cost();
        let beta = self.problem.beta();
        let mut total = 0;
        for (j1, j2, w) in self.problem.circuit().edges() {
            total += beta
                * w
                * b[(
                    assignment.part_index(j1.index()),
                    assignment.part_index(j2.index()),
                )];
        }
        total
    }

    /// The full objective `α·linear + β·quadratic`.
    pub fn cost(&self, assignment: &Assignment) -> Cost {
        self.linear_cost(assignment) + self.quadratic_cost(assignment)
    }

    /// Exact change in objective if component `j` moves to partition `to`
    /// (0 when `to` is its current partition).
    ///
    /// Runs in `O(deg(j))`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `to` is out of range for the problem.
    pub fn move_delta(&self, assignment: &Assignment, j: ComponentId, to: PartitionId) -> Cost {
        let from = assignment.part_index(j.index());
        let to_i = to.index();
        if from == to_i {
            return 0;
        }
        let problem = self.problem;
        let b = problem.topology().wire_cost();
        let beta = problem.beta();
        let mut delta = problem.alpha() * (problem.p(to_i, j.index()) - problem.p(from, j.index()));
        for (k, w) in problem.circuit().out_connections(j) {
            let ik = assignment.part_index(k.index());
            delta += beta * w * (b[(to_i, ik)] - b[(from, ik)]);
        }
        for (k, w) in problem.circuit().in_connections(j) {
            let ik = assignment.part_index(k.index());
            delta += beta * w * (b[(ik, to_i)] - b[(ik, from)]);
        }
        delta
    }

    /// Exact change in objective if components `j1` and `j2` swap partitions
    /// (0 when they share a partition or `j1 == j2`).
    ///
    /// Runs in `O(deg(j1) + deg(j2))`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the problem.
    pub fn swap_delta(&self, assignment: &Assignment, j1: ComponentId, j2: ComponentId) -> Cost {
        if j1 == j2 {
            return 0;
        }
        let i1 = assignment.part_index(j1.index());
        let i2 = assignment.part_index(j2.index());
        if i1 == i2 {
            return 0;
        }
        let problem = self.problem;
        let b = problem.topology().wire_cost();
        let beta = problem.beta();
        let alpha = problem.alpha();

        let mut delta = alpha
            * (problem.p(i2, j1.index()) - problem.p(i1, j1.index())
                + problem.p(i1, j2.index())
                - problem.p(i2, j2.index()));

        // Edges incident to j1 (excluding the j1–j2 pair, handled below).
        for (k, w) in problem.circuit().out_connections(j1) {
            if k == j2 {
                continue;
            }
            let ik = assignment.part_index(k.index());
            delta += beta * w * (b[(i2, ik)] - b[(i1, ik)]);
        }
        for (k, w) in problem.circuit().in_connections(j1) {
            if k == j2 {
                continue;
            }
            let ik = assignment.part_index(k.index());
            delta += beta * w * (b[(ik, i2)] - b[(ik, i1)]);
        }
        // Edges incident to j2 (excluding the pair).
        for (k, w) in problem.circuit().out_connections(j2) {
            if k == j1 {
                continue;
            }
            let ik = assignment.part_index(k.index());
            delta += beta * w * (b[(i1, ik)] - b[(i2, ik)]);
        }
        for (k, w) in problem.circuit().in_connections(j2) {
            if k == j1 {
                continue;
            }
            let ik = assignment.part_index(k.index());
            delta += beta * w * (b[(ik, i1)] - b[(ik, i2)]);
        }
        // The j1–j2 pair itself: endpoints exchange partitions.
        let w12 = problem.circuit().connection(j1, j2);
        if w12 != 0 {
            delta += beta * w12 * (b[(i2, i1)] - b[(i1, i2)]);
        }
        let w21 = problem.circuit().connection(j2, j1);
        if w21 != 0 {
            delta += beta * w21 * (b[(i1, i2)] - b[(i2, i1)]);
        }
        delta
    }

    /// [`Evaluator::move_delta`] from a plain [`PartitionProfile`] synced to
    /// `assignment`: two branchless 4-lane row dots over the profile's padded
    /// aggregates and wire-cost copies instead of an `O(deg(j))` adjacency
    /// walk, bit-identical by `i64` distributivity
    /// (`Σ_k β·w_k·x = β·(Σ_k w_k)·x`) and associativity of the lane sums.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `to` is out of range, or if `profile` was not built
    /// for this problem's dimensions.
    pub fn move_delta_profiled(
        &self,
        profile: &PartitionProfile,
        assignment: &Assignment,
        j: ComponentId,
        to: PartitionId,
    ) -> Cost {
        let from = assignment.part_index(j.index());
        let to_i = to.index();
        if from == to_i {
            return 0;
        }
        let problem = self.problem;
        let alpha_term =
            problem.alpha() * (problem.p(to_i, j.index()) - problem.p(from, j.index()));
        // Out direction prices partners as targets (rows of B); in direction
        // prices them as sources (columns of B, stored contiguously in the
        // profile's padded transpose). Pad lanes are zero on both sides.
        let out = dot_diff(
            profile.out_row_padded(j.index()),
            profile.wire_row_padded(to_i),
            profile.wire_row_padded(from),
        );
        let inn = dot_diff(
            profile.in_row_padded(j.index()),
            profile.wire_col_padded(to_i),
            profile.wire_col_padded(from),
        );
        alpha_term + problem.beta() * (out + inn)
    }

    /// [`Evaluator::swap_delta`] from a plain [`PartitionProfile`] synced to
    /// `assignment`: two branchless 4-lane differenced row dots instead of an
    /// `O(deg(j1) + deg(j2))` walk.
    ///
    /// The caller supplies the mutual connection weights
    /// `w12 = a[j1][j2]` / `w21 = a[j2][j1]` (GKL keeps them at hand from its
    /// pair enumeration; [`Evaluator::swap_delta_profiled_lookup`] looks them
    /// up instead). The profile sums count each mover's contribution at the
    /// *other* mover's pre-swap partition, so the mutual pair is corrected in
    /// closed form:
    /// `β·(w12 + w21)·(b[i2][i1] + b[i1][i2] − b[i1][i1] − b[i2][i2])` —
    /// exact in `i64`, hence bit-identical (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range, or if `profile` was not built
    /// for this problem's dimensions.
    pub fn swap_delta_profiled(
        &self,
        profile: &PartitionProfile,
        assignment: &Assignment,
        j1: ComponentId,
        j2: ComponentId,
        w12: Cost,
        w21: Cost,
    ) -> Cost {
        if j1 == j2 {
            return 0;
        }
        let i1 = assignment.part_index(j1.index());
        let i2 = assignment.part_index(j2.index());
        if i1 == i2 {
            return 0;
        }
        let problem = self.problem;
        let b = problem.topology().wire_cost();
        let beta = problem.beta();
        let alpha = problem.alpha();

        let mut delta = alpha
            * (problem.p(i2, j1.index()) - problem.p(i1, j1.index())
                + problem.p(i1, j2.index())
                - problem.p(i2, j2.index()));

        // One fused pass: j2's terms are j1's negated, so price the
        // *differenced* aggregates (exact in `i64` by distributivity —
        // `β·w1·x − β·w2·x = β·(w1 − w2)·x`), over the padded rows so the
        // lane loops carry no branches and no tail.
        let out = dot_diff2(
            profile.out_row_padded(j1.index()),
            profile.out_row_padded(j2.index()),
            profile.wire_row_padded(i2),
            profile.wire_row_padded(i1),
        );
        let inn = dot_diff2(
            profile.in_row_padded(j1.index()),
            profile.in_row_padded(j2.index()),
            profile.wire_col_padded(i2),
            profile.wire_col_padded(i1),
        );
        delta += beta * (out + inn);
        // The aggregate sums above priced each mutual-pair direction at the
        // wrong spots (partner held at its pre-swap partition, on both
        // sides); replace that with the true exchanged-endpoints term.
        let wm = w12 + w21;
        if wm != 0 {
            delta += beta * wm * (b[(i2, i1)] + b[(i1, i2)] - b[(i1, i1)] - b[(i2, i2)]);
        }
        delta
    }

    /// [`Evaluator::swap_delta_profiled`] with the mutual connection weights
    /// looked up from the circuit (`O(deg(j1))`). Convenient when the caller
    /// does not already hold `a[j1][j2]` / `a[j2][j1]`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range, or if `profile` was not built
    /// for this problem's dimensions.
    pub fn swap_delta_profiled_lookup(
        &self,
        profile: &PartitionProfile,
        assignment: &Assignment,
        j1: ComponentId,
        j2: ComponentId,
    ) -> Cost {
        let circuit = self.problem.circuit();
        let w12 = circuit.connection(j1, j2);
        let w21 = circuit.connection(j2, j1);
        self.swap_delta_profiled(profile, assignment, j1, j2, w12, w21)
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        deviation_cost_matrix, Circuit, PartitionTopology, ProblemBuilder,
    };

    fn paper_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        c
    }

    fn paper_problem() -> Problem {
        ProblemBuilder::new(paper_circuit(), PartitionTopology::grid(2, 2, 10).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn quadratic_cost_on_paper_example() {
        let p = paper_problem();
        let eval = Evaluator::new(&p);
        // a→1, b→2, c→3 (0-based: 0, 1, 2): dist(0,1)=1, dist(1,2)=2.
        let asg = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        assert_eq!(eval.quadratic_cost(&asg), 2 * 5 + 2 * (2 * 2));
        assert_eq!(eval.cost(&asg), eval.quadratic_cost(&asg));
        // All together: zero cost.
        let same = Assignment::from_parts(vec![3, 3, 3]).unwrap();
        assert_eq!(eval.cost(&same), 0);
    }

    #[test]
    fn linear_cost_with_deviation_matrix() {
        let circuit = paper_circuit();
        let topo = PartitionTopology::grid(2, 2, 10).unwrap();
        let initial = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        let p = deviation_cost_matrix(&circuit, &topo, &initial).unwrap();
        let problem = ProblemBuilder::new(circuit, topo)
            .linear_cost(p)
            .scales(1, 0)
            .build()
            .unwrap();
        let eval = Evaluator::new(&problem);
        // Staying put costs nothing.
        assert_eq!(eval.cost(&initial), 0);
        // Moving all to the far corner: each pays size * distance.
        let moved = Assignment::from_parts(vec![3, 3, 3]).unwrap();
        assert_eq!(eval.cost(&moved), 2 + 1 + 1);
    }

    #[test]
    fn move_delta_matches_full_recompute() {
        let p = paper_problem();
        let eval = Evaluator::new(&p);
        let asg = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        for j in 0..3 {
            for to in 0..4 {
                let mut moved = asg.clone();
                moved.move_to(ComponentId::new(j), PartitionId::new(to));
                let delta = eval.move_delta(&asg, ComponentId::new(j), PartitionId::new(to));
                assert_eq!(
                    delta,
                    eval.cost(&moved) - eval.cost(&asg),
                    "move c{j} -> p{to}"
                );
            }
        }
    }

    #[test]
    fn swap_delta_matches_full_recompute() {
        let p = paper_problem();
        let eval = Evaluator::new(&p);
        let asg = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        for j1 in 0..3 {
            for j2 in 0..3 {
                let mut swapped = asg.clone();
                swapped.swap(ComponentId::new(j1), ComponentId::new(j2));
                let delta = eval.swap_delta(&asg, ComponentId::new(j1), ComponentId::new(j2));
                assert_eq!(
                    delta,
                    eval.cost(&swapped) - eval.cost(&asg),
                    "swap c{j1} <-> c{j2}"
                );
            }
        }
    }

    #[test]
    fn move_to_same_partition_is_zero() {
        let p = paper_problem();
        let eval = Evaluator::new(&p);
        let asg = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        assert_eq!(eval.move_delta(&asg, ComponentId::new(1), PartitionId::new(1)), 0);
    }

    #[test]
    fn scales_are_applied() {
        let circuit = paper_circuit();
        let topo = PartitionTopology::grid(2, 2, 10).unwrap();
        let initial = Assignment::from_parts(vec![0, 0, 0]).unwrap();
        let p = deviation_cost_matrix(&circuit, &topo, &initial).unwrap();
        let problem = ProblemBuilder::new(circuit, topo)
            .linear_cost(p)
            .scales(3, 2)
            .build()
            .unwrap();
        let eval = Evaluator::new(&problem);
        let asg = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        // linear: b at dist 1, c at dist 1 → α·(1+1) = 6.
        assert_eq!(eval.linear_cost(&asg), 6);
        // quadratic: 2·(5·1 + 2·2) = 18, ×β = 36.
        assert_eq!(eval.quadratic_cost(&asg), 36);
        assert_eq!(eval.cost(&asg), 42);
    }

    #[test]
    fn directed_asymmetric_costs() {
        // A directed connection with an asymmetric B must use b[from][to].
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b_ = c.add_component("b", 1);
        c.add_connection(a, b_, 3).unwrap();
        let bmat = crate::DenseMatrix::from_rows(vec![vec![0, 7], vec![1, 0]]).unwrap();
        let topo = PartitionTopology::new(vec![10, 10], bmat.clone(), bmat).unwrap();
        let problem = ProblemBuilder::new(c, topo).build().unwrap();
        let eval = Evaluator::new(&problem);
        let fwd = Assignment::from_parts(vec![0, 1]).unwrap();
        assert_eq!(eval.cost(&fwd), 3 * 7);
        let rev = Assignment::from_parts(vec![1, 0]).unwrap();
        assert_eq!(eval.cost(&rev), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Circuit, PartitionTopology, ProblemBuilder};
    use proptest::prelude::*;

    fn arb_problem_and_assignment(
    ) -> impl Strategy<Value = (Problem, Assignment, Vec<(usize, usize)>)> {
        (2usize..8, 2usize..5).prop_flat_map(|(n, m)| {
            let edges = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self loop", |(a, b)| a != b), 1i64..6),
                0..12,
            );
            let parts = proptest::collection::vec(0u32..m as u32, n);
            let moves = proptest::collection::vec((0..n, 0..m), 1..8);
            (Just((n, m)), edges, parts, moves).prop_map(|((n, m), edges, parts, moves)| {
                let mut circuit = Circuit::new();
                for j in 0..n {
                    circuit.add_component(format!("c{j}"), 1 + j as u64);
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .unwrap();
                }
                let topo = PartitionTopology::grid(1, m, 10_000).unwrap();
                let problem = ProblemBuilder::new(circuit, topo).build().unwrap();
                let asg = Assignment::from_parts(parts).unwrap();
                (problem, asg, moves)
            })
        })
    }

    proptest! {
        #[test]
        fn move_delta_always_matches_recompute((problem, asg, moves) in arb_problem_and_assignment()) {
            let eval = Evaluator::new(&problem);
            let mut current = asg;
            for (j, to) in moves {
                let j = ComponentId::new(j);
                let to = PartitionId::new(to);
                let before = eval.cost(&current);
                let delta = eval.move_delta(&current, j, to);
                current.move_to(j, to);
                prop_assert_eq!(before + delta, eval.cost(&current));
            }
        }

        #[test]
        fn swap_delta_always_matches_recompute((problem, asg, moves) in arb_problem_and_assignment()) {
            let eval = Evaluator::new(&problem);
            let mut current = asg;
            let n = problem.n();
            for (j, to) in moves {
                let j1 = ComponentId::new(j);
                let j2 = ComponentId::new(to % n);
                let before = eval.cost(&current);
                let delta = eval.swap_delta(&current, j1, j2);
                current.swap(j1, j2);
                prop_assert_eq!(before + delta, eval.cost(&current));
            }
        }

        #[test]
        fn cost_is_nonnegative((problem, asg, _) in arb_problem_and_assignment()) {
            prop_assert!(Evaluator::new(&problem).cost(&asg) >= 0);
        }

        #[test]
        fn profiled_kernels_match_walk_oracle((problem, asg, moves) in arb_problem_and_assignment()) {
            // The adjacency walk is the oracle: the padded-SoA profiled
            // kernels must be bit-identical to it for every move and swap.
            let eval = Evaluator::new(&problem);
            let profile = crate::PartitionProfile::plain(&problem, &asg);
            let n = problem.n();
            let m = problem.m();
            for (j, to) in moves {
                let j1 = ComponentId::new(j);
                let j2 = ComponentId::new(to % n);
                let p = PartitionId::new(to % m);
                prop_assert_eq!(
                    eval.move_delta_profiled(&profile, &asg, j1, p),
                    eval.move_delta(&asg, j1, p)
                );
                prop_assert_eq!(
                    eval.swap_delta_profiled_lookup(&profile, &asg, j1, j2),
                    eval.swap_delta(&asg, j1, j2)
                );
            }
        }
    }
}
