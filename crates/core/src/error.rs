//! Error type shared by all `qbp-core` constructors and validators.

use crate::{ComponentId, PartitionId, Size};
use std::fmt;

/// Errors returned by problem-construction and validation APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A component id referenced a component that does not exist.
    ComponentOutOfRange {
        /// The offending id.
        id: ComponentId,
        /// Number of components in the circuit.
        len: usize,
    },
    /// A partition id referenced a partition that does not exist.
    PartitionOutOfRange {
        /// The offending id.
        id: PartitionId,
        /// Number of partitions in the topology.
        len: usize,
    },
    /// A connection or timing constraint from a component to itself.
    SelfLoop(ComponentId),
    /// Two parts of the problem disagree on dimensions
    /// (e.g. a `P` matrix that is not `M × N`).
    DimensionMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected dimension.
        expected: (usize, usize),
        /// Found dimension.
        found: (usize, usize),
    },
    /// The partition topology is malformed (non-square matrices, negative
    /// costs, zero partitions, ...).
    InvalidTopology(String),
    /// The problem cannot have any feasible solution: total component size
    /// exceeds total capacity.
    CapacityImpossible {
        /// Sum of all component sizes.
        total_size: Size,
        /// Sum of all partition capacities.
        total_capacity: Size,
    },
    /// An assignment vector had the wrong length for the circuit.
    AssignmentLengthMismatch {
        /// Expected number of components.
        expected: usize,
        /// Found vector length.
        found: usize,
    },
    /// A weight, delay or scale factor was negative where a non-negative
    /// value is required (the QBP linearization assumes `Q̂ ≥ 0`).
    NegativeValue {
        /// What was being validated.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A circuit with zero components was used where at least one is needed.
    EmptyCircuit,
    /// A component name did not resolve to any component (fluent
    /// [`ProblemBuilder`](crate::ProblemBuilder) construction, ECO edit
    /// scripts).
    UnknownComponentName(String),
    /// A solver that requires a feasible starting assignment (GFM, GKL) was
    /// given one that violates constraints.
    InfeasibleStart {
        /// Number of capacity violations in the start.
        capacity_violations: usize,
        /// Number of timing violations in the start.
        timing_violations: usize,
    },
    /// The flattened adjacency has more merged pair records than the compact
    /// u32-indexed CSR layout can address. Raised by the checked
    /// [`QBody`](crate::QBody) build path instead of silently truncating
    /// offsets past the ceiling.
    IndexOverflow {
        /// What ran out of index space.
        what: &'static str,
        /// Records required.
        records: u64,
        /// Largest record count the layout can address.
        cap: u64,
    },
    /// A worker thread or solver run panicked and was caught at an
    /// isolation boundary ([`exec::catch_panic`](crate::exec::catch_panic)).
    /// The message is the panic payload; sibling workers' results survive.
    Internal {
        /// The captured panic message.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ComponentOutOfRange { id, len } => {
                write!(f, "component {id} out of range for circuit with {len} components")
            }
            Error::PartitionOutOfRange { id, len } => {
                write!(f, "partition {id} out of range for topology with {len} partitions")
            }
            Error::SelfLoop(id) => {
                write!(f, "self-connection on component {id} is not allowed")
            }
            Error::DimensionMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what} has dimensions {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            Error::InvalidTopology(msg) => write!(f, "invalid partition topology: {msg}"),
            Error::CapacityImpossible {
                total_size,
                total_capacity,
            } => write!(
                f,
                "total component size {total_size} exceeds total capacity {total_capacity}"
            ),
            Error::AssignmentLengthMismatch { expected, found } => write!(
                f,
                "assignment has {found} entries, expected {expected}"
            ),
            Error::NegativeValue { what, value } => {
                write!(f, "{what} must be non-negative, got {value}")
            }
            Error::EmptyCircuit => write!(f, "circuit has no components"),
            Error::UnknownComponentName(name) => {
                write!(f, "unknown component name `{name}`")
            }
            Error::InfeasibleStart {
                capacity_violations,
                timing_violations,
            } => write!(
                f,
                "initial assignment is infeasible ({capacity_violations} capacity, {timing_violations} timing violations)"
            ),
            Error::IndexOverflow { what, records, cap } => write!(
                f,
                "{what} needs {records} records, exceeding the compact index ceiling of {cap}"
            ),
            Error::Internal { message } => {
                write!(f, "internal error: worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// The unified error of the `qbp` crates: everything that can go wrong
/// between reading a problem description and validating a model, as one
/// typed enum so callers (notably the CLI) can branch on the failure *kind*
/// instead of string-matching messages.
///
/// Construction sites stay precise — model validation keeps returning
/// [`Error`], the text parser [`crate::io::ParseError`] — and the `From`
/// impls lift both into `QbpError` at API boundaries, along with I/O
/// failures (captured as path + message so the error stays `Clone` and
/// comparable).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QbpError {
    /// Semantic model validation failed (invalid circuit, capacity
    /// overflow, unknown component/partition, ...).
    Model(Error),
    /// A `.qbp` text description failed to parse.
    Parse(crate::io::ParseError),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// The invocation itself was malformed (bad flag, missing argument,
    /// unknown method or script directive).
    Usage(String),
    /// A defect inside the solver itself: a worker panic caught at an
    /// isolation boundary. Maps to exit code 70 (`EX_SOFTWARE`) in the CLI.
    Internal(String),
}

impl QbpError {
    /// Wraps an [`std::io::Error`] with the path it occurred on.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        QbpError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for QbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbpError::Model(e) => write!(f, "{e}"),
            QbpError::Parse(e) => write!(f, "{e}"),
            QbpError::Io { path, message } => write!(f, "{path}: {message}"),
            QbpError::Usage(msg) => write!(f, "{msg}"),
            QbpError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for QbpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QbpError::Model(e) => Some(e),
            QbpError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Error> for QbpError {
    fn from(e: Error) -> Self {
        match e {
            Error::Internal { message } => QbpError::Internal(message),
            other => QbpError::Model(other),
        }
    }
}

impl From<crate::io::ParseError> for QbpError {
    fn from(e: crate::io::ParseError) -> Self {
        QbpError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = vec![
            Error::ComponentOutOfRange {
                id: ComponentId::new(5),
                len: 3,
            },
            Error::PartitionOutOfRange {
                id: PartitionId::new(9),
                len: 4,
            },
            Error::SelfLoop(ComponentId::new(1)),
            Error::DimensionMismatch {
                what: "linear cost matrix P",
                expected: (4, 3),
                found: (3, 4),
            },
            Error::InvalidTopology("empty".into()),
            Error::CapacityImpossible {
                total_size: 10,
                total_capacity: 5,
            },
            Error::AssignmentLengthMismatch {
                expected: 3,
                found: 2,
            },
            Error::NegativeValue {
                what: "alpha",
                value: -1,
            },
            Error::EmptyCircuit,
            Error::UnknownComponentName("ghost".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(|c: char| c.is_ascii_digit()));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
        assert_bounds::<QbpError>();
    }

    #[test]
    fn qbp_error_lifts_and_displays() {
        let model: QbpError = Error::EmptyCircuit.into();
        assert!(matches!(model, QbpError::Model(Error::EmptyCircuit)));
        assert_eq!(model.to_string(), Error::EmptyCircuit.to_string());
        let parse: QbpError = crate::io::ParseError::BadHeader { line: 1 }.into();
        assert!(matches!(parse, QbpError::Parse(_)));
        let io = QbpError::io(
            "missing.qbp",
            &std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        );
        assert!(io.to_string().starts_with("missing.qbp: "));
        let usage = QbpError::Usage("unknown method `frobnicate`".into());
        assert!(usage.to_string().contains("frobnicate"));
        use std::error::Error as _;
        assert!(model.source().is_some());
        assert!(io.source().is_none());
    }
}
